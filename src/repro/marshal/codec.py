"""Binary message encoding/decoding against registered formats.

Wire layout of one message::

    magic      u32   0x0FF5F0CD
    flags      u8    bit 0: schema inlined
    format_id  u64
    [schema]         self-description, iff flag bit 0
    body_len   u64
    body             packed fields in format order

Field packing:

    INT64      i64
    FLOAT64    f64
    BOOL       u8
    STRING     u32 len + utf-8 bytes
    BYTES      u64 len + raw bytes
    LIST_INT64 u32 count + count * i64
    ARRAY      u8 dtype-code-len + dtype str + u8 ndim + ndim * u64 shape
               + u64 nbytes + raw C-order data
"""

from __future__ import annotations

import struct
from typing import Any, Optional

import numpy as np

from repro.marshal.format import Field, FieldKind, Format, FormatRegistry

MAGIC = 0x0FF5F0CD
_FLAG_SCHEMA = 0x01


class MarshalError(RuntimeError):
    """Malformed message, unknown format, or value/schema mismatch."""


# ---------------------------------------------------------------------------
# Field packers
# ---------------------------------------------------------------------------

def _pack_field(field: Field, value: Any, out: bytearray) -> None:
    kind = field.kind
    try:
        if kind == FieldKind.INT64:
            out += struct.pack("<q", int(value))
        elif kind == FieldKind.FLOAT64:
            out += struct.pack("<d", float(value))
        elif kind == FieldKind.BOOL:
            out += struct.pack("<B", 1 if value else 0)
        elif kind == FieldKind.STRING:
            b = str(value).encode("utf-8")
            out += struct.pack("<I", len(b))
            out += b
        elif kind == FieldKind.BYTES:
            b = bytes(value)
            out += struct.pack("<Q", len(b))
            out += b
        elif kind == FieldKind.LIST_INT64:
            vals = [int(v) for v in value]
            out += struct.pack("<I", len(vals))
            out += struct.pack(f"<{len(vals)}q", *vals) if vals else b""
        elif kind == FieldKind.ARRAY:
            arr = np.ascontiguousarray(value)
            dt = arr.dtype.str.encode("ascii")
            out += struct.pack("<B", len(dt))
            out += dt
            out += struct.pack("<B", arr.ndim)
            for dim in arr.shape:
                out += struct.pack("<Q", dim)
            raw = arr.tobytes()
            out += struct.pack("<Q", len(raw))
            out += raw
        else:  # pragma: no cover - exhaustive over FieldKind
            raise MarshalError(f"unsupported kind {kind}")
    except (TypeError, ValueError, OverflowError) as exc:
        raise MarshalError(
            f"cannot pack field {field.name!r} as {kind.name}: {exc}"
        ) from exc


def _unpack_field(field: Field, data: bytes, off: int) -> tuple[Any, int]:
    kind = field.kind
    if kind == FieldKind.INT64:
        (v,) = struct.unpack_from("<q", data, off)
        return v, off + 8
    if kind == FieldKind.FLOAT64:
        (v,) = struct.unpack_from("<d", data, off)
        return v, off + 8
    if kind == FieldKind.BOOL:
        (v,) = struct.unpack_from("<B", data, off)
        return bool(v), off + 1
    if kind == FieldKind.STRING:
        (n,) = struct.unpack_from("<I", data, off)
        off += 4
        return data[off : off + n].decode("utf-8"), off + n
    if kind == FieldKind.BYTES:
        (n,) = struct.unpack_from("<Q", data, off)
        off += 8
        return bytes(data[off : off + n]), off + n
    if kind == FieldKind.LIST_INT64:
        (n,) = struct.unpack_from("<I", data, off)
        off += 4
        vals = list(struct.unpack_from(f"<{n}q", data, off)) if n else []
        return vals, off + 8 * n
    if kind == FieldKind.ARRAY:
        (dlen,) = struct.unpack_from("<B", data, off)
        off += 1
        dtype = np.dtype(data[off : off + dlen].decode("ascii"))
        off += dlen
        (ndim,) = struct.unpack_from("<B", data, off)
        off += 1
        shape = []
        for _ in range(ndim):
            (dim,) = struct.unpack_from("<Q", data, off)
            off += 8
            shape.append(dim)
        (nbytes,) = struct.unpack_from("<Q", data, off)
        off += 8
        arr = np.frombuffer(data[off : off + nbytes], dtype=dtype).reshape(shape)
        return arr.copy(), off + nbytes
    raise MarshalError(f"unsupported kind {kind}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Message encode / decode
# ---------------------------------------------------------------------------

def encode_message(
    fmt: Format,
    record: dict,
    peer_registry: Optional[FormatRegistry] = None,
) -> bytes:
    """Encode ``record`` against ``fmt``.

    ``peer_registry`` models the *receiver's* format knowledge: if given
    and it already knows the format, the schema is not inlined (steady
    state); otherwise the self-description rides along (first contact).
    """
    missing = [f.name for f in fmt.fields if f.name not in record]
    if missing:
        raise MarshalError(f"record missing fields {missing} for format {fmt.name!r}")

    inline_schema = peer_registry is None or not peer_registry.knows(fmt)
    flags = _FLAG_SCHEMA if inline_schema else 0

    body = bytearray()
    for field in fmt.fields:
        _pack_field(field, record[field.name], body)

    out = bytearray()
    out += struct.pack("<I", MAGIC)
    out += struct.pack("<B", flags)
    out += struct.pack("<Q", fmt.format_id)
    if inline_schema:
        out += fmt.self_description()
    out += struct.pack("<Q", len(body))
    out += body
    return bytes(out)


def decode_message(
    data: bytes, registry: FormatRegistry
) -> tuple[Format, dict]:
    """Decode one message; learns inlined schemas into ``registry``."""
    fmt, record, _ = decode_stream(data, registry)
    return fmt, record


def decode_stream(
    data: bytes, registry: FormatRegistry
) -> tuple[Format, dict, int]:
    """Like :func:`decode_message` but also returns bytes consumed.

    Needed when messages are concatenated (BP-lite index regions, shm
    channel batches).
    """
    if len(data) < 13:
        raise MarshalError(f"message truncated ({len(data)} bytes)")
    (magic,) = struct.unpack_from("<I", data, 0)
    if magic != MAGIC:
        raise MarshalError(f"bad magic {magic:#x}")
    (flags,) = struct.unpack_from("<B", data, 4)
    (format_id,) = struct.unpack_from("<Q", data, 5)
    off = 13

    if flags & _FLAG_SCHEMA:
        fmt, consumed = Format.from_self_description(data[off:])
        off += consumed
        if fmt.format_id != format_id:
            raise MarshalError(
                f"inlined schema id {fmt.format_id:#x} != header id {format_id:#x}"
            )
        registry.register(fmt)
    else:
        maybe = registry.by_id(format_id)
        if maybe is None:
            raise MarshalError(f"unknown format id {format_id:#x} and no inlined schema")
        fmt = maybe

    (body_len,) = struct.unpack_from("<Q", data, off)
    off += 8
    if off + body_len > len(data):
        raise MarshalError("body extends past end of message")

    record: dict = {}
    pos = off
    for field in fmt.fields:
        value, pos = _unpack_field(field, data, pos)
        record[field.name] = value
    if pos - off != body_len:
        raise MarshalError(
            f"body length mismatch: declared {body_len}, consumed {pos - off}"
        )
    return fmt, record, pos
