"""Format (schema) objects and the format registry."""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Optional

import numpy as np


class FieldKind(IntEnum):
    """Wire types supported by the marshaling layer."""

    INT64 = 1
    FLOAT64 = 2
    STRING = 3      # UTF-8, length-prefixed
    BYTES = 4       # raw, length-prefixed
    ARRAY = 5       # n-dimensional numpy array: dtype + shape + data
    BOOL = 6
    LIST_INT64 = 7  # variable-length list of int64


@dataclass(frozen=True)
class Field:
    """One named, typed field of a format."""

    name: str
    kind: FieldKind

    def __post_init__(self) -> None:
        if not self.name or "\x00" in self.name:
            raise ValueError(f"invalid field name {self.name!r}")
        if not isinstance(self.kind, FieldKind):
            raise TypeError(f"kind must be FieldKind, got {self.kind!r}")


@dataclass(frozen=True)
class Format:
    """A named, ordered field list — the unit of schema exchange.

    ``format_id`` is content-derived (first 8 bytes of a SHA-256 over the
    self-description), so independently-created identical formats agree on
    ids without coordination — mirroring FFS's server-assigned-but-stable
    format tokens.
    """

    name: str
    fields: tuple[Field, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("format name must be non-empty")
        seen = set()
        for f in self.fields:
            if f.name in seen:
                raise ValueError(f"duplicate field {f.name!r} in format {self.name!r}")
            seen.add(f.name)

    @property
    def format_id(self) -> int:
        return int.from_bytes(
            hashlib.sha256(self.self_description()).digest()[:8], "big"
        )

    def self_description(self) -> bytes:
        """Canonical byte encoding of the schema itself."""
        out = bytearray()
        name_b = self.name.encode("utf-8")
        out += struct.pack("<I", len(name_b))
        out += name_b
        out += struct.pack("<I", len(self.fields))
        for f in self.fields:
            fb = f.name.encode("utf-8")
            out += struct.pack("<I", len(fb))
            out += fb
            out += struct.pack("<B", int(f.kind))
        return bytes(out)

    @classmethod
    def from_self_description(cls, data: bytes) -> tuple["Format", int]:
        """Parse a schema; returns (format, bytes_consumed)."""
        off = 0
        (nlen,) = struct.unpack_from("<I", data, off)
        off += 4
        name = data[off : off + nlen].decode("utf-8")
        off += nlen
        (nfields,) = struct.unpack_from("<I", data, off)
        off += 4
        fields = []
        for _ in range(nfields):
            (flen,) = struct.unpack_from("<I", data, off)
            off += 4
            fname = data[off : off + flen].decode("utf-8")
            off += flen
            (kind,) = struct.unpack_from("<B", data, off)
            off += 1
            fields.append(Field(fname, FieldKind(kind)))
        return cls(name, tuple(fields)), off

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]


class FormatRegistry:
    """Holds known formats, keyed by id and by name.

    Encoders consult it to decide whether a message must inline its schema
    (first contact) or may reference the id alone; decoders use it to
    resolve ids and learn inlined schemas.
    """

    def __init__(self) -> None:
        self._by_id: dict[int, Format] = {}
        self._by_name: dict[str, Format] = {}

    def register(self, fmt: Format) -> Format:
        existing = self._by_name.get(fmt.name)
        if existing is not None and existing.format_id != fmt.format_id:
            raise ValueError(
                f"format {fmt.name!r} re-registered with a different schema"
            )
        self._by_id[fmt.format_id] = fmt
        self._by_name[fmt.name] = fmt
        return fmt

    def define(self, name: str, fields: Iterable[tuple[str, FieldKind]]) -> Format:
        """Convenience: build and register a format from (name, kind) pairs."""
        fmt = Format(name, tuple(Field(n, k) for n, k in fields))
        return self.register(fmt)

    def by_id(self, format_id: int) -> Optional[Format]:
        return self._by_id.get(format_id)

    def by_name(self, name: str) -> Optional[Format]:
        return self._by_name.get(name)

    def knows(self, fmt: Format) -> bool:
        return fmt.format_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)
