"""Figure 9: S3D_Box total execution time under placement tuning.

(a) on Smoky and (b) on Titan; series: Inline, Hybrid (Data Aware
Mapping), Staging (Holistic), Staging (Node Topology Aware), Lower Bound.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.coupled import CoupledOptions, evaluate_s3d_placements
from repro.machine import smoky, titan
from repro.machine.topology import Machine

SERIES = (
    "inline",
    "hybrid (data-aware)",
    "staging (holistic)",
    "staging (topology-aware)",
    "lower-bound",
)

DEFAULT_CORES = {"smoky": (128, 256, 512), "titan": (256, 512, 1024)}


def _machine(name: str) -> Machine:
    if name == "smoky":
        return smoky(80)
    if name == "titan":
        return titan(200)
    raise ValueError(f"unknown machine {name!r} (want smoky or titan)")


def fig9_s3d_total_execution_time(
    machine_name: str,
    core_counts: Optional[Sequence[int]] = None,
    num_steps: int = 40,
    options: Optional[CoupledOptions] = None,
) -> list[dict]:
    """One sub-figure's data: a row per scale with TET per series.

    S3D_Box runs one rank per core, so "S3D-Box cores" equals ranks.
    """
    machine = _machine(machine_name)
    cores = core_counts or DEFAULT_CORES[machine_name]
    rows = []
    for c in cores:
        res = evaluate_s3d_placements(machine, c, num_steps=num_steps, options=options)
        row: dict = {"s3d_cores": c}
        for series in SERIES:
            row[series] = res[series].total_execution_time
        rows.append(row)
    return rows
