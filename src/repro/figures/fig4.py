"""Figure 4: cost of dynamic buffer allocation and registration in RDMA
Get on Cray XK6 with the Gemini interconnect.

The paper plots point-to-point Get bandwidth against message size for two
configurations: dynamic allocation + registration per transfer, and
static (cached) buffers.  We regenerate the sweep from the Gemini model
and additionally run the *functional* path — actual Gets through the
NNTI layer with and without a warmed registration cache — to confirm the
protocol-level source of the gap.
"""

from __future__ import annotations

from repro.machine.interconnect import GeminiInterconnect
from repro.transport.rdma import NntiFabric
from repro.util import KiB, MiB

#: The paper's x-axis range (bytes).
MESSAGE_SIZES = [
    1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB,
    1 * MiB, 4 * MiB, 16 * MiB,
]


def fig4_rdma_registration(sizes=None) -> list[dict]:
    """Rows: message size, static/dynamic bandwidth (MB/s), their ratio."""
    ic = GeminiInterconnect()
    rows = []
    for size in sizes or MESSAGE_SIZES:
        static = ic.get_bandwidth(size, static_buffers=True)
        dynamic = ic.get_bandwidth(size, static_buffers=False)
        rows.append(
            {
                "msg_bytes": size,
                "static_MBps": static / 1e6,
                "dynamic_MBps": dynamic / 1e6,
                "dynamic/static": dynamic / static,
            }
        )
    return rows


def fig4_functional_check(size: int = 4 * MiB, repeats: int = 8) -> dict:
    """Drive real Gets through NNTI: first (cold) vs steady-state time."""
    fabric = NntiFabric(GeminiInterconnect())
    a = fabric.endpoint(0, "fig4-sender")
    b = fabric.endpoint(1, "fig4-receiver")
    conn = fabric.connect(a, b)
    payload = b"\x5a" * size
    times = []
    for _ in range(repeats):
        _, t = conn.get_bulk(b, payload)
        times.append(t)
    return {
        "msg_bytes": size,
        "cold_time_s": times[0],
        "steady_time_s": times[-1],
        "cache_hits": b.reg_cache.stats.hits,
        "setup_saved_s": b.reg_cache.stats.setup_time_saved,
    }
