"""Figure 7: detailed timing of GTS and analytics, 128 MPI processes on
Smoky.

Three cases:

* **Case 1** — GTS at 3 OpenMP threads with analytics on the helper core
  (phases: sim cycle 1, sim cycle 2, I/O, plus the analytics' analysis
  and idle time);
* **Case 2** — GTS at 4 OpenMP threads with analytics inline;
* **Case 3** — GTS at 3 OpenMP threads running solo.
"""

from __future__ import annotations

from typing import Optional

from repro.coupled import (
    CoupledOptions,
    PlacementStyle,
    gts_workload,
    simulate_coupled,
)
from repro.machine import smoky


def fig7_gts_detailed_timing(
    num_ranks: int = 128,
    num_steps: int = 20,
    options: Optional[CoupledOptions] = None,
) -> list[dict]:
    """Rows: one per case with per-phase totals (seconds)."""
    machine = smoky(max(40, num_ranks // 4 + 4))
    opts = options or CoupledOptions()
    rows = []

    # Case 1: helper core (3 OpenMP threads + analytics on the 4th core).
    helper_wl, _ = gts_workload(machine, num_ranks, helper_mode=True, num_steps=num_steps)
    r1 = simulate_coupled(
        machine, helper_wl, style=PlacementStyle.HELPER_CORE,
        num_ana=num_ranks, options=opts,
    )
    rows.append(
        {
            "case": "1: helper core (3 omp)",
            "cycle1_s": r1.phases["cycle1"],
            "cycle2_s": r1.phases["cycle2"],
            "io_s": r1.phases["io"],
            "analysis_s": r1.phases["analysis"],
            "idle_s": r1.phases.get("ana_idle", 0.0),
            "tet_s": r1.total_execution_time,
            "idle_frac": r1.analytics_idle_fraction,
        }
    )

    # Case 2: inline (4 OpenMP threads, analytics called from GTS).
    full_wl, _ = gts_workload(machine, num_ranks, helper_mode=False, num_steps=num_steps)
    r2 = simulate_coupled(machine, full_wl, style=PlacementStyle.INLINE, options=opts)
    rows.append(
        {
            "case": "2: inline (4 omp)",
            "cycle1_s": r2.phases["cycle1"],
            "cycle2_s": r2.phases["cycle2"],
            "io_s": r2.phases["io"],
            "analysis_s": r2.phases["analysis"],
            "idle_s": 0.0,
            "tet_s": r2.total_execution_time,
            "idle_frac": 0.0,
        }
    )

    # Case 3: solo (3 OpenMP threads, no I/O or analytics).
    r3 = simulate_coupled(machine, helper_wl, style=PlacementStyle.SOLO, options=opts)
    rows.append(
        {
            "case": "3: solo (3 omp)",
            "cycle1_s": r3.phases["cycle1"],
            "cycle2_s": r3.phases["cycle2"],
            "io_s": 0.0,
            "analysis_s": 0.0,
            "idle_s": 0.0,
            "tet_s": r3.total_execution_time,
            "idle_frac": 0.0,
        }
    )
    return rows


def fig7_headline_numbers(rows: list[dict]) -> dict:
    """The figure's callouts: inline-analytics share, core-loss cost,
    helper-core cache cost, analytics idle fraction."""
    case1 = next(r for r in rows if r["case"].startswith("1"))
    case2 = next(r for r in rows if r["case"].startswith("2"))
    case3 = next(r for r in rows if r["case"].startswith("3"))
    inline_fraction = case2["analysis_s"] / case2["tet_s"]
    # Core loss: solo 3-thread compute vs inline's 4-thread compute.
    core_loss = (case3["cycle1_s"] + case3["cycle2_s"]) / (
        case2["cycle1_s"] + case2["cycle2_s"]
    ) - 1.0
    cache_cost = (case1["cycle1_s"] + case1["cycle2_s"]) / (
        case3["cycle1_s"] + case3["cycle2_s"]
    ) - 1.0
    return {
        "inline_analysis_fraction": inline_fraction,
        "take_one_core_slowdown": core_loss,
        "helper_cache_slowdown": cache_cost,
        "analytics_idle_fraction": case1["idle_frac"],
    }
