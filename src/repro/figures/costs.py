"""Table-like numbers from Section IV's prose: CPU hours, movement
volumes, gaps to the lower bound, and the S3D data-movement tuning.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.adios.selection import block_decompose, choose_grid
from repro.core.redistribution import CachingOption, RedistributionEngine
from repro.coupled import (
    CoupledOptions,
    evaluate_gts_placements,
    evaluate_s3d_placements,
)
from repro.coupled.scenarios import gts_ranks_for_cores
from repro.machine import smoky, titan
from repro.machine.interconnect import Interconnect
from repro.util import MiB

#: Host-side processing charged per handshake control message at the
#: coordinators (gather/scatter bookkeeping) — calibrated so the untuned
#: S3D movement time at 1 K cores lands near the paper's 1.2 s (Titan)
#: and 4.0 s (Smoky).
COORDINATOR_MSG_OVERHEAD = {"gemini": 25e-6, "infiniband-ddr": 85e-6}


def _machine(name: str):
    return smoky(80) if name == "smoky" else titan(200)


# ---------------------------------------------------------------------------
# GTS cost metrics (Section IV.A prose)
# ---------------------------------------------------------------------------

def gts_cost_metrics(
    machine_name: str = "smoky",
    gts_cores: int = 512,
    num_steps: int = 20,
    options: Optional[CoupledOptions] = None,
) -> list[dict]:
    """Rows per placement: TET, CPU hours, movement split, gap to LB."""
    machine = _machine(machine_name)
    ranks = gts_ranks_for_cores(machine, gts_cores)
    res = evaluate_gts_placements(machine, ranks, num_steps=num_steps, options=options)
    lb = res["lower-bound"].total_execution_time
    rows = []
    for name, r in res.items():
        m = r.metrics
        rows.append(
            {
                "placement": name,
                "tet_s": m.total_execution_time,
                "gap_to_lb": m.gap_to(lb) if name != "lower-bound" else 0.0,
                "nodes": m.num_nodes,
                "cpu_hours": m.total_cpu_hours,
                "inter_node_MB": m.inter_node_bytes / MiB,
                "intra_node_MB": m.intra_node_bytes / MiB,
                "ana_idle": r.analytics_idle_fraction,
                "sim_slowdown": sum(r.step.slowdowns.values()),
            }
        )
    return rows


def s3d_cost_metrics(
    machine_name: str = "titan",
    s3d_cores: int = 512,
    num_steps: int = 40,
    options: Optional[CoupledOptions] = None,
) -> list[dict]:
    machine = _machine(machine_name)
    res = evaluate_s3d_placements(machine, s3d_cores, num_steps=num_steps, options=options)
    lb = res["lower-bound"]
    rows = []
    for name, r in res.items():
        m = r.metrics
        rows.append(
            {
                "placement": name,
                "tet_s": m.total_execution_time,
                "gap_to_lb": m.gap_to(lb.total_execution_time) if name != "lower-bound" else 0.0,
                "nodes": m.num_nodes,
                "extra_resources": m.num_nodes / lb.metrics.num_nodes - 1.0,
                "cpu_hours": m.total_cpu_hours,
                "inter_node_MB": m.inter_node_bytes / MiB,
                "file_MB": m.file_bytes / MiB,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# S3D data-movement tuning (Section IV.B.1)
# ---------------------------------------------------------------------------

def _s3d_engine(
    num_writers: int, num_readers: int, caching: CachingOption, batching: bool
) -> RedistributionEngine:
    """The S3D global-array exchange: 3-D blocks to reader slabs."""
    # A modest logical grid carries the protocol structure; message counts
    # scale with writer/reader process counts which we model explicitly.
    gshape = (num_writers * 4, 64, 64)
    writers = block_decompose(gshape, (num_writers, 1, 1))
    readers = block_decompose(gshape, (num_readers, 1, 1))
    return RedistributionEngine(writers, readers, caching=caching, batching=batching)


def s3d_movement_tuning(
    machine_name: str = "titan",
    num_writers: int = 1024,
    num_readers: Optional[int] = None,
    num_variables: int = 22,
    bytes_per_writer: int = 1_700_000,
) -> list[dict]:
    """Untuned vs tuned per-step data-movement time at 1 K cores.

    Untuned: NO_CACHING, per-variable messages, synchronous writes — the
    simulation blocks for the whole handshake-dominated exchange.
    Tuned: CACHING_ALL + batching + asynchronous writes — the exchange
    overlaps computation; the movement time that remains observable is
    the receiver-directed transfer makespan (the paper's Titan
    1.2 s → 0.053 s and Smoky 4.0 s → 0.077 s).

    Reader counts default to the rate-matched allocations on each machine
    (Smoky's slower nodes need twice the viz processes), one per staging
    node.
    """
    machine = _machine(machine_name)
    ic: Interconnect = machine.interconnect  # type: ignore[assignment]
    if num_readers is None:
        num_readers = 16 if machine_name == "smoky" else 8
    overhead = COORDINATOR_MSG_OVERHEAD[ic.name]
    itemsize = 8

    def transfer_time(w: int, r: int, nbytes: int) -> float:
        return ic.params.control_msg_time + ic.bulk_transfer_time(nbytes)

    def control_time(nbytes: int) -> float:
        return overhead + ic.params.latency

    rows = []

    # -- untuned: synchronous, per-variable handshakes --------------------
    eng = _s3d_engine(num_writers, num_readers, CachingOption.NO_CACHING, batching=False)
    scale = bytes_per_writer / max(
        1, sum(p.nbytes(itemsize) for p in eng.plan.sends_of(0)) * num_variables
    )
    untuned = eng.writer_visible_time(
        itemsize=itemsize,
        num_variables=num_variables,
        transfer_time=lambda w, r, n: transfer_time(w, r, int(n * scale)),
        control_time=control_time,
        asynchronous=False,
        local_copy_bw=machine.node_type.mem_bw_local,
    )
    rows.append(
        {
            "configuration": "untuned (no caching, unbatched, sync)",
            "machine": machine_name,
            "movement_s": untuned,
            "handshake_msgs_per_step": eng.handshakes_performed[-1].messages,
            "data_msgs_per_step": eng.data_message_count(num_variables),
        }
    )

    # -- tuned: cached, batched, asynchronous ------------------------------
    eng = _s3d_engine(num_writers, num_readers, CachingOption.CACHING_ALL, batching=True)
    eng.handshake(num_variables)  # warm-up step fills both sides' caches
    hs = eng.handshake(num_variables)
    from repro.transport.rdma import TransferRequest, TransferScheduler

    flows_per_reader = -(-num_writers // num_readers)
    sched = TransferScheduler(ic, max_concurrent=4, endpoint_bandwidth=ic.injection_bw)
    reqs = [TransferRequest(i, bytes_per_writer) for i in range(flows_per_reader)]
    tuned = sched.makespan(reqs)
    rows.append(
        {
            "configuration": "tuned (caching=ALL, batched, async)",
            "machine": machine_name,
            "movement_s": tuned,
            "handshake_msgs_per_step": hs.messages,
            "data_msgs_per_step": eng.data_message_count(num_variables),
        }
    )
    rows.append(
        {
            "configuration": "speedup (untuned / tuned)",
            "machine": machine_name,
            "movement_s": untuned / max(tuned, 1e-12),
            "handshake_msgs_per_step": 0,
            "data_msgs_per_step": 0,
        }
    )
    return rows
