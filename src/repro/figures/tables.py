"""Plain-text table rendering for the regenerated figures."""

from __future__ import annotations

import os
from typing import Any, Optional, Sequence


def format_table(
    rows: Sequence[dict],
    title: str = "",
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render rows of dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)\n"
    cols = list(columns) if columns else list(rows[0].keys())

    def cell(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1e5 or abs(value) < 1e-3:
                return f"{value:.3e}"
            return f"{value:.3f}"
        return str(value)

    table = [[cell(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in table)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def write_table(
    rows: Sequence[dict],
    name: str,
    title: str = "",
    columns: Optional[Sequence[str]] = None,
    results_dir: str = "results",
) -> str:
    """Render and persist a table under ``results/``; returns the text."""
    text = format_table(rows, title=title, columns=columns)
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
