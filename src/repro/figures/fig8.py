"""Figure 8: last-level cache miss rates of GTS on Smoky.

Two bars: GTS (3 OpenMP threads) running solo, and the same GTS sharing
its L3 with helper-core analytics — the paper measures 47 % more misses
and a 4.1 % cycle-time increase for the shared case.
"""

from __future__ import annotations

from repro.coupled.scenarios import GTS_ANALYTICS_CACHE, GTS_CACHE
from repro.machine import smoky, titan


def fig8_cache_miss_rates(machine_name: str = "smoky") -> list[dict]:
    machine = smoky(1) if machine_name == "smoky" else titan(1)
    model = machine.cache_model
    l3 = machine.node_type.l3_bytes_per_domain
    solo = GTS_CACHE.base_miss_per_kinst
    pairs = model.corun([GTS_CACHE, GTS_ANALYTICS_CACHE], l3)
    shared, slowdown = pairs[0]
    return [
        {
            "config": "GTS (3 omp) solo",
            "llc_misses_per_kinst": solo,
            "sim_slowdown": 0.0,
        },
        {
            "config": "GTS (3 omp) + analytics on helper core",
            "llc_misses_per_kinst": shared,
            "sim_slowdown": slowdown,
        },
        {
            "config": "inflation",
            "llc_misses_per_kinst": shared / solo - 1.0,
            "sim_slowdown": slowdown,
        },
    ]
