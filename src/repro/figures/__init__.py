"""Regeneration of every figure and table in the paper's evaluation.

Each ``fig*``/``table*`` function returns the rows/series the paper
reports (as lists of dicts), computed entirely from this reproduction's
models and implementations.  The benchmark harness under ``benchmarks/``
wraps these with pytest-benchmark and writes the rendered tables to
``results/``; ``EXPERIMENTS.md`` records paper-vs-measured values.
"""

from repro.figures.tables import format_table, write_table
from repro.figures.fig4 import fig4_rdma_registration
from repro.figures.fig6 import fig6_gts_total_execution_time
from repro.figures.fig7 import fig7_gts_detailed_timing
from repro.figures.fig8 import fig8_cache_miss_rates
from repro.figures.fig9 import fig9_s3d_total_execution_time
from repro.figures.costs import (
    gts_cost_metrics,
    s3d_cost_metrics,
    s3d_movement_tuning,
)

__all__ = [
    "fig4_rdma_registration",
    "fig6_gts_total_execution_time",
    "fig7_gts_detailed_timing",
    "fig8_cache_miss_rates",
    "fig9_s3d_total_execution_time",
    "format_table",
    "gts_cost_metrics",
    "s3d_cost_metrics",
    "s3d_movement_tuning",
    "write_table",
]
