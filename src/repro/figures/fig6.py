"""Figure 6: GTS total execution time under placement tuning.

(a) on Smoky and (b) on Titan; series: Inline, Helper Core (Data Aware
Mapping), Helper Core (Holistic), Helper Core (Node Topology Aware),
Staging, and the solo-run Lower Bound; weak scaling over "GTS cores".
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.coupled import CoupledOptions, evaluate_gts_placements
from repro.coupled.scenarios import gts_ranks_for_cores
from repro.machine import smoky, titan
from repro.machine.topology import Machine

#: Series order matching the figure legend.
SERIES = (
    "inline",
    "helper (data-aware)",
    "helper (holistic)",
    "helper (topology-aware)",
    "staging",
    "lower-bound",
)

#: Weak-scaling x-axis ("GTS cores") per machine — scaled to what the
#: placement solver handles quickly; trends match the paper's range.
DEFAULT_CORES = {"smoky": (128, 256, 512), "titan": (256, 512, 1024)}


def _machine(name: str) -> Machine:
    if name == "smoky":
        return smoky(80)
    if name == "titan":
        return titan(200)
    raise ValueError(f"unknown machine {name!r} (want smoky or titan)")


def fig6_gts_total_execution_time(
    machine_name: str,
    core_counts: Optional[Sequence[int]] = None,
    num_steps: int = 20,
    options: Optional[CoupledOptions] = None,
) -> list[dict]:
    """One sub-figure's data: a row per scale with TET per series."""
    machine = _machine(machine_name)
    cores = core_counts or DEFAULT_CORES[machine_name]
    rows = []
    for c in cores:
        ranks = gts_ranks_for_cores(machine, c)
        res = evaluate_gts_placements(machine, ranks, num_steps=num_steps, options=options)
        row: dict = {"gts_cores": c}
        for series in SERIES:
            row[series] = res[series].total_execution_time
        rows.append(row)
    return rows
