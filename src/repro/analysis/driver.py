"""FlexLint run orchestration: cache, parallelism, baseline.

The per-file pass (syntax rules + flow rules) is pure: its findings
depend only on the file's bytes and the :class:`LintConfig`.  That
makes it cacheable by content hash — the cache file maps ``path ->
{hash, findings, index}`` under an environment key derived from the
analysis version and config, so a config or rule change invalidates
everything at once while an ordinary edit re-lints only the touched
files.  Cache misses are parsed on a thread pool (``--jobs``).

The cross-file pass (FXL009) is recomputed every run from the per-file
:class:`~repro.analysis.project.ModuleIndex` entries, which are JSON in
the cache — a full-tree warm run does zero re-parses.

Baselines let a new rule land without a big-bang cleanup: each entry
pins one finding by a *fingerprint* (rule, path, the stripped source
line text, and the occurrence index of that combination) so entries
survive unrelated line drift.  A baselined finding is reported but does
not fail the run; ``--update-baseline`` rewrites the file from the
currently active findings.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.flexlint import (
    Finding,
    LintConfig,
    iter_py_files,
    lint_source,
)
from repro.analysis.project import ModuleIndex, index_source

__all__ = [
    "ANALYSIS_VERSION",
    "RunStats",
    "RunResult",
    "run",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

#: Bump to invalidate every cache entry (rule semantics changed).
ANALYSIS_VERSION = "2.0.0"

CACHE_VERSION = 1
BASELINE_VERSION = 1


@dataclass
class RunStats:
    """Cache/parallelism accounting for one run."""

    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1

    def to_dict(self) -> dict:
        return {
            "files": self.files,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "jobs": self.jobs,
        }


@dataclass
class RunResult:
    """Everything one orchestrated lint run produced."""

    findings: List[Finding]
    stats: RunStats

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if f.active]


def _env_key(config: LintConfig) -> str:
    payload = f"{ANALYSIS_VERSION}|{repr(config)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


# ---------------------------------------------------------------------------
# Baseline fingerprints
# ---------------------------------------------------------------------------

def fingerprint(finding: Finding, source: str, occurrence: int) -> str:
    """Stable identity of one finding: rule + path + the stripped text
    of the flagged line + the occurrence index among identical triples.
    Line *numbers* are deliberately excluded so unrelated edits above
    the finding do not orphan the baseline entry."""
    lines = source.splitlines()
    text = lines[finding.line - 1].strip() if 0 < finding.line <= len(lines) else ""
    payload = f"{finding.rule}|{_norm(finding.path)}|{text}|{occurrence}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


def _fingerprints(
    findings: Sequence[Finding], sources: Dict[str, str]
) -> List[str]:
    counts: Dict[Tuple[str, str, str], int] = {}
    out: List[str] = []
    for f in findings:
        source = sources.get(f.path, "")
        lines = source.splitlines()
        text = lines[f.line - 1].strip() if 0 < f.line <= len(lines) else ""
        key = (f.rule, _norm(f.path), text)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        out.append(fingerprint(f, source, occurrence))
    return out


def load_baseline(path: str) -> Dict[str, str]:
    """``fingerprint -> reason`` from a baseline file (empty if absent
    or unreadable — a corrupt baseline must not hide findings)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    out: Dict[str, str] = {}
    for entry in data.get("entries", ()):
        fp = entry.get("fingerprint")
        if isinstance(fp, str):
            out[fp] = str(entry.get("reason", "")) or "baselined"
    return out


def write_baseline(
    path: str, findings: Sequence[Finding], sources: Dict[str, str]
) -> int:
    """Write a baseline pinning every currently active finding."""
    active = [f for f in findings if f.active]
    fps = _fingerprints(active, sources)
    entries = [
        {
            "fingerprint": fp,
            "rule": f.rule,
            "path": _norm(f.path),
            "reason": f"accepted at baseline creation: {f.message}"[:160],
        }
        for f, fp in sorted(
            zip(active, fps), key=lambda pair: (pair[0].path, pair[0].line)
        )
    ]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {"version": BASELINE_VERSION, "tool": "flexlint", "entries": entries},
            fh, indent=2, sort_keys=True,
        )
        fh.write("\n")
    return len(entries)


def apply_baseline(
    findings: List[Finding], sources: Dict[str, str], baseline: Dict[str, str]
) -> List[Finding]:
    if not baseline:
        return findings
    fps = _fingerprints(findings, sources)
    out: List[Finding] = []
    for f, fp in zip(findings, fps):
        reason = baseline.get(fp)
        if reason is not None and f.active:
            out.append(replace(f, baselined=True, baseline_reason=reason))
        else:
            out.append(f)
    return out


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

def _load_cache(path: Optional[str], env: str) -> Dict[str, dict]:
    if path is None:
        return {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    if data.get("version") != CACHE_VERSION or data.get("env") != env:
        return {}
    files = data.get("files")
    return files if isinstance(files, dict) else {}


def _write_cache(path: Optional[str], env: str, files: Dict[str, dict]) -> None:
    if path is None:
        return
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(
                {"version": CACHE_VERSION, "env": env, "files": files},
                fh, sort_keys=True,
            )
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _analyze_one(
    path: str, source: str, config: LintConfig
) -> Tuple[List[Finding], Optional[ModuleIndex]]:
    findings = lint_source(source, path=path, config=config)
    try:
        index = index_source(source, path)
    except SyntaxError:
        index = None  # lint_source already reported FXL000
    return findings, index


# ---------------------------------------------------------------------------
# The orchestrated run
# ---------------------------------------------------------------------------

def run(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    jobs: Optional[int] = None,
    cache_path: Optional[str] = None,
    baseline_path: Optional[str] = None,
    update_baseline: bool = False,
) -> RunResult:
    """Lint ``paths`` with caching, parallel parsing, the cross-file
    pass, and baseline suppression applied — the CLI's engine."""
    cfg = config or LintConfig()
    env = _env_key(cfg)
    files = iter_py_files(paths)
    jobs = jobs or min(8, os.cpu_count() or 1)
    stats = RunStats(files=len(files), jobs=jobs)

    cache = _load_cache(cache_path, env)
    new_cache: Dict[str, dict] = {}
    sources: Dict[str, str] = {}
    findings: List[Finding] = []
    indexes: Dict[str, ModuleIndex] = {}
    misses: List[Tuple[str, str, str]] = []  # (path, digest, source)

    for path in files:
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            findings.append(
                Finding("FXL000", path, 0, 0, f"unreadable file: {exc}")
            )
            continue
        digest = hashlib.sha256(raw).hexdigest()
        source = raw.decode("utf-8", errors="replace")
        sources[path] = source
        entry = cache.get(_norm(path))
        if entry is not None and entry.get("hash") == digest:
            stats.cache_hits += 1
            cached = [Finding.from_dict(d) for d in entry.get("findings", ())]
            findings.extend(cached)
            if entry.get("index") is not None:
                indexes[path] = ModuleIndex.from_dict(path, entry["index"])
            new_cache[_norm(path)] = entry
        else:
            stats.cache_misses += 1
            misses.append((path, digest, source))

    if misses:
        def work(item: Tuple[str, str, str]):
            path, digest, source = item
            return path, digest, _analyze_one(path, source, cfg)

        if jobs > 1 and len(misses) > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(work, misses))
        else:
            results = [work(item) for item in misses]
        for path, digest, (file_findings, index) in results:
            findings.extend(file_findings)
            if index is not None:
                indexes[path] = index
            new_cache[_norm(path)] = {
                "hash": digest,
                "findings": [f.to_dict() for f in file_findings],
                "index": index.to_dict() if index is not None else None,
            }

    # Cross-file pass over the assembled index (cheap; never cached).
    from repro.analysis.flowrules import check_dispatch
    from repro.analysis.project import ProjectIndex

    project = ProjectIndex()
    for index in indexes.values():
        project.add(index)
    cross = sorted(check_dispatch(project, cfg), key=lambda f: (f.path, f.line))
    if cross:
        from repro.analysis.flexlint import _apply_waivers

        by_path: Dict[str, List[Finding]] = {}
        for f in cross:
            by_path.setdefault(f.path, []).append(f)
        for path, group in by_path.items():
            findings.extend(_apply_waivers(group, sources.get(path, "")))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    if update_baseline and baseline_path:
        write_baseline(baseline_path, findings, sources)
    if baseline_path:
        findings = apply_baseline(
            findings, sources, load_baseline(baseline_path)
        )

    _write_cache(cache_path, env, new_cache)
    return RunResult(findings=findings, stats=stats)
