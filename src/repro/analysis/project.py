"""Whole-program index for cross-file FlexLint rules.

One parse pass over the analyzed file set produces a
:class:`ProjectIndex`: per module, the top-level symbols, every enum
definition with member line numbers, every dotted attribute reference,
and every call site.  Cross-file rules (FXL009 exhaustive ``MsgType``
dispatch) query the index instead of re-walking trees.

The per-module summary (:class:`ModuleIndex`) is deliberately built
from plain strings/ints so the incremental cache can persist it as JSON
(:meth:`ModuleIndex.to_dict` / :meth:`ModuleIndex.from_dict`) — a file
whose content hash is unchanged contributes its index entry without
being re-parsed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

__all__ = ["EnumDef", "CallSite", "ModuleIndex", "ProjectIndex", "index_source"]

_ENUM_BASES = {"Enum", "IntEnum", "StrEnum", "IntFlag", "Flag"}


@dataclass(frozen=True)
class EnumDef:
    """An enum class and the source line of each member."""

    name: str
    path: str
    lineno: int
    members: Tuple[Tuple[str, int], ...]  # (member name, lineno)

    def member_names(self) -> FrozenSet[str]:
        return frozenset(name for name, _line in self.members)


@dataclass(frozen=True)
class CallSite:
    """One call expression: best-effort dotted callee name + location."""

    callee: str
    lineno: int
    col: int


@dataclass
class ModuleIndex:
    """Searchable summary of one module."""

    path: str
    symbols: FrozenSet[str] = frozenset()
    enums: Tuple[EnumDef, ...] = ()
    attr_refs: FrozenSet[Tuple[str, str]] = frozenset()
    call_sites: Tuple[CallSite, ...] = ()

    def to_dict(self) -> dict:
        return {
            "symbols": sorted(self.symbols),
            "enums": [
                {
                    "name": e.name,
                    "lineno": e.lineno,
                    "members": [[n, ln] for n, ln in e.members],
                }
                for e in self.enums
            ],
            "attr_refs": sorted([base, attr] for base, attr in self.attr_refs),
            "call_sites": [[c.callee, c.lineno, c.col] for c in self.call_sites],
        }

    @classmethod
    def from_dict(cls, path: str, data: Mapping) -> "ModuleIndex":
        return cls(
            path=path,
            symbols=frozenset(data.get("symbols", ())),
            enums=tuple(
                EnumDef(
                    name=e["name"],
                    path=path,
                    lineno=int(e["lineno"]),
                    members=tuple((n, int(ln)) for n, ln in e["members"]),
                )
                for e in data.get("enums", ())
            ),
            attr_refs=frozenset(
                (base, attr) for base, attr in data.get("attr_refs", ())
            ),
            call_sites=tuple(
                CallSite(callee, int(ln), int(col))
                for callee, ln, col in data.get("call_sites", ())
            ),
        )


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted(node: ast.expr) -> Optional[str]:
    """Best-effort dotted name for a callee expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return None


def index_source(source: str, path: str) -> ModuleIndex:
    """Parse ``source`` and build its :class:`ModuleIndex`.  Raises
    ``SyntaxError`` like ``ast.parse`` — callers report FXL000."""
    tree = ast.parse(source)
    return index_tree(tree, path)


def index_tree(tree: ast.Module, path: str) -> ModuleIndex:
    symbols = set()
    enums: List[EnumDef] = []
    attr_refs = set()
    call_sites: List[CallSite] = []

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            symbols.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    symbols.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            symbols.add(node.target.id)

    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            base_names = {_base_name(b) for b in node.bases}
            if base_names & _ENUM_BASES:
                members: List[Tuple[str, int]] = []
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if isinstance(target, ast.Name) and not target.id.startswith(
                                "_"
                            ):
                                members.append((target.id, stmt.lineno))
                enums.append(
                    EnumDef(
                        name=node.name,
                        path=path,
                        lineno=node.lineno,
                        members=tuple(members),
                    )
                )
        elif isinstance(node, ast.Attribute):
            base = _dotted(node.value)
            if base is not None:
                attr_refs.add((base, node.attr))
        elif isinstance(node, ast.Call):
            callee = _dotted(node.func)
            if callee is not None:
                call_sites.append(CallSite(callee, node.lineno, node.col_offset))

    return ModuleIndex(
        path=path,
        symbols=frozenset(symbols),
        enums=tuple(enums),
        attr_refs=frozenset(attr_refs),
        call_sites=tuple(call_sites),
    )


class ProjectIndex:
    """The whole-program index: one :class:`ModuleIndex` per file."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleIndex] = {}

    def add(self, index: ModuleIndex) -> None:
        self.modules[_norm(index.path)] = index

    def add_source(self, source: str, path: str) -> ModuleIndex:
        index = index_source(source, path)
        self.add(index)
        return index

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "ProjectIndex":
        """Build an index from ``{path: source}`` (tests use this to
        simulate cross-file scenarios without touching disk)."""
        project = cls()
        for path, source in sources.items():
            try:
                project.add_source(source, path)
            except SyntaxError:
                continue  # the per-file pass reports FXL000
        return project

    # -- queries -------------------------------------------------------
    def module_for_suffix(self, suffix: str) -> Optional[ModuleIndex]:
        """The module whose normalized path ends with ``suffix``."""
        suffix = suffix.replace("\\", "/")
        for path, index in self.modules.items():
            if path == suffix or path.endswith("/" + suffix) or path.endswith(suffix):
                return index
        return None

    def find_enum(self, path_suffix: str, enum_name: str) -> Optional[EnumDef]:
        module = self.module_for_suffix(path_suffix)
        if module is None:
            return None
        for enum in module.enums:
            if enum.name == enum_name:
                return enum
        return None


def _norm(path: str) -> str:
    return path.replace("\\", "/")
