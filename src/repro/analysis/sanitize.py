"""Runtime concurrency sanitizer ("tsan-lite") for the FlexIO data plane.

The SHM transport's SPSC queues are only correct under single-producer /
single-consumer discipline, the stream pipeline hands work to a
background drainer thread that must be joined at shutdown, and a handful
of locks guard shared state.  None of those contracts is enforced by the
type system — this module checks them at run time when enabled:

* **SPSC discipline** — each queue records the first thread that ever
  enqueues (producer) and the first that ever dequeues (consumer); any
  operation from a *different* thread on the same side is a violation.
* **Lock-order inversions** — tracked locks build a global acquisition
  order graph (lockdep-style): observing ``B held while acquiring A``
  after ``A held while acquiring B`` flags a potential deadlock even if
  the run never actually deadlocked.
* **Un-joined drainer threads** — pipeline threads register at start and
  deregister on a successful join; :func:`check_shutdown` flags any
  registered thread still alive (a leaked or wedged drainer).
* **Buffer-lease discipline** — the zero-copy buffer plane
  (:mod:`repro.transport.buffers`) reports lease acquire/release;
  use-after-release and double-release are flagged as they happen, and
  :meth:`Sanitizer.check_leases` flags leases never released (leaked
  pool buffers or registered memory).

Enablement: set ``FLEXIO_SANITIZE=1`` in the environment (read lazily on
first use), or call :func:`enable` / :func:`disable` programmatically.
When disabled the cost is one ``None`` check per instrumented operation
and locks are plain :class:`threading.Lock` objects.

The chaos harness (:mod:`repro.tools.chaos`) folds sanitizer violations
into its invariant report, and the test suite exercises the checks
directly (``tests/test_sanitize.py``).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Optional

#: Violation kinds (the ``Violation.kind`` vocabulary).
SPSC_PRODUCER = "spsc-producer"
SPSC_CONSUMER = "spsc-consumer"
LOCK_ORDER = "lock-order"
UNJOINED_THREAD = "unjoined-thread"
LEASE_LEAK = "lease-leak"
LEASE_USE_AFTER_RELEASE = "lease-use-after-release"
LEASE_DOUBLE_RELEASE = "lease-double-release"


@dataclass(frozen=True)
class Violation:
    """One detected concurrency-discipline violation."""

    kind: str
    what: str
    details: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.what} — {self.details}"


class SanitizerError(AssertionError):
    """Raised by :func:`assert_clean` when violations were recorded."""


class Sanitizer:
    """Collects violations; one instance is active process-wide."""

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._violations: list[Violation] = []
        #: (id(obj), side) -> (thread ident, thread name) of first user.
        self._spsc_owner: dict[tuple[int, str], tuple[int, str]] = {}
        self._spsc_flagged: set[tuple[int, str]] = set()
        #: Per-thread stack of held (tracked) lock names.
        self._held = threading.local()
        #: Observed acquisition-order edges: (held, acquired) name pairs.
        self._edges: set[tuple[str, str]] = set()
        self._flagged_edges: set[tuple[str, str]] = set()
        #: Registered pipeline threads: ident -> (thread, label).
        self._threads: dict[int, tuple[threading.Thread, str]] = {}
        #: Outstanding buffer leases: id(lease) -> label.
        self._leases: dict[int, str] = {}

    # -- reporting ---------------------------------------------------------
    def _add(self, kind: str, what: str, details: str) -> None:
        with self._mu:
            self._violations.append(Violation(kind, what, details))
        # Lazy import: the sanitizer is imported by the data plane, the
        # recorder by the sanitizer — only at violation time, so module
        # import order stays acyclic.
        from repro.obs import recorder as flight
        from repro.obs.events import EV_SANITIZER

        flight.record(EV_SANITIZER, kind=kind, what=what)

    def violations(self) -> list[Violation]:
        with self._mu:
            return list(self._violations)

    def reset(self) -> None:
        """Drop recorded violations and learned state (fresh run)."""
        with self._mu:
            self._violations.clear()
            self._spsc_owner.clear()
            self._spsc_flagged.clear()
            self._edges.clear()
            self._flagged_edges.clear()
            self._threads.clear()
            self._leases.clear()

    def assert_clean(self) -> None:
        vs = self.violations()
        if vs:
            raise SanitizerError(
                f"{len(vs)} sanitizer violation(s):\n"
                + "\n".join(f"  {v}" for v in vs)
            )

    # -- SPSC discipline ---------------------------------------------------
    def note_spsc(self, queue: object, side: str, label: str = "") -> None:
        """One producer- or consumer-side operation on an SPSC queue.

        ``side`` is ``"producer"`` or ``"consumer"``; the first thread
        seen on each side owns it for the queue's lifetime.
        """
        ident = threading.get_ident()
        key = (id(queue), side)
        with self._mu:
            owner = self._spsc_owner.get(key)
            if owner is None:
                self._spsc_owner[key] = (ident, threading.current_thread().name)
                return
            if owner[0] == ident or key in self._spsc_flagged:
                return
            self._spsc_flagged.add(key)
        kind = SPSC_PRODUCER if side == "producer" else SPSC_CONSUMER
        self._add(
            kind,
            label or f"SPSCQueue@{id(queue):#x}",
            f"{side} side used from thread {threading.current_thread().name!r} "
            f"but owned by thread {owner[1]!r} "
            f"(single-{side} discipline violated)",
        )

    # -- lock ordering -----------------------------------------------------
    def _held_stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def note_acquiring(self, name: str) -> None:
        """About to acquire a tracked lock; checks order inversions."""
        stack = self._held_stack()
        for held in stack:
            if held == name:
                continue
            edge = (held, name)
            inverse = (name, held)
            with self._mu:
                self._edges.add(edge)
                if inverse in self._edges and edge not in self._flagged_edges:
                    self._flagged_edges.add(edge)
                    self._flagged_edges.add(inverse)
                    flag = True
                else:
                    flag = False
            if flag:
                self._add(
                    LOCK_ORDER,
                    f"{held} -> {name}",
                    f"lock {name!r} acquired while holding {held!r}, but the "
                    f"opposite order was also observed (potential deadlock)",
                )

    def note_acquired(self, name: str) -> None:
        self._held_stack().append(name)

    def note_released(self, name: str) -> None:
        stack = self._held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                return

    # -- pipeline threads --------------------------------------------------
    def note_thread_started(self, thread: threading.Thread, label: str) -> None:
        with self._mu:
            self._threads[thread.ident or id(thread)] = (thread, label)

    def note_thread_joined(self, thread: threading.Thread) -> None:
        with self._mu:
            self._threads.pop(thread.ident or id(thread), None)

    def check_shutdown(self) -> list[Violation]:
        """Flag registered pipeline threads never joined (and still alive).

        Returns the violations added by this check.
        """
        with self._mu:
            leaked = [
                (t, label) for t, label in self._threads.values() if t.is_alive()
            ]
        added = []
        for thread, label in leaked:
            v = Violation(
                UNJOINED_THREAD,
                label,
                f"thread {thread.name!r} still alive at shutdown "
                f"(drainer never joined)",
            )
            with self._mu:
                self._violations.append(v)
            added.append(v)
        return added

    # -- buffer leases -----------------------------------------------------
    def note_lease_acquired(self, lease: object, label: str) -> None:
        """A :class:`~repro.transport.buffers.BufferLease` was taken."""
        with self._mu:
            self._leases[id(lease)] = label

    def note_lease_released(self, lease: object) -> None:
        with self._mu:
            self._leases.pop(id(lease), None)

    def note_lease_use_after_release(self, label: str, what: str) -> None:
        """An access hit a lease (or wire span) after its release."""
        self._add(
            LEASE_USE_AFTER_RELEASE, label,
            f"{what} after release (the buffer may already be reused)",
        )

    def note_lease_double_release(self, label: str) -> None:
        self._add(
            LEASE_DOUBLE_RELEASE, label,
            "released twice (the second release could free a buffer "
            "another lease now owns)",
        )

    def check_leases(self) -> list[Violation]:
        """Flag leases acquired but never released (leaked pool buffers
        or registered memory).  Returns the violations added."""
        with self._mu:
            leaked = sorted(self._leases.values())
        added = []
        for label in leaked:
            v = Violation(
                LEASE_LEAK, label,
                "lease never released (pool buffer / registration pinned)",
            )
            with self._mu:
                self._violations.append(v)
            added.append(v)
        return added


class TrackedLock:
    """A :class:`threading.Lock` that reports acquisition order.

    API-compatible with ``Lock`` for the ``acquire``/``release``/context
    manager surface the transports use.
    """

    __slots__ = ("_lock", "name")

    def __init__(self, name: str) -> None:
        self._lock = threading.Lock()
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        san = get()
        if san is not None:
            san.note_acquiring(self.name)
        got = self._lock.acquire(blocking, timeout)
        if got and san is not None:
            san.note_acquired(self.name)
        return got

    def release(self) -> None:
        self._lock.release()
        san = get()
        if san is not None:
            san.note_released(self.name)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()


# ---------------------------------------------------------------------------
# Process-wide activation
# ---------------------------------------------------------------------------

_active: Optional[Sanitizer] = None
_env_checked = False
_TRUTHY = ("1", "true", "yes", "on")


def _refresh_from_env(environ=None) -> None:
    global _active, _env_checked
    _env_checked = True
    env = os.environ if environ is None else environ
    if str(env.get("FLEXIO_SANITIZE", "")).strip().lower() in _TRUTHY:
        if _active is None:
            _active = Sanitizer()


def get() -> Optional[Sanitizer]:
    """The active sanitizer, or None when disabled (the common case)."""
    if not _env_checked:
        _refresh_from_env()
    return _active


def enabled() -> bool:
    return get() is not None


def enable(fresh: bool = True) -> Sanitizer:
    """Activate the sanitizer programmatically; returns the instance."""
    global _active, _env_checked
    _env_checked = True
    if _active is None or fresh:
        _active = Sanitizer()
    return _active


def disable() -> None:
    """Deactivate (instrumented objects constructed earlier keep their
    captured reference but stop reporting through ``get()`` consumers)."""
    global _active, _env_checked
    _env_checked = True
    _active = None


def make_lock(name: str):
    """A lock for ``name``: tracked when the sanitizer is active at
    construction time, a plain :class:`threading.Lock` otherwise."""
    return TrackedLock(name) if get() is not None else threading.Lock()
