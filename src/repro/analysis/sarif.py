"""SARIF 2.1.0 emission for FlexLint findings.

SARIF (Static Analysis Results Interchange Format) is the lingua franca
CI forges ingest for code-scanning annotations.  One run object carries
the rule table from :data:`repro.analysis.flexlint.RULES`; each finding
becomes a ``result`` with a physical location, and waived/baselined
findings are carried as ``suppressions`` (``inSource`` for ``#
flexlint: ok(...)`` waivers, ``external`` for baseline entries) so the
forge shows them greyed-out instead of dropping them silently.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.analysis.flexlint import RULES, Finding

__all__ = ["to_sarif", "write_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "FlexLint"
TOOL_VERSION = "2.0"


def _rule_descriptor(rule_id: str) -> dict:
    rule = RULES.get(rule_id)
    if rule is None:  # FXL000 parse errors and future rules
        return {"id": rule_id}
    return {
        "id": rule.id,
        "name": rule.title.title().replace(" ", "").replace("/", ""),
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.description},
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: Finding) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    suppressions = []
    if finding.waived:
        suppressions.append(
            {
                "kind": "inSource",
                "justification": finding.waiver_reason,
            }
        )
    if finding.baselined:
        suppressions.append(
            {
                "kind": "external",
                "justification": finding.baseline_reason,
            }
        )
    if suppressions:
        result["suppressions"] = suppressions
    return result


def to_sarif(findings: Iterable[Finding]) -> dict:
    """The SARIF 2.1.0 log object for one FlexLint run."""
    findings = list(findings)
    rule_ids = sorted({f.rule for f in findings} | set(RULES))
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": "https://example.invalid/flexlint",
                        "rules": [_rule_descriptor(r) for r in rule_ids],
                    }
                },
                "results": [_result(f) for f in findings],
            }
        ],
    }


def write_sarif(findings: Iterable[Finding], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_sarif(findings), fh, indent=2, sort_keys=True)
        fh.write("\n")
