"""Per-function control-flow graphs and a forward dataflow engine.

FlexLint's original rules (FXL001-FXL008) are `ast.walk` pattern
matchers: they see syntax, not *paths*.  The flow-aware rules added for
the network plane (FXL010-FXL012) need to answer questions like "does
this ``acquire()`` reach a ``release()`` on *every* way out of the
function, including the exception edges?" — which requires a CFG.

The model is deliberately small:

* :class:`Block` — a basic block holding a list of statements (plain
  ``ast.stmt`` nodes plus the synthetic :class:`WithEnter` /
  :class:`WithExit` markers that make ``with`` scopes visible to
  dataflow transfer functions).
* :class:`CFG` — blocks, a single entry, and a **single synthetic
  exit**.  Every way out of the function (fall-through, ``return``,
  ``raise``, uncaught exception) is an edge into ``cfg.exit``.
* edges carry a kind: ``"flow"`` for normal control transfer and
  ``"exc"`` for the may-raise edges added after any statement that
  contains a call or ``await``.

Exception edges propagate a state computed by the analysis's
:meth:`Analysis.exc_out` hook rather than the block's normal out-state.
The default is the block's *in*-state (the exception may have fired
before any effect took hold); the must-release analysis overrides it to
apply release-kills optimistically so the canonical ``try/finally:
lease.release()`` shape is not reported as a leak.

``try`` lowering is a may-path over-approximation: the body gets
exception edges to every handler entry *and* (when present) the
``finally`` entry; ``finally`` ends with both a fall-through edge and
an exception edge to the enclosing handler context, which models
propagation of an unmatched exception.  ``return`` / ``break`` /
``continue`` inside a ``try`` with a ``finally`` are routed through the
``finally`` block first.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Block",
    "CFG",
    "WithEnter",
    "WithExit",
    "build_cfg",
    "Analysis",
    "run_forward",
    "block_states",
    "stmt_is_risky",
    "contains_await",
]


class WithEnter:
    """Synthetic statement marking entry into one ``with`` item."""

    __slots__ = ("item", "node", "is_async", "lineno", "col_offset")

    def __init__(self, item: ast.withitem, node: ast.stmt, is_async: bool) -> None:
        self.item = item
        self.node = node
        self.is_async = is_async
        self.lineno = item.context_expr.lineno
        self.col_offset = item.context_expr.col_offset

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<WithEnter {ast.unparse(self.item.context_expr)!r} L{self.lineno}>"


class WithExit:
    """Synthetic statement marking the ``__exit__`` of one ``with`` item."""

    __slots__ = ("item", "node", "is_async", "lineno", "col_offset")

    def __init__(self, item: ast.withitem, node: ast.stmt, is_async: bool) -> None:
        self.item = item
        self.node = node
        self.is_async = is_async
        self.lineno = item.context_expr.lineno
        self.col_offset = item.context_expr.col_offset

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<WithExit {ast.unparse(self.item.context_expr)!r} L{self.lineno}>"


class Block:
    """One basic block: straight-line statements plus labelled edges."""

    __slots__ = ("id", "label", "stmts", "succs")

    def __init__(self, block_id: int, label: str = "") -> None:
        self.id = block_id
        self.label = label
        self.stmts: List[object] = []
        self.succs: List[Tuple["Block", str]] = []

    def edge(self, target: "Block", kind: str = "flow") -> None:
        pair = (target, kind)
        if pair not in self.succs:
            self.succs.append(pair)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        succ = ",".join(f"{b.id}:{k}" for b, k in self.succs)
        return f"<Block {self.id} {self.label!r} stmts={len(self.stmts)} -> [{succ}]>"


@dataclass
class CFG:
    """A function's control-flow graph with one entry and one exit."""

    func: Optional[ast.AST]
    blocks: List[Block]
    entry: Block
    exit: Block

    def preds(self) -> Dict[int, List[Tuple[Block, str]]]:
        """Predecessor map ``block id -> [(pred block, edge kind)]``."""
        out: Dict[int, List[Tuple[Block, str]]] = {b.id: [] for b in self.blocks}
        for block in self.blocks:
            for succ, kind in block.succs:
                out.setdefault(succ.id, []).append((block, kind))
        return out

    def reachable(self) -> FrozenSet[int]:
        """Block ids reachable from the entry along any edge kind."""
        seen = {self.entry.id}
        stack = [self.entry]
        while stack:
            block = stack.pop()
            for succ, _kind in block.succs:
                if succ.id not in seen:
                    seen.add(succ.id)
                    stack.append(succ)
        return frozenset(seen)


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class
    bodies or lambdas — their statements run in a different frame and
    must not contribute effects (awaits, blocking calls) to this one."""
    stack: List[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            stack.append(child)


def stmt_is_risky(stmt: object) -> bool:
    """True when executing ``stmt`` may raise through a call or await.

    Synthetic with-markers are treated as non-risky: the ``with``
    statement's own failure modes are modelled well enough by the body's
    exception edges, and treating ``__enter__`` as throwing would add
    noise for every lock/span context manager in the tree.
    """
    if isinstance(stmt, (WithEnter, WithExit)):
        return False
    if not isinstance(stmt, ast.AST):
        return False
    return any(
        isinstance(n, (ast.Call, ast.Await)) for n in _walk_shallow(stmt)
    )


def contains_await(stmt: object) -> bool:
    """True when ``stmt`` awaits in *this* frame (nested defs excluded)."""
    if not isinstance(stmt, ast.AST):
        return False
    return any(isinstance(n, ast.Await) for n in _walk_shallow(stmt))


@dataclass
class _Loop:
    header: Block
    after: Block


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.exit: Optional[Block] = None
        # Innermost-first stack of exception-edge targets.
        self.exc_targets: List[List[Block]] = []
        # Innermost-first stack of finally entries (for return routing).
        self.finally_stack: List[Block] = []
        self.loops: List[_Loop] = []

    # -- plumbing ------------------------------------------------------
    def new_block(self, label: str = "") -> Block:
        block = Block(len(self.blocks), label)
        self.blocks.append(block)
        return block

    def current_exc_targets(self) -> List[Block]:
        return self.exc_targets[-1]

    def _return_target(self) -> Block:
        """Where ``return`` transfers control: the innermost ``finally``
        when one encloses it, else the synthetic exit."""
        if self.finally_stack:
            return self.finally_stack[-1]
        assert self.exit is not None
        return self.exit

    # -- statements ----------------------------------------------------
    def add_stmt(self, stmt: object, current: Block) -> Block:
        """Append a straight-line statement; if it may raise, terminate
        the block with exception edges and continue in a fresh one."""
        current.stmts.append(stmt)
        if stmt_is_risky(stmt):
            for target in self.current_exc_targets():
                current.edge(target, "exc")
            nxt = self.new_block()
            current.edge(nxt, "flow")
            return nxt
        return current

    def build_body(
        self, stmts: Sequence[ast.stmt], current: Optional[Block]
    ) -> Optional[Block]:
        """Thread ``stmts`` through the graph; ``None`` means the path
        has terminated (return/raise/break) and trailing code is dead."""
        for stmt in stmts:
            if current is None:
                break
            current = self.build_stmt(stmt, current)
        return current

    def build_stmt(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        if isinstance(stmt, ast.Return):
            return self._build_return(stmt, current)
        if isinstance(stmt, ast.Raise):
            return self._build_raise(stmt, current)
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return self._build_loop_jump(stmt, current)
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, current)
        if isinstance(stmt, (ast.While,)):
            return self._build_while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._build_for(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, current)
        if isinstance(stmt, ast.Match):
            return self._build_match(stmt, current)
        # Nested defs/classes and all simple statements are straight-line.
        return self.add_stmt(stmt, current)

    def _build_return(self, stmt: ast.Return, current: Block) -> None:
        current = self.add_stmt(stmt, current)
        current.edge(self._return_target(), "flow")
        return None

    def _build_raise(self, stmt: ast.Raise, current: Block) -> None:
        # A risky value expression already split the block; the raise
        # itself transfers the *out*-state (effects before it ran).
        current = self.add_stmt(stmt, current)
        for target in self.current_exc_targets():
            current.edge(target, "flow")
        return None

    def _build_loop_jump(self, stmt: ast.stmt, current: Block) -> None:
        current.stmts.append(stmt)
        if self.loops:
            loop = self.loops[-1]
            target = loop.after if isinstance(stmt, ast.Break) else loop.header
        else:  # malformed input: treat like return
            target = self._return_target()
        current.edge(target, "flow")
        return None

    def _build_if(self, stmt: ast.If, current: Block) -> Optional[Block]:
        join = self.new_block("if.join")
        body = self.new_block("if.then")
        current.edge(body, "flow")
        end_body = self.build_body(stmt.body, body)
        if end_body is not None:
            end_body.edge(join, "flow")
        if stmt.orelse:
            orelse = self.new_block("if.else")
            current.edge(orelse, "flow")
            end_else = self.build_body(stmt.orelse, orelse)
            if end_else is not None:
                end_else.edge(join, "flow")
        else:
            current.edge(join, "flow")
        if not join_reached(join, self.blocks):
            return None
        return join

    def _build_while(self, stmt: ast.While, current: Block) -> Optional[Block]:
        header = self.new_block("while.header")
        after = self.new_block("while.after")
        current.edge(header, "flow")
        infinite = isinstance(stmt.test, ast.Constant) and stmt.test.value is True
        body = self.new_block("while.body")
        header.edge(body, "flow")
        self.loops.append(_Loop(header, after))
        end_body = self.build_body(stmt.body, body)
        self.loops.pop()
        if end_body is not None:
            end_body.edge(header, "flow")
        if stmt.orelse:
            orelse = self.new_block("while.else")
            if not infinite:
                header.edge(orelse, "flow")
            end_else = self.build_body(stmt.orelse, orelse)
            if end_else is not None:
                end_else.edge(after, "flow")
        elif not infinite:
            header.edge(after, "flow")
        if not join_reached(after, self.blocks):
            return None
        return after

    def _build_for(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        header = self.new_block("for.header")
        after = self.new_block("for.after")
        # The iterator expression may raise.
        current = self.add_stmt(_iter_marker(stmt), current)
        current.edge(header, "flow")
        body = self.new_block("for.body")
        header.edge(body, "flow")
        self.loops.append(_Loop(header, after))
        end_body = self.build_body(stmt.body, body)
        self.loops.pop()
        if end_body is not None:
            end_body.edge(header, "flow")
        if stmt.orelse:
            orelse = self.new_block("for.else")
            header.edge(orelse, "flow")
            end_else = self.build_body(stmt.orelse, orelse)
            if end_else is not None:
                end_else.edge(after, "flow")
        else:
            header.edge(after, "flow")
        if not join_reached(after, self.blocks):
            return None
        return after

    def _build_try(self, stmt: ast.Try, current: Block) -> Optional[Block]:
        after = self.new_block("try.after")
        finally_entry = self.new_block("finally") if stmt.finalbody else None
        handler_entries = [
            self.new_block(f"except.{i}") for i, _h in enumerate(stmt.handlers)
        ]

        # Exceptions raised in the body may land in any handler, or (no
        # matching handler / no handlers at all) run the finally.
        body_targets: List[Block] = list(handler_entries)
        if finally_entry is not None:
            body_targets.append(finally_entry)
        if not body_targets:  # defensive: ast guarantees handlers or finally
            body_targets = list(self.current_exc_targets())

        normal_exit = finally_entry if finally_entry is not None else after

        body = self.new_block("try.body")
        current.edge(body, "flow")
        self.exc_targets.append(body_targets)
        if finally_entry is not None:
            self.finally_stack.append(finally_entry)
        end_body = self.build_body(stmt.body, body)
        if end_body is not None and stmt.orelse:
            end_body = self.build_body(stmt.orelse, end_body)
        self.exc_targets.pop()
        if end_body is not None:
            end_body.edge(normal_exit, "flow")

        # Handler bodies: exceptions raised *inside* a handler go to the
        # finally (if any) or propagate to the enclosing context.
        handler_targets = (
            [finally_entry] if finally_entry is not None
            else list(self.current_exc_targets())
        )
        for entry, handler in zip(handler_entries, stmt.handlers):
            self.exc_targets.append(handler_targets)
            end_handler = self.build_body(handler.body, entry)
            self.exc_targets.pop()
            if end_handler is not None:
                end_handler.edge(normal_exit, "flow")

        if finally_entry is not None:
            self.finally_stack.pop()
            # The finally body itself runs in the enclosing context.
            end_finally = self.build_body(stmt.finalbody, finally_entry)
            if end_finally is not None:
                end_finally.edge(after, "flow")
                # Propagation path: the finally was entered because of an
                # exception (or a routed return) and control leaves the
                # function / goes to the enclosing handlers afterwards.
                for target in self.current_exc_targets():
                    end_finally.edge(target, "exc")
                assert self.exit is not None
                end_finally.edge(self.exit, "exc")

        if not join_reached(after, self.blocks):
            return None
        return after

    def _build_with(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        is_async = isinstance(stmt, ast.AsyncWith)
        for item in stmt.items:
            current = self.add_stmt(WithEnter(item, stmt, is_async), current)
        end = self.build_body(stmt.body, current)
        if end is None:
            return None
        for item in reversed(stmt.items):
            end = self.add_stmt(WithExit(item, stmt, is_async), end)
        return end

    def _build_match(self, stmt: ast.Match, current: Block) -> Optional[Block]:
        join = self.new_block("match.join")
        current = self.add_stmt(_iter_marker(stmt), current)
        exhaustive = False
        for i, case in enumerate(stmt.cases):
            case_block = self.new_block(f"case.{i}")
            current.edge(case_block, "flow")
            end_case = self.build_body(case.body, case_block)
            if end_case is not None:
                end_case.edge(join, "flow")
            if isinstance(case.pattern, ast.MatchAs) and case.pattern.pattern is None:
                exhaustive = True
        if not exhaustive:
            current.edge(join, "flow")
        if not join_reached(join, self.blocks):
            return None
        return join


def _iter_marker(stmt: ast.stmt) -> ast.stmt:
    """A ``for``/``match`` header's subject expression, wrapped as an
    ``Expr`` statement so transfer functions see its calls."""
    value = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.subject
    marker = ast.Expr(value=value)
    marker.lineno = value.lineno
    marker.col_offset = value.col_offset
    return marker


def join_reached(join: Block, blocks: Sequence[Block]) -> bool:
    return any(
        any(succ.id == join.id for succ, _k in block.succs) for block in blocks
    )


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of one function (or a bare statement list wrapped
    in an ``ast.Module``).  Unreachable blocks are pruned; the synthetic
    exit always survives."""
    builder = _Builder()
    entry = builder.new_block("entry")
    builder.exit = builder.new_block("exit")
    builder.exc_targets.append([builder.exit])
    body = getattr(func, "body", [])
    end = builder.build_body(body, entry)
    if end is not None:
        end.edge(builder.exit, "flow")
    cfg = CFG(func=func, blocks=builder.blocks, entry=entry, exit=builder.exit)
    keep = cfg.reachable() | {builder.exit.id}
    cfg.blocks = [b for b in builder.blocks if b.id in keep]
    return cfg


# ----------------------------------------------------------------------
# Forward dataflow
# ----------------------------------------------------------------------

State = FrozenSet[tuple]


class Analysis:
    """A forward may-analysis over frozensets of facts (union merge)."""

    def init_state(self) -> State:
        return frozenset()

    def transfer(self, stmt: object, state: State) -> State:
        return state

    def transfer_block(self, block: Block, state: State) -> State:
        for stmt in block.stmts:
            state = self.transfer(stmt, state)
        return state

    def exc_out(self, block: Block, in_state: State) -> State:
        """State carried along a block's exception edges.  Default: the
        block's entry state (the exception may precede every effect)."""
        return in_state


def run_forward(cfg: CFG, analysis: Analysis) -> Dict[int, State]:
    """Worklist fixpoint; returns the IN state of every block."""
    in_states: Dict[int, State] = {cfg.entry.id: analysis.init_state()}
    work: List[Block] = [cfg.entry]
    known = {b.id: b for b in cfg.blocks}
    while work:
        block = work.pop()
        in_state = in_states.get(block.id, frozenset())
        out_flow = analysis.transfer_block(block, in_state)
        out_exc = analysis.exc_out(block, in_state)
        for succ, kind in block.succs:
            if succ.id not in known:
                continue
            incoming = out_flow if kind == "flow" else out_exc
            merged = in_states.get(succ.id, frozenset()) | incoming
            if merged != in_states.get(succ.id):
                in_states[succ.id] = merged
                work.append(succ)
    return in_states


def block_states(
    block: Block, in_state: State, transfer: Callable[[object, State], State]
) -> Iterator[Tuple[object, State]]:
    """Replay a block, yielding ``(stmt, state BEFORE stmt)`` pairs."""
    state = in_state
    for stmt in block.stmts:
        yield stmt, state
        state = transfer(stmt, state)
