"""FlexLint: AST-based static analysis enforcing FlexIO project invariants.

General-purpose linters cannot know that a broad ``except`` in the drain
path once silently swallowed lost steps, or that a misspelled stream
hint is silently ignored by the XML config layer.  FlexLint encodes the
bug classes this repo has actually hit (and fixed) as rules, so they
cannot be reintroduced:

========  ==============================================================
FXL001    Broad/bare ``except`` on a fault-critical path (``transport/``,
          ``core/stream.py``, ``core/directory.py``, ``coupled/``):
          handlers there must catch typed ``TransportFault`` /
          ``AdiosError`` / ``DirectoryError`` subclasses so real faults
          keep their taxonomy.
FXL002    Stream-hint key literal not declared in the central registry
          (:mod:`repro.core.hints`) — the stringly-typed-typo guard.
FXL003    Tracer span created but never closed: ``monitor.span(...)`` /
          ``begin_span(...)`` must be used as a context manager or have
          an explicit ``finish()`` / ``__exit__`` in the same function.
FXL004    Direct ``commit()`` call outside the retry/2PC path
          (``core/resilience.py``; ``_drain_one`` in ``core/stream.py``)
          — step visibility must go through the reliable-delivery path.
FXL005    Attribute mutated from a drainer-thread method without being
          declared in the shared-state registry
          (``repro.core.stream.DRAINER_SHARED_STATE``).
FXL006    Copy-discipline breach on the zero-copy plane (``transport/``,
          ``core/stream.py``): ``.tobytes()`` / ``bytes(...)`` /
          ``bytearray(...)`` materialize a copy of data that should
          travel as :class:`~repro.transport.buffers.WireBuffer` views.
FXL007    Unregistered event code in a hot-path ``record()`` call: the
          first argument must be a constant from the central event
          table (:mod:`repro.obs.events`) or a ``Name``/``Attribute``
          reference to one — ad-hoc f-strings and computed event names
          defeat the flight recorder's fixed vocabulary.
FXL008    Removed/legacy step-API spelling: ``.advance()`` is gone
          (writers call ``end_step()``, readers drive
          ``begin_step()``/``end_step()``), and selections must go
          through keywords — ``read(name, selection=...)`` /
          ``read(name, start=..., count=...)`` — never positionally.
FXL009    Non-exhaustive ``MsgType`` dispatch (cross-file): every
          member of the wire enum must be referenced by both the
          daemon's dispatch and the client's typed-response paths.
FXL010    Blocking call (``time.sleep``, file I/O, ``os.fsync``,
          blocking socket ops, ``lock.acquire``) inside an ``async
          def`` on the network plane — directly or transitively
          through a sync helper.
FXL011    Synchronous (threading) lock held across an ``await``; the
          static complement of sanitize.py's runtime lockdep.
FXL012    ``lease()``/``acquire()``/``connect()`` result that may
          reach the function exit without ``release()``/``close()``
          or an ownership transfer on some CFG path.
FXL013    Metric-name literal not registered in the central
          :mod:`repro.obs.names` table (counters/gauges/histograms);
          dynamic names must go through ``metric_name()``.
FXL014    Direct plug-in kernel invocation (``.fn(...)``,
          ``.mask_fn(...)``, ``._func(...)``) outside the plug-in
          runtime (``core/plugins.py``) and the compiled-plan executor
          (``core/redistribution.py``) — ad-hoc kernel calls bypass
          per-kernel accounting, fused/interpreted equivalence, and
          the chain-hash plan-cache keying.
========  ==============================================================

Rules FXL009-FXL013 are flow/project aware: they run on the per-function
control-flow graphs of :mod:`repro.analysis.cfg` and the whole-program
index of :mod:`repro.analysis.project` (see
:mod:`repro.analysis.flowrules`).

**Waivers**: append ``# flexlint: ok(FXL001) <reason>`` to the flagged
line (or put it on the line directly above).  The reason is mandatory —
a bare waiver does not waive.  Multiple rules: ``ok(FXL001, FXL003)``.

Programmatic entry points: :func:`lint_source`, :func:`lint_file`,
:func:`lint_paths`.  CLI: ``python -m repro.tools.flexlint src/``.
"""

from __future__ import annotations

import ast
import difflib
import os
import re
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

_WAIVER_RE = re.compile(
    r"#\s*flexlint:\s*ok\(\s*([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\s*\)\s*(.*)$"
)

_BROAD_NAMES = ("Exception", "BaseException")
_SPAN_METHODS = ("span", "begin_span")
_SPAN_CLOSERS = ("finish", "__exit__")
_PARAM_METHODS = ("param", "param_bool", "param_int", "param_float")
_HINT_BUILDERS = ("stream_params",)
_COMMIT_NAMES = ("commit", "_commit")


@dataclass(frozen=True)
class Rule:
    """One lint rule's identity and documentation."""

    id: str
    title: str
    description: str


RULES: dict[str, Rule] = {
    r.id: r
    for r in (
        Rule("FXL001", "broad except on a fault-critical path",
             "except handlers in transport/, core/stream.py, "
             "core/directory.py and coupled/ must catch typed fault "
             "classes, not Exception/BaseException/bare except."),
        Rule("FXL002", "unregistered stream-hint key",
             "hint-key string literals must exist in the central "
             "repro.core.hints registry."),
        Rule("FXL003", "tracer span never closed",
             "span()/begin_span() results must be entered as a context "
             "manager or explicitly finish()ed in the same function."),
        Rule("FXL004", "commit outside the retry/2PC path",
             "commit()/_commit() may only be called from "
             "core/resilience.py or the drain path of core/stream.py."),
        Rule("FXL005", "undeclared drainer-thread shared state",
             "attributes assigned inside drainer-path methods must be "
             "declared in repro.core.stream.DRAINER_SHARED_STATE."),
        Rule("FXL006", "copy-discipline breach on the zero-copy plane",
             ".tobytes()/bytes()/bytearray() under transport/ and "
             "core/stream.py materialize copies; carry WireBuffer/"
             "memoryview spans instead (or waive with a reason)."),
        Rule("FXL007", "unregistered event code in record() call",
             "the first argument of record() must be a string literal "
             "registered in repro.obs.events (or a Name/Attribute "
             "constant reference); no f-strings or computed names."),
        Rule("FXL008", "removed/legacy step-API spelling",
             ".advance() no longer exists (use end_step(), or "
             "begin_step()/end_step() loops on readers) and "
             "read()/read_into()/read_all() take selections only as "
             "selection=/start=/count= keywords."),
        Rule("FXL009", "non-exhaustive MsgType dispatch",
             "every member of the wire enum (net/protocol.py MsgType) "
             "must be referenced by each dispatch surface "
             "(net/server.py and net/client.py); cross-file rule."),
        Rule("FXL010", "blocking call inside an async body",
             "time.sleep/file I/O/os.fsync/blocking socket ops/"
             "lock.acquire inside async def on the network plane stall "
             "the event loop — directly or through a sync helper; use "
             "async equivalents or run_in_executor."),
        Rule("FXL011", "sync lock held across await",
             "a threading lock held at an await suspends every other "
             "coroutine on the loop; release before awaiting or use an "
             "asyncio lock (static complement of runtime lockdep)."),
        Rule("FXL012", "lease may leak on some path",
             "a lease()/acquire()/connect() result must reach "
             "release()/close() or an ownership transfer on every CFG "
             "path to the function exit, including exception edges."),
        Rule("FXL013", "unregistered metric name",
             "counter()/gauge()/histogram() name literals must be "
             "registered in repro.obs.names (or extend a registered "
             "family); dynamic names go through metric_name()."),
        Rule("FXL014", "plug-in kernel invoked outside the executor",
             ".fn()/.mask_fn()/._func() calls are reserved to "
             "core/plugins.py and the compiled-plan executor in "
             "core/redistribution.py; everything else goes through "
             "apply()/apply_side() or a chain cursor."),
    )
}


@dataclass(frozen=True)
class Finding:
    """One lint finding, possibly waived or baselined."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    waiver_reason: str = ""
    baselined: bool = False
    baseline_reason: str = ""

    @property
    def active(self) -> bool:
        """True when this finding should fail the lint."""
        return not self.waived and not self.baselined

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.waived:
            text += f"  [waived: {self.waiver_reason}]"
        if self.baselined:
            text += f"  [baselined: {self.baseline_reason}]"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule, "path": self.path, "line": self.line,
            "col": self.col, "message": self.message, "waived": self.waived,
            "waiver_reason": self.waiver_reason, "baselined": self.baselined,
            "baseline_reason": self.baseline_reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(**data)


@dataclass(frozen=True)
class LintConfig:
    """Scope and registry knobs (overridable for tests/fixtures)."""

    #: Paths (dir prefixes ending in "/" or file suffixes) where FXL001
    #: applies.
    broad_except_paths: tuple[str, ...] = (
        "repro/transport/",
        "repro/core/stream.py",
        "repro/core/directory.py",
        "repro/coupled/",
        "repro/net/",
    )
    #: (path pattern, allowed function names or None for "anywhere in
    #: the file") pairs where commit() calls are legitimate.
    commit_allowed: tuple[tuple[str, Optional[tuple[str, ...]]], ...] = (
        ("repro/core/resilience.py", None),
        ("repro/core/stream.py", ("_drain_one",)),
    )
    #: File FXL005 applies to.
    drainer_path: str = "repro/core/stream.py"
    #: Overrides for the drainer registries; None = read them from
    #: repro.core.stream (DRAINER_METHODS / DRAINER_SHARED_STATE).
    drainer_methods: Optional[frozenset[str]] = None
    drainer_shared_state: Optional[frozenset[str]] = None
    #: Override for the known hint keys; None = repro.core.hints registry.
    hint_keys: Optional[frozenset[str]] = None
    #: Paths where FXL006 (copy discipline) applies.
    copy_discipline_paths: tuple[str, ...] = (
        "repro/transport/",
        "repro/core/stream.py",
    )
    #: Override for the registered event codes (FXL007); None = the
    #: repro.obs.events central table (flight events + trace categories).
    event_codes: Optional[frozenset[str]] = None
    #: Paths where FXL010 (no blocking calls in async bodies) applies.
    blocking_async_paths: tuple[str, ...] = ("repro/net/",)
    #: Dotted call names FXL010 treats as blocking the event loop.
    blocking_calls: tuple[str, ...] = (
        "time.sleep",
        "os.fsync",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "shutil.copyfileobj",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "select.select",
    )
    #: Paths where FXL012 (must-release dataflow) applies.
    lease_scope_paths: tuple[str, ...] = (
        "repro/transport/",
        "repro/net/",
    )
    #: Methods whose assigned result FXL012 tracks as an owned resource.
    lease_acquire_methods: tuple[str, ...] = (
        "lease",
        "acquire",
        "connect",
        "create_connection",
    )
    #: Methods that end the release obligation.
    lease_release_methods: tuple[str, ...] = (
        "release",
        "close",
        "shutdown",
    )
    #: (path suffix, enum name) of the wire enum FXL009 checks.
    dispatch_enum: tuple[str, str] = ("repro/net/protocol.py", "MsgType")
    #: Path suffixes of the dispatch surfaces that must reference every
    #: enum member.
    dispatch_surfaces: tuple[str, ...] = (
        "repro/net/server.py",
        "repro/net/client.py",
    )
    #: Override for the registered metric names (FXL013); None = the
    #: repro.obs.names central table.
    metric_names: Optional[frozenset[str]] = None
    #: Override for the registered metric family roots; None = the
    #: repro.obs.names FAMILY_ROOTS.
    metric_families: Optional[tuple[str, ...]] = None
    #: Paths allowed to invoke plug-in kernels directly (FXL014).
    kernel_call_paths: tuple[str, ...] = (
        "repro/core/plugins.py",
        "repro/core/redistribution.py",
    )
    #: Attribute names FXL014 treats as kernel entry points.
    kernel_call_attrs: tuple[str, ...] = ("fn", "mask_fn", "_func")


def _default_hint_keys() -> frozenset[str]:
    from repro.core.hints import known_keys

    return known_keys()


def _default_drainer_registry() -> tuple[frozenset[str], frozenset[str]]:
    from repro.core.stream import DRAINER_METHODS, DRAINER_SHARED_STATE

    return frozenset(DRAINER_METHODS), frozenset(DRAINER_SHARED_STATE)


def _default_event_codes() -> frozenset[str]:
    from repro.obs.events import EVENT_CODES

    return EVENT_CODES


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


def _in_scope(path: str, patterns: Iterable[str]) -> bool:
    norm = _norm(path)
    for pat in patterns:
        if pat.endswith("/"):
            if pat in norm:
                return True
        elif norm.endswith(pat):
            return True
    return False


def _parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    parent: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parent[child] = node
    return parent


def _enclosing(node: ast.AST, parent: dict, kinds) -> Optional[ast.AST]:
    cur = parent.get(node)
    while cur is not None:
        if isinstance(cur, kinds):
            return cur
        cur = parent.get(cur)
    return None


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

def _check_broad_except(tree: ast.AST, path: str, cfg: LintConfig):
    if not _in_scope(path, cfg.broad_except_paths):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad = None
        if node.type is None:
            broad = "bare except"
        else:
            names = (
                node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            )
            for expr in names:
                if isinstance(expr, ast.Name) and expr.id in _BROAD_NAMES:
                    broad = f"except {expr.id}"
                    break
        if broad:
            yield Finding(
                "FXL001", path, node.lineno, node.col_offset,
                f"{broad} on a fault-critical path; catch typed "
                f"TransportFault/AdiosError/DirectoryError subclasses "
                f"(or waive with a reason)",
            )


def _check_hint_keys(tree: ast.AST, path: str, cfg: LintConfig):
    keys = cfg.hint_keys if cfg.hint_keys is not None else _default_hint_keys()

    def unknown(key: str, node: ast.AST, how: str):
        hint = difflib.get_close_matches(key, sorted(keys), n=1)
        extra = f"; did you mean {hint[0]!r}?" if hint else ""
        return Finding(
            "FXL002", path, node.lineno, node.col_offset,
            f"hint key {key!r} ({how}) is not in the "
            f"repro.core.hints registry{extra}",
        )

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _PARAM_METHODS:
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                key = node.args[0].value
                if key not in keys:
                    yield unknown(key, node, f"{func.attr}() call")
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name in _HINT_BUILDERS:
            for kw in node.keywords:
                if kw.arg is not None and not kw.arg.startswith("_") \
                        and kw.arg not in keys:
                    yield unknown(kw.arg, node, f"{name}() keyword")


def _check_spans(tree: ast.AST, path: str, cfg: LintConfig):
    parent = _parents(tree)
    with_exprs = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                with_exprs.add(id(item.context_expr))

    def closed_later(target: str, call: ast.Call) -> bool:
        scope = _enclosing(
            call, parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
        )
        if scope is None:
            return False
        for node in ast.walk(scope):
            if isinstance(node, ast.Attribute) and node.attr in _SPAN_CLOSERS \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == target:
                return True
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Name) \
                            and item.context_expr.id == target:
                        return True
        return False

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _SPAN_METHODS):
            continue
        if id(node) in with_exprs:
            continue
        stmt = _enclosing(node, parent, (ast.stmt,))
        if isinstance(stmt, ast.Expr):
            yield Finding(
                "FXL003", path, node.lineno, node.col_offset,
                f"{func.attr}() result discarded: the span is never "
                f"entered or finished",
            )
            continue
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            target = stmt.targets[0].id
            if not closed_later(target, node):
                yield Finding(
                    "FXL003", path, node.lineno, node.col_offset,
                    f"span assigned to {target!r} but never entered via "
                    f"'with' or closed with finish()/__exit__()",
                )
        # Returned / passed-through spans are the callee's responsibility.


def _check_commit(tree: ast.AST, path: str, cfg: LintConfig):
    allowed_funcs: Optional[tuple[str, ...]] = ()
    for pat, funcs in cfg.commit_allowed:
        if _in_scope(path, (pat,)):
            allowed_funcs = funcs  # None means the whole file is fine
            break
    if allowed_funcs is None:
        return
    parent = _parents(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name not in _COMMIT_NAMES:
            continue
        scope = _enclosing(node, parent, (ast.FunctionDef, ast.AsyncFunctionDef))
        fname = scope.name if scope is not None else "<module>"
        if fname in allowed_funcs:
            continue
        yield Finding(
            "FXL004", path, node.lineno, node.col_offset,
            f"direct {name}() call in {fname}() outside the retry/2PC "
            f"path; route step visibility through the drain pipeline",
        )


def _self_attr_targets(stmt: ast.stmt):
    if isinstance(stmt, ast.Assign):
        targets = []
        for t in stmt.targets:
            targets.extend(t.elts if isinstance(t, ast.Tuple) else [t])
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    else:
        return
    for t in targets:
        if isinstance(t, ast.Attribute) and isinstance(t.value, ast.Name) \
                and t.value.id == "self":
            yield t


def _check_drainer_state(tree: ast.AST, path: str, cfg: LintConfig):
    if cfg.drainer_path and not _in_scope(path, (cfg.drainer_path,)):
        return
    if cfg.drainer_methods is not None and cfg.drainer_shared_state is not None:
        methods, shared = cfg.drainer_methods, cfg.drainer_shared_state
    else:
        methods, shared = _default_drainer_registry()
        if cfg.drainer_methods is not None:
            methods = cfg.drainer_methods
        if cfg.drainer_shared_state is not None:
            shared = cfg.drainer_shared_state
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name not in methods:
            continue
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.stmt):
                continue
            for attr in _self_attr_targets(stmt):
                if attr.attr not in shared:
                    yield Finding(
                        "FXL005", path, stmt.lineno, stmt.col_offset,
                        f"self.{attr.attr} mutated in drainer-path method "
                        f"{node.name}() but not declared in "
                        f"DRAINER_SHARED_STATE",
                    )


def _check_copy_discipline(tree: ast.AST, path: str, cfg: LintConfig):
    if not _in_scope(path, cfg.copy_discipline_paths):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("bytes", "bytearray"):
            # bytes()/bytearray() with no payload argument (or a size
            # int) allocate, not copy — only calls fed an existing
            # buffer are a breach.
            if not node.args:
                continue
            if len(node.args) == 1 and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, int):
                continue
            what = f"{func.id}(...)"
        elif isinstance(func, ast.Attribute) and func.attr == "tobytes":
            what = ".tobytes()"
        else:
            continue
        yield Finding(
            "FXL006", path, node.lineno, node.col_offset,
            f"{what} materializes a copy on the zero-copy plane; carry "
            f"WireBuffer/memoryview spans end to end (or waive with a "
            f"reason)",
        )


def _check_event_codes(tree: ast.AST, path: str, cfg: LintConfig):
    codes = (
        cfg.event_codes if cfg.event_codes is not None
        else _default_event_codes()
    )
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name != "record" or not node.args:
            continue
        arg = node.args[0]
        if isinstance(arg, (ast.Name, ast.Attribute)):
            # A reference to a registered constant (EV_*, span.category,
            # self._category) — resolved at runtime by the recorder.
            continue
        if isinstance(arg, ast.JoinedStr):
            yield Finding(
                "FXL007", path, arg.lineno, arg.col_offset,
                "f-string event name in record(); use a registered "
                "constant from repro.obs.events and carry the variable "
                "parts as attrs",
            )
        elif isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if arg.value not in codes:
                hint = difflib.get_close_matches(arg.value, sorted(codes), n=1)
                extra = f"; did you mean {hint[0]!r}?" if hint else ""
                yield Finding(
                    "FXL007", path, arg.lineno, arg.col_offset,
                    f"event code {arg.value!r} is not registered in the "
                    f"repro.obs.events table{extra}",
                )
        elif not isinstance(arg, ast.Constant):
            yield Finding(
                "FXL007", path, arg.lineno, arg.col_offset,
                "computed event name in record(); event codes must be "
                "registered constants from repro.obs.events",
            )


#: Step-API read methods and how many positional arguments each accepts
#: (the variable name; plus the output array for ``read_into``).  More
#: than that means a positional selection — a removed spelling.
_READ_POSITIONAL_LIMITS = {"read": 1, "read_all": 1, "read_into": 2}


def _check_legacy_api(tree: ast.AST, path: str, cfg: LintConfig):
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        name = node.func.attr
        if name == "advance":
            yield Finding(
                "FXL008", path, node.lineno, node.col_offset,
                ".advance() was removed; writers call end_step(), "
                "readers drive begin_step()/end_step()",
            )
        elif name in _READ_POSITIONAL_LIMITS:
            limit = _READ_POSITIONAL_LIMITS[name]
            if len(node.args) > limit:
                yield Finding(
                    "FXL008", path, node.lineno, node.col_offset,
                    f"positional selection in {name}(); pass the "
                    f"selection= keyword (or start=/count=) instead",
                )


def _check_kernel_calls(tree: ast.AST, path: str, cfg: LintConfig):
    if _in_scope(path, cfg.kernel_call_paths):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in cfg.kernel_call_attrs:
            yield Finding(
                "FXL014", path, node.lineno, node.col_offset,
                f".{func.attr}() invokes a plug-in kernel outside the "
                f"executor; go through apply()/apply_side() or a chain "
                f"cursor so accounting and fusion equivalence hold",
            )


_CHECKS = (
    _check_broad_except,
    _check_hint_keys,
    _check_spans,
    _check_commit,
    _check_drainer_state,
    _check_copy_discipline,
    _check_event_codes,
    _check_legacy_api,
    _check_kernel_calls,
)


# ---------------------------------------------------------------------------
# Waivers + entry points
# ---------------------------------------------------------------------------

def _waivers(source: str) -> dict[int, tuple[frozenset[str], str]]:
    out: dict[int, tuple[frozenset[str], str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _WAIVER_RE.search(line)
        if m:
            rules = frozenset(r.strip() for r in m.group(1).split(","))
            out[lineno] = (rules, m.group(2).strip())
    return out


def _apply_waivers(findings: list[Finding], source: str) -> list[Finding]:
    waivers = _waivers(source)
    if not waivers:
        return findings
    out = []
    for f in findings:
        waiver = None
        for line in (f.line, f.line - 1):
            w = waivers.get(line)
            if w and f.rule in w[0]:
                waiver = w
                break
        if waiver is None:
            out.append(f)
        elif waiver[1]:
            out.append(replace(f, waived=True, waiver_reason=waiver[1]))
        else:
            out.append(replace(
                f, message=f.message + " (waiver present but missing a reason)"
            ))
    return out


def lint_source(
    source: str, path: str = "<string>", config: Optional[LintConfig] = None
) -> list[Finding]:
    """Lint one source text; returns every finding (waived ones marked)."""
    cfg = config or LintConfig()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(
            "FXL000", path, exc.lineno or 0, exc.offset or 0,
            f"syntax error: {exc.msg}",
        )]
    findings: list[Finding] = []
    for check in _CHECKS + _flow_checks():
        findings.extend(check(tree, path, cfg))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return _apply_waivers(findings, source)


def _flow_checks():
    # Imported lazily: flowrules imports Finding/LintConfig from here.
    from repro.analysis.flowrules import FILE_CHECKS

    return FILE_CHECKS


def lint_file(path: str, config: Optional[LintConfig] = None) -> list[Finding]:
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path=path, config=config)


def iter_py_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git", ".venv")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        else:
            out.append(path)
    return out


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``, including the
    cross-file project pass (FXL009)."""
    cfg = config or LintConfig()
    findings: list[Finding] = []
    sources: dict[str, str] = {}
    for path in iter_py_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        sources[path] = source
        findings.extend(lint_source(source, path=path, config=cfg))
    findings.extend(project_findings(sources, cfg))
    return findings


def project_findings(sources: dict[str, str], cfg: LintConfig) -> list[Finding]:
    """Run the cross-file rules over an in-memory ``{path: source}``
    project; waivers in the *defining* file apply as usual."""
    from repro.analysis.flowrules import check_dispatch
    from repro.analysis.project import ProjectIndex

    project = ProjectIndex.from_sources(sources)
    raw = sorted(check_dispatch(project, cfg), key=lambda f: (f.path, f.line))
    out: list[Finding] = []
    by_path: dict[str, list[Finding]] = {}
    for f in raw:
        by_path.setdefault(f.path, []).append(f)
    for path, group in by_path.items():
        out.extend(_apply_waivers(group, sources.get(path, "")))
    return out
