"""Flow- and project-aware FlexLint rules (FXL009-FXL013).

The original rule set pattern-matches single statements; these rules
consume the :mod:`repro.analysis.cfg` control-flow graphs and the
:mod:`repro.analysis.project` whole-program index:

FXL009  exhaustive ``MsgType`` dispatch — every member of the wire
        enum must be referenced by each dispatch surface
        (``net/server.py`` and ``net/client.py``); a member added to
        ``protocol.py`` without handling fails the lint at the
        member's definition line.
FXL010  no blocking calls inside ``async def`` bodies on the network
        plane — ``time.sleep``, file I/O, ``os.fsync``/``os.replace``,
        blocking socket ops, ``lock.acquire`` — including *transitive*
        blocking through sync helpers called from the coroutine.
FXL011  a synchronous (threading) lock held across an ``await``: the
        static complement of sanitize.py's runtime lockdep.
        ``async with`` on an asyncio lock is fine.
FXL012  must-release: a ``lease()``/``acquire()``/``connect()`` result
        must reach ``release()``/``close()`` or an ownership transfer
        (returned, stored, passed on) on **every** CFG path to the
        function exit, including exception edges.
FXL013  metric-name literals in ``counter()``/``gauge()``/
        ``histogram()`` calls must come from the central
        :mod:`repro.obs.names` table (or extend a registered family);
        dynamic names go through ``metric_name()``.

Per-file checks share the ``(tree, path, cfg)`` signature of the
original rules and are exported via :data:`FILE_CHECKS`;
:func:`check_dispatch` is the cross-file pass run once per project.
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis import cfg as cfgmod
from repro.analysis.cfg import (
    CFG,
    WithEnter,
    WithExit,
    block_states,
    build_cfg,
    contains_await,
    run_forward,
)
from repro.analysis.flexlint import Finding, LintConfig, _in_scope
from repro.analysis.project import ProjectIndex

__all__ = [
    "FILE_CHECKS",
    "check_blocking_async",
    "check_lock_across_await",
    "check_must_release",
    "check_metric_names",
    "check_dispatch",
]

_LOCKY_MARKERS = ("lock", "mutex", "sem")
_SOCKET_BLOCKING_ATTRS = frozenset(
    {"accept", "recv", "recv_into", "recvfrom", "sendall", "sendmsg"}
)


def _dotted(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _is_locky(expr: Optional[ast.expr]) -> bool:
    """Heuristic: does this expression name a mutex-like object?"""
    name = _dotted(expr) if expr is not None else None
    if not name:
        return False
    last = name.rsplit(".", 1)[-1].lower()
    return any(marker in last for marker in _LOCKY_MARKERS)


def _walk_shallow(node: ast.AST):
    return cfgmod._walk_shallow(node)


def _iter_functions(tree: ast.AST):
    """Yield ``(class name or None, function node)`` for every def."""
    stack: List[Tuple[Optional[str], ast.AST]] = [(None, tree)]
    while stack:
        cls, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                stack.append((child.name, child))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, child
                stack.append((cls, child))
            else:
                stack.append((cls, child))


# ---------------------------------------------------------------------------
# FXL010 — blocking calls in async bodies (with transitive propagation)
# ---------------------------------------------------------------------------

@dataclass
class _FnInfo:
    cls: Optional[str]
    node: ast.AST
    is_async: bool
    blocking: Optional[str] = None  # human-readable reason chain
    local_calls: List[Tuple[Tuple[Optional[str], str], ast.Call]] = field(
        default_factory=list
    )


def _direct_blocking(call: ast.Call, cfg: LintConfig) -> Optional[str]:
    """Why this single call blocks, or None."""
    func = call.func
    dotted = _dotted(func)
    if dotted is not None and dotted in cfg.blocking_calls:
        return f"{dotted}()"
    if isinstance(func, ast.Name) and func.id in ("open", "input"):
        return f"{func.id}()"
    if isinstance(func, ast.Attribute):
        if func.attr == "acquire" and _is_locky(func.value):
            return f"{_dotted(func) or 'lock.acquire'}() (blocking lock)"
        if func.attr in _SOCKET_BLOCKING_ATTRS:
            base = _dotted(func.value) or ""
            if "sock" in base.rsplit(".", 1)[-1].lower():
                return f"{base}.{func.attr}() (blocking socket op)"
    return None


def _resolve_local(call: ast.Call, cls: Optional[str]):
    """Key of a same-module callee: ``self.X()`` or a bare ``X()``."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
            and func.value.id == "self":
        return (cls, func.attr)
    if isinstance(func, ast.Name):
        return (None, func.id)
    return None


def _collect_fn_table(tree: ast.AST, cfg: LintConfig) -> Dict[tuple, _FnInfo]:
    table: Dict[tuple, _FnInfo] = {}
    for cls, node in _iter_functions(tree):
        info = _FnInfo(cls=cls, node=node,
                       is_async=isinstance(node, ast.AsyncFunctionDef))
        for sub in _walk_shallow(node):
            if not isinstance(sub, ast.Call):
                continue
            reason = _direct_blocking(sub, cfg)
            if reason is not None and info.blocking is None and not info.is_async:
                info.blocking = f"{reason} at line {sub.lineno}"
            key = _resolve_local(sub, cls)
            if key is not None:
                info.local_calls.append((key, sub))
        table[(cls, node.name)] = info
    # Propagate blocking transitively through sync same-module callees.
    changed = True
    while changed:
        changed = False
        for info in table.values():
            if info.is_async or info.blocking is not None:
                continue
            for key, _call in info.local_calls:
                target = table.get(key)
                if target is not None and not target.is_async \
                        and target.blocking is not None:
                    info.blocking = (
                        f"calls {key[1]}() → {target.blocking}"
                    )
                    changed = True
                    break
    return table


def check_blocking_async(tree: ast.AST, path: str, cfg: LintConfig):
    """FXL010: blocking calls (direct or via sync helpers) in coroutines."""
    if not _in_scope(path, cfg.blocking_async_paths):
        return
    table = _collect_fn_table(tree, cfg)
    for (cls, name), info in table.items():
        if not info.is_async:
            continue
        for sub in _walk_shallow(info.node):
            if not isinstance(sub, ast.Call):
                continue
            reason = _direct_blocking(sub, cfg)
            if reason is not None:
                yield Finding(
                    "FXL010", path, sub.lineno, sub.col_offset,
                    f"blocking call {reason} inside async {name}(); it "
                    f"stalls the daemon event loop — use the async "
                    f"equivalent or run_in_executor",
                )
                continue
            key = _resolve_local(sub, cls)
            target = table.get(key) if key is not None else None
            if target is not None and not target.is_async \
                    and target.blocking is not None:
                yield Finding(
                    "FXL010", path, sub.lineno, sub.col_offset,
                    f"async {name}() calls {key[1]}(), which blocks the "
                    f"event loop ({target.blocking}); move the blocking "
                    f"part behind run_in_executor",
                )


# ---------------------------------------------------------------------------
# FXL011 — sync lock held across await
# ---------------------------------------------------------------------------

class _LockHeld(cfgmod.Analysis):
    """Facts: ``(key, acquire lineno)`` for every sync lock now held."""

    def transfer(self, stmt, state):
        if isinstance(stmt, WithEnter):
            if not stmt.is_async and _is_locky(_with_lock_expr(stmt.item)):
                key = _dotted(_with_lock_expr(stmt.item)) or "<lock>"
                return state | {(key, stmt.lineno)}
            return state
        if isinstance(stmt, WithExit):
            if not stmt.is_async and _is_locky(_with_lock_expr(stmt.item)):
                key = _dotted(_with_lock_expr(stmt.item)) or "<lock>"
                return frozenset(f for f in state if f[0] != key)
            return state
        if isinstance(stmt, ast.AST):
            state = self._calls(stmt, state)
        return state

    @staticmethod
    def _calls(stmt: ast.AST, state):
        for node in _walk_shallow(stmt):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if not _is_locky(node.func.value):
                    continue
                key = _dotted(node.func.value) or "<lock>"
                if node.func.attr == "acquire":
                    state = state | {(key, node.lineno)}
                elif node.func.attr == "release":
                    state = frozenset(f for f in state if f[0] != key)
        return state


def _with_lock_expr(item: ast.withitem) -> ast.expr:
    # `with self._lock:` or `with self._lock.acquire_timeout(...)`-style;
    # unwrap a call so the receiver is what gets the locky test.
    expr = item.context_expr
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        return expr.func.value
    return expr


def check_lock_across_await(tree: ast.AST, path: str, cfg: LintConfig):
    """FXL011: an await reached while a threading lock is held."""
    for _cls, node in _iter_functions(tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        graph = build_cfg(node)
        analysis = _LockHeld()
        in_states = run_forward(graph, analysis)
        seen = set()
        for block in graph.blocks:
            if block.id not in in_states:
                continue
            for stmt, state in block_states(
                block, in_states[block.id], analysis.transfer
            ):
                if not state or not contains_await(stmt):
                    continue
                lineno = getattr(stmt, "lineno", node.lineno)
                for key, acq_line in sorted(state):
                    mark = (lineno, key)
                    if mark in seen:
                        continue
                    seen.add(mark)
                    yield Finding(
                        "FXL011", path, lineno,
                        getattr(stmt, "col_offset", 0),
                        f"await while holding sync lock {key!r} (acquired "
                        f"line {acq_line}); every other coroutine on the "
                        f"loop stalls behind it — release first or use an "
                        f"asyncio lock",
                    )


# ---------------------------------------------------------------------------
# FXL012 — must-release on every CFG exit path
# ---------------------------------------------------------------------------

def _bare_loads(root: ast.AST, name: str) -> bool:
    """``name`` used as a value (not merely as an attribute/receiver
    base) somewhere under ``root``."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in _walk_shallow(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    for node in _walk_shallow(root):
        if isinstance(node, ast.Name) and node.id == name \
                and isinstance(node.ctx, ast.Load):
            p = parents.get(node)
            if isinstance(p, (ast.Attribute, ast.Subscript)) and p.value is node:
                continue  # lease.data / lease[...] — a use, not a transfer
            if isinstance(p, ast.Call) and p.func is node:
                continue
            return True
    return False


def _stmt_escapes(stmt: ast.AST, name: str) -> bool:
    """The resource escapes this frame: returned/yielded, passed as a
    call argument, or stored into an attribute/subscript."""
    for node in _walk_shallow(stmt):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and _bare_loads(node.value, name):
                return True
        elif isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Starred):
                    arg = arg.value
                if _bare_loads(arg, name):
                    return True
        elif isinstance(node, ast.Assign):
            stored = any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            )
            aliased = any(isinstance(t, ast.Name) for t in node.targets)
            if (stored or aliased) and _bare_loads(node.value, name):
                return True
    return False


class _MustRelease(cfgmod.Analysis):
    """Facts: ``(name, method, lineno, col)`` for leases still owned."""

    def __init__(self, cfg: LintConfig) -> None:
        self.cfg = cfg

    # -- gen -----------------------------------------------------------
    def _acquire_of(self, stmt) -> Optional[tuple]:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return None
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return None
        value = stmt.value
        if isinstance(value, ast.Await):
            value = value.value
        if not (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)):
            return None
        method = value.func.attr
        if method not in self.cfg.lease_acquire_methods:
            return None
        if method == "acquire" and _is_locky(value.func.value):
            return None  # lock.acquire() is FXL010/011 territory
        return (target.id, method, stmt.lineno, stmt.col_offset)

    # -- kills ---------------------------------------------------------
    def _kills(self, stmt, state):
        if not state:
            return state
        out = set(state)
        for fact in state:
            name = fact[0]
            if self._releases(stmt, name) or (
                isinstance(stmt, ast.AST) and _stmt_escapes(stmt, name)
            ):
                out.discard(fact)
            elif isinstance(stmt, WithEnter):
                expr = stmt.item.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    out.discard(fact)  # managed by the with block now
            elif isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name for t in stmt.targets
            ):
                out.discard(fact)  # rebound
        return frozenset(out)

    def _releases(self, stmt, name: str) -> bool:
        if not isinstance(stmt, ast.AST):
            return False
        for node in _walk_shallow(stmt):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in self.cfg.lease_release_methods \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == name:
                return True
        return False

    # -- engine hooks --------------------------------------------------
    def transfer(self, stmt, state):
        state = self._kills(stmt, state)
        acquired = self._acquire_of(stmt)
        if acquired is not None:
            state = state | {acquired}
        return state

    def exc_out(self, block, in_state):
        # On the exception edge the acquire may not have happened, so
        # gens are skipped; releases are applied optimistically so the
        # canonical try/finally-release shape is not reported.
        state = in_state
        for stmt in block.stmts:
            state = self._kills(stmt, state)
        return state


def check_must_release(tree: ast.AST, path: str, cfg: LintConfig):
    """FXL012: acquire() must reach release()/transfer on every path."""
    if not _in_scope(path, cfg.lease_scope_paths):
        return
    for _cls, node in _iter_functions(tree):
        analysis = _MustRelease(cfg)
        if not any(
            analysis._acquire_of(s) is not None
            for s in _walk_shallow(node) if isinstance(s, ast.Assign)
        ):
            continue
        graph = build_cfg(node)
        in_states = run_forward(graph, analysis)
        leaked = in_states.get(graph.exit.id, frozenset())
        for name, method, lineno, col in sorted(leaked, key=lambda f: f[2]):
            yield Finding(
                "FXL012", path, lineno, col,
                f"{name!r} acquired via .{method}() may leak: a path "
                f"through {node.name}() reaches the exit without "
                f"release()/close() or an ownership transfer — release "
                f"in a finally, use 'with', or hand the lease off",
            )


# ---------------------------------------------------------------------------
# FXL013 — metric names from the central table
# ---------------------------------------------------------------------------

_METRIC_METHODS = ("counter", "gauge", "histogram")


def _metric_vocab(cfg: LintConfig):
    if cfg.metric_names is not None:
        names = cfg.metric_names
        roots = cfg.metric_families if cfg.metric_families is not None else ()
    else:
        from repro.obs.names import FAMILY_ROOTS, METRIC_NAMES

        names = METRIC_NAMES
        roots = (
            cfg.metric_families if cfg.metric_families is not None
            else FAMILY_ROOTS
        )
    return names, tuple(roots)


def _metric_ok(value: str, names, roots) -> bool:
    if value in names:
        return True
    return any(value == root or value.startswith(root + ".") for root in roots)


def check_metric_names(tree: ast.AST, path: str, cfg: LintConfig):
    """FXL013: counter()/gauge()/histogram() names must be registered."""
    names, roots = _metric_vocab(cfg)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _METRIC_METHODS):
            continue
        arg = node.args[0]
        candidates: List[str] = []
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            candidates = [arg.value]
        elif isinstance(arg, ast.IfExp):
            branches = [arg.body, arg.orelse]
            if all(
                isinstance(b, ast.Constant) and isinstance(b.value, str)
                for b in branches
            ):
                candidates = [b.value for b in branches]
            else:
                continue
        elif isinstance(arg, ast.JoinedStr):
            yield Finding(
                "FXL013", path, arg.lineno, arg.col_offset,
                f"f-string metric name in {func.attr}(); register the "
                f"family in repro.obs.names and build the name with "
                f"metric_name(family, ...)",
            )
            continue
        elif isinstance(arg, ast.BinOp) and any(
            isinstance(op, ast.Constant) and isinstance(op.value, str)
            for op in (arg.left, arg.right)
        ):
            yield Finding(
                "FXL013", path, arg.lineno, arg.col_offset,
                f"concatenated metric name in {func.attr}(); use "
                f"metric_name() over a registered family instead",
            )
            continue
        else:
            continue  # Name/Attribute refs, arrays (np.histogram), ...
        for value in candidates:
            if _metric_ok(value, names, roots):
                continue
            hint = difflib.get_close_matches(
                value, sorted(names | frozenset(roots)), n=1
            )
            extra = f"; did you mean {hint[0]!r}?" if hint else ""
            yield Finding(
                "FXL013", path, arg.lineno, arg.col_offset,
                f"metric name {value!r} is not registered in the "
                f"repro.obs.names table{extra}",
            )


# ---------------------------------------------------------------------------
# FXL009 — exhaustive enum dispatch (cross-file)
# ---------------------------------------------------------------------------

def check_dispatch(project: ProjectIndex, cfg: LintConfig) -> Iterator[Finding]:
    """Every enum member must be referenced by each dispatch surface."""
    path_suffix, enum_name = cfg.dispatch_enum
    enum = project.find_enum(path_suffix, enum_name)
    if enum is None:
        return  # enum not part of the analyzed set
    for surface in cfg.dispatch_surfaces:
        module = project.module_for_suffix(surface)
        if module is None:
            continue  # surface outside the analyzed set
        for member, lineno in enum.members:
            if (enum_name, member) not in module.attr_refs:
                yield Finding(
                    "FXL009", enum.path, lineno, 0,
                    f"{enum_name}.{member} has no handler: {surface} "
                    f"never references {enum_name}.{member} — add "
                    f"dispatch (or an explicit default) before shipping "
                    f"the new message type",
                )


#: Per-file flow checks, same signature as the FXL001-FXL008 checks.
FILE_CHECKS = (
    check_blocking_async,
    check_lock_across_await,
    check_must_release,
    check_metric_names,
)
