"""Correctness tooling for the FlexIO tree.

Two complementary halves (DESIGN.md §10):

* :mod:`repro.analysis.flexlint` — an AST-based static linter enforcing
  project invariants (typed exception handling on fault-critical paths,
  hint keys drawn from the central registry, closed tracer spans, commit
  confined to the retry/2PC path, declared drainer-thread shared state).
  Run it with ``python -m repro.tools.flexlint src/``.
* :mod:`repro.analysis.sanitize` — a runtime concurrency sanitizer
  ("tsan-lite") enabled via ``FLEXIO_SANITIZE=1``: SPSC queue
  producer/consumer discipline, lock-order inversion detection, and
  un-joined drainer threads at shutdown.

This ``__init__`` deliberately imports only the dependency-free
sanitizer: :mod:`repro.transport.shm` and :mod:`repro.core.stream`
import it from their module scope, so pulling the linter (which reads
the hint and shared-state registries from :mod:`repro.core`) in here
would create an import cycle.
"""

from repro.analysis.sanitize import (
    SanitizerError,
    TrackedLock,
    Violation,
    make_lock,
)

__all__ = [
    "SanitizerError",
    "TrackedLock",
    "Violation",
    "make_lock",
]
