"""Zero-copy buffer plane benchmark (Section II.D copy accounting).

Measures real msgs/sec and MB/sec through every delivery path of the
memory plane — shm-inline (64 B), shm-pool, xpmem, and RDMA (64 KiB and
8 MiB) — comparing the **view** discipline (send an array, receive a
:class:`~repro.transport.buffers.WireBuffer` span, release it) against
a **legacy** emulation of the pre-refactor bytes discipline
(``tobytes()`` before send, ``tobytes()`` after recv: the two extra
materializations this refactor removed).  Each mode also records the
per-delivery copy count straight from the ``transport.copies``
histogram, so the before/after table shows both throughput and copies.

Targets (asserted by the pytest wrappers):

* ``>= 2x`` view-over-legacy throughput on the 8 MiB shm-pool path;
* the xpmem path reports **0** copies end to end in ``transport.copies``.

Run:  python benchmarks/bench_buffers.py [--quick] [--out FILE]
Also collectable by pytest (the ``test_*`` wrappers assert the targets).
"""

import argparse
import json
import os
import sys
import threading
import time

import numpy as np

from repro.core.monitoring import PerfMonitor
from repro.machine import GeminiInterconnect
from repro.transport.rdma import NntiFabric, RdmaChannel
from repro.transport.shm import ShmChannel
from repro.util import KiB, MiB

SIZES = {"64B": 64, "64KiB": 64 * KiB, "8MiB": 8 * MiB}


def _payload(size):
    return np.random.default_rng(size).integers(
        0, 256, size=size, dtype=np.uint8
    )


def _shm_channel(path, mon):
    return ShmChannel(use_xpmem=(path == "xpmem"), monitor=mon)


def _rdma_channel(mon):
    fabric = NntiFabric(GeminiInterconnect())
    a = fabric.endpoint(0, "sim-0")
    b = fabric.endpoint(5, "viz-0")
    return RdmaChannel(fabric.connect(a, b), sender=a, monitor=mon)


def _drain(ch, reps, legacy, timeout=60.0):
    """Consumer loop: receive ``reps`` spans, release each; in legacy
    mode materialize the payload first (the pre-refactor copy-out)."""
    for _ in range(reps):
        wb = ch.recv(timeout=timeout)
        if legacy:
            wb.tobytes()
        if not wb.released:
            wb.release()


def _run_path(path, size, reps, legacy):
    """One (path, size, mode) cell: wall time for ``reps`` deliveries."""
    mon = PerfMonitor()
    ch = _rdma_channel(mon) if path == "rdma" else _shm_channel(path, mon)
    payload = _payload(size)
    threaded = path == "xpmem"  # xpmem sends block until consumer detach

    if threaded:
        t = threading.Thread(target=_drain, args=(ch, reps, legacy))
        t.start()
        t0 = time.perf_counter()
        for _ in range(reps):
            ch.send(bytes(payload) if legacy else payload, timeout=60)
        t.join(60)
        dt = time.perf_counter() - t0
    else:
        t0 = time.perf_counter()
        for _ in range(reps):
            ch.send(bytes(payload) if legacy else payload)
            wb = ch.recv()
            if legacy:
                wb.tobytes()
            if not wb.released:
                wb.release()
        dt = time.perf_counter() - t0

    hist = mon.metrics.histogram("transport.copies")
    ch.close()
    return {
        "path": path,
        "size": size,
        "mode": "legacy" if legacy else "view",
        "reps": reps,
        "secs": round(dt, 6),
        "msgs_per_s": round(reps / dt, 1),
        "mb_per_s": round(reps * size / dt / MiB, 1),
        # Transport copies per delivery; legacy mode pays the same
        # transport count plus the tobytes() materializations around it.
        "copies_per_msg": (hist.total / hist.count) if hist.count else None,
        "histogram_observations": hist.count,
        "histogram_zero_count": hist.zero_count,
    }


def _reps(size, quick):
    base = {64: 2000, 64 * KiB: 500, 8 * MiB: 24}[size]
    return max(4, base // 8) if quick else base


def run(quick=False):
    cells = []
    for path, sizes in [
        ("inline", ["64B"]),
        ("pool", ["64KiB", "8MiB"]),
        ("xpmem", ["64KiB", "8MiB"]),
        ("rdma", ["64KiB", "8MiB"]),
    ]:
        for label in sizes:
            size = SIZES[label]
            reps = _reps(size, quick)
            for legacy in (True, False):
                cells.append(_run_path(path, size, reps, legacy))

    def cell(path, label, mode):
        return next(
            c for c in cells
            if c["path"] == path and c["size"] == SIZES[label]
            and c["mode"] == mode
        )

    pool_8m_view = cell("pool", "8MiB", "view")
    pool_8m_legacy = cell("pool", "8MiB", "legacy")
    xpmem_8m_view = cell("xpmem", "8MiB", "view")
    speedup = pool_8m_view["mb_per_s"] / pool_8m_legacy["mb_per_s"]
    return {
        "bench": "buffers",
        "quick": quick,
        "cells": cells,
        "pool_8mib_speedup": round(speedup, 2),
        "pass_pool_8mib_2x": speedup >= 2.0,
        "xpmem_copies_per_msg": xpmem_8m_view["copies_per_msg"],
        "pass_xpmem_zero_copy": xpmem_8m_view["copies_per_msg"] == 0.0,
    }


# --- pytest wrappers (run only when benchmarks/ is targeted explicitly) ---

def test_pool_8mib_view_discipline_2x_over_legacy():
    size, reps = SIZES["8MiB"], 16
    legacy = _run_path("pool", size, reps, legacy=True)
    view = _run_path("pool", size, reps, legacy=False)
    assert view["mb_per_s"] >= 2.0 * legacy["mb_per_s"], (legacy, view)


def test_xpmem_reports_zero_copies_end_to_end():
    out = _run_path("xpmem", SIZES["8MiB"], 8, legacy=False)
    assert out["histogram_observations"] == 8
    assert out["copies_per_msg"] == 0.0
    assert out["histogram_zero_count"] == 8


def test_every_path_reports_copy_counts():
    expected = {"inline": 2.0, "pool": 1.0, "xpmem": 0.0, "rdma": 1.0}
    for path, copies in expected.items():
        size = 64 if path == "inline" else SIZES["64KiB"]
        out = _run_path(path, size, 8, legacy=False)
        assert out["copies_per_msg"] == copies, (path, out)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="fewer reps")
    ap.add_argument("--out", default="BENCH_buffers.json")
    args = ap.parse_args(argv)
    results = run(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"{'path':7s} {'size':>8s} {'mode':7s} {'msgs/s':>10s} "
          f"{'MB/s':>10s} {'copies':>7s}")
    for c in results["cells"]:
        label = next(k for k, v in SIZES.items() if v == c["size"])
        copies = "-" if c["copies_per_msg"] is None else f"{c['copies_per_msg']:.1f}"
        print(f"{c['path']:7s} {label:>8s} {c['mode']:7s} "
              f"{c['msgs_per_s']:10.1f} {c['mb_per_s']:10.1f} {copies:>7s}")
    print(f"8 MiB shm-pool view/legacy: {results['pool_8mib_speedup']:.2f}x "
          f"({'PASS' if results['pass_pool_8mib_2x'] else 'FAIL'} >=2x)")
    print(f"xpmem copies/msg: {results['xpmem_copies_per_msg']} "
          f"({'PASS' if results['pass_xpmem_zero_copy'] else 'FAIL'} ==0)")
    print(f"wrote {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
