"""Data-plane benchmark: plan-cache read speedup and async publication.

Two measurements, both recorded into ``BENCH_dataplane.json``:

* **read path** — a 16-writer (4x4) to 4-reader (row bands) MxN exchange
  of a 512x512 float64 array.  Steady-state per-step read time with
  ``caching=ALL`` (compiled plans replayed from the shared cache) vs the
  seed ``NO_CACHING`` path (per-block intersection + fill).  Expected
  speedup: >= 2x.
* **writer-visible span** — how long ``end_step()`` blocks the writer.
  With ``sync=true`` the publish waits for the drain channel; with the
  default async pipeline the step is handed to the background drainer
  and the writer continues.  Expected: async span measurably below sync.

Run:  python benchmarks/bench_dataplane.py [--quick] [--out FILE]
Also collectable by pytest (the ``test_*`` wrappers assert the targets).
"""

import argparse
import json
import os
import statistics
import sys
import time

import numpy as np

from repro.adios import Adios, RankContext, StepStatus, block_decompose
from repro.core import stream_registry
from repro.core.redistribution import global_plan_cache

SHAPE = (512, 512)
WRITER_GRID = (4, 4)  # 16 writers
NUM_READERS = 4       # row bands of 128x512

CONFIG = """
<adios-config>
  <adios-group name="fields">
    <var name="field" type="float64" dimensions="512,512"/>
  </adios-group>
  <method group="fields" method="FLEXPATH">{params}</method>
</adios-config>
"""


def _fresh(params=""):
    stream_registry.reset()
    global_plan_cache.clear()
    return Adios.from_xml(CONFIG.format(params=params))


def _write_steps(adios, name, num_steps):
    boxes = block_decompose(SHAPE, WRITER_GRID)
    handles = [
        adios.open_write("fields", name, RankContext(r, len(boxes)))
        for r in range(len(boxes))
    ]
    rng = np.random.default_rng(7)
    for _ in range(num_steps):
        for r, h in enumerate(handles):
            h.write("field", rng.random(boxes[r].count), box=boxes[r],
                    global_shape=SHAPE)
        for h in handles:
            h.end_step()
    for h in handles:
        h.close()


def bench_read_path(num_steps=10):
    """Steady-state per-step read time, NO_CACHING vs CACHING_ALL."""
    band = (SHAPE[0] // NUM_READERS, SHAPE[1])
    out = {}
    for label, params in [("no_caching", ""), ("caching_all", "caching=ALL")]:
        adios = _fresh(params)
        name = f"bench.read.{label}"
        _write_steps(adios, name, num_steps)
        readers = [
            adios.open_read("fields", name, RankContext(i, NUM_READERS))
            for i in range(NUM_READERS)
        ]
        per_step = []
        while all(r.begin_step() is StepStatus.OK for r in readers):
            t0 = time.perf_counter()
            for i, r in enumerate(readers):
                r.read("field", start=(i * band[0], 0), count=band)
            per_step.append((time.perf_counter() - t0) * 1e3)
            for r in readers:
                r.end_step()
        # Steps 0-1 pay plan compilation / warmup; steady state after.
        out[label + "_ms"] = statistics.median(per_step[2:])
        out[label + "_all_steps_ms"] = [round(t, 4) for t in per_step]
    out["speedup"] = out["no_caching_ms"] / out["caching_all_ms"]
    out["pass_2x"] = out["speedup"] >= 2.0
    return out


def bench_writer_visible(num_steps=12, compute_s=0.002):
    """Writer-visible publish span: sync drain vs async pipeline."""
    out = {}
    for label, params in [("sync", "sync=true"), ("async", "queue_depth=8")]:
        adios = _fresh(params)
        name = f"bench.vis.{label}"
        boxes = block_decompose(SHAPE, WRITER_GRID)
        handles = [
            adios.open_write("fields", name, RankContext(r, len(boxes)))
            for r in range(len(boxes))
        ]
        rng = np.random.default_rng(3)
        blocks = [rng.random(b.count) for b in boxes]
        state = stream_registry._states[name]
        for _ in range(num_steps):
            for r, h in enumerate(handles):
                h.write("field", blocks[r], box=boxes[r], global_shape=SHAPE)
            for h in handles:
                h.end_step()
            time.sleep(compute_s)  # simulated compute; async drain overlaps
        for h in handles:
            h.close()
        agg = state.monitor.aggregate("writer_visible")
        out[label + "_ms"] = agg.mean_duration * 1e3
        out[label + "_steps"] = agg.count
        out[label + "_backpressure_waits"] = state.backpressure_waits
    out["speedup"] = out["sync_ms"] / out["async_ms"]
    out["pass_async_below_sync"] = out["async_ms"] < out["sync_ms"]
    return out


def run(quick=False):
    read = bench_read_path(num_steps=5 if quick else 10)
    vis = bench_writer_visible(num_steps=6 if quick else 12)
    stream_registry.reset()
    global_plan_cache.clear()
    return {
        "bench": "dataplane",
        "quick": quick,
        "shape": list(SHAPE),
        "writers": WRITER_GRID[0] * WRITER_GRID[1],
        "readers": NUM_READERS,
        "read_path": read,
        "writer_visible": vis,
    }


# --- pytest wrappers (run only when benchmarks/ is targeted explicitly) ---

def test_plan_cache_read_speedup():
    read = bench_read_path(num_steps=8)
    assert read["speedup"] >= 2.0, read


def test_async_writer_visible_below_sync():
    vis = bench_writer_visible(num_steps=8)
    assert vis["async_ms"] < vis["sync_ms"], vis


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="fewer steps")
    ap.add_argument("--out", default="BENCH_dataplane.json")
    args = ap.parse_args(argv)
    results = run(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
    r, v = results["read_path"], results["writer_visible"]
    print(f"read path   : NO_CACHING {r['no_caching_ms']:.3f} ms/step, "
          f"CACHING_ALL {r['caching_all_ms']:.3f} ms/step "
          f"-> {r['speedup']:.2f}x ({'PASS' if r['pass_2x'] else 'FAIL'} >=2x)")
    print(f"writer span : sync {v['sync_ms']:.3f} ms, async {v['async_ms']:.3f} ms "
          f"-> {v['speedup']:.2f}x "
          f"({'PASS' if v['pass_async_below_sync'] else 'FAIL'} async<sync)")
    print(f"wrote {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
