"""Extension experiment — the Pixie3D pipeline on the Jaguar XT5
(paper Section II.H names the application and machine; no figure exists,
so this bench records the placement sweep our models produce there).

Shape expectations (consistent with the paper's framework):
* all placement algorithms beat inline, which beats offline;
* topology-aware <= holistic <= data-aware;
* the analysis pipeline's light footprint keeps every online placement
  within a few percent of the lower bound.
"""

from repro.coupled import evaluate_pixie3d_placements
from repro.machine import jaguar_xt5


def test_pixie3d_xt5_placement_sweep(benchmark, save_table):
    def run():
        return evaluate_pixie3d_placements(jaguar_xt5(60), 144, num_steps=20)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "placement": name,
            "tet_s": r.total_execution_time,
            "nodes": r.metrics.num_nodes,
            "cpu_hours": r.metrics.total_cpu_hours,
            "file_MB": r.metrics.file_bytes / 2**20,
        }
        for name, r in res.items()
    ]
    save_table(rows, "pixie3d_xt5_placement",
               title="Pixie3D placement sweep on Jaguar XT5 (extension)")
    tet = {name: r.total_execution_time for name, r in res.items()}
    assert tet["lower-bound"] < tet["topology-aware"]
    assert tet["topology-aware"] <= tet["holistic"] <= tet["data-aware"]
    assert tet["data-aware"] < tet["inline"] < tet["offline"]
    # Online analysis stays close to the solo run.
    assert tet["topology-aware"] / tet["lower-bound"] - 1.0 < 0.03
