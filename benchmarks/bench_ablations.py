"""Ablations over the design choices DESIGN.md calls out.

Each knob isolated: caching options, batching, sync vs async writes,
registration cache, receiver-directed Get scheduling, NUMA buffer
placement policy, and the XPMEM single-copy path.
"""

import pytest

from repro.adios import block_decompose
from repro.core import CachingOption, RedistributionEngine
from repro.core.runtime import FlexIORuntime, NumaBufferPolicy
from repro.coupled import CoupledOptions, PlacementStyle, gts_workload, simulate_coupled
from repro.machine import GeminiInterconnect, smoky, titan
from repro.transport import RegistrationCache
from repro.util import MiB


def _engine(caching, batching):
    writers = block_decompose((256, 256), (32, 1))
    readers = block_decompose((256, 256), (4, 1))
    return RedistributionEngine(writers, readers, caching=caching, batching=batching)


def test_ablation_caching_options(benchmark, save_table):
    def sweep():
        rows = []
        for opt in CachingOption:
            eng = _engine(opt, batching=False)
            eng.handshake(num_variables=22)
            steady = eng.handshake(num_variables=22)
            rows.append({"caching": opt.value, "steady_msgs": steady.messages})
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    save_table(rows, "ablation_caching", title="Ablation: caching option vs steady handshake messages")
    msgs = {r["caching"]: r["steady_msgs"] for r in rows}
    assert msgs["all"] == 0 < msgs["local"] < msgs["none"]


def test_ablation_batching(benchmark, save_table):
    def sweep():
        rows = []
        for batching in (False, True):
            eng = _engine(CachingOption.NO_CACHING, batching)
            hs = eng.handshake(num_variables=22)
            rows.append(
                {
                    "batching": batching,
                    "handshake_msgs": hs.messages,
                    "data_msgs": eng.data_message_count(22),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    save_table(rows, "ablation_batching", title="Ablation: batching 22 variables")
    assert rows[0]["handshake_msgs"] == 22 * rows[1]["handshake_msgs"]
    assert rows[0]["data_msgs"] == 22 * rows[1]["data_msgs"]


def test_ablation_sync_vs_async_staging(benchmark, save_table):
    m = smoky(40)
    wl, _ = gts_workload(m, 64, helper_mode=False, num_steps=10)

    def run():
        out = []
        for asyn in (False, True):
            r = simulate_coupled(
                m, wl, style=PlacementStyle.STAGING, num_ana=16,
                options=CoupledOptions(asynchronous=asyn),
            )
            out.append(
                {
                    "asynchronous": asyn,
                    "tet_s": r.total_execution_time,
                    "io_visible_s_per_step": r.step.sim_io_visible,
                    "network_slowdown": r.step.slowdowns.get("network", 0.0),
                }
            )
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(rows, "ablation_sync_async", title="Ablation: sync vs async staging writes (GTS)")
    sync, asyn = rows
    assert asyn["io_visible_s_per_step"] < sync["io_visible_s_per_step"]
    assert asyn["tet_s"] < sync["tet_s"]
    assert asyn["network_slowdown"] > 0  # the price of overlap


def test_ablation_registration_cache(benchmark, save_table):
    ic = GeminiInterconnect()

    def run():
        with_cache = RegistrationCache(ic)
        total_cached = 0.0
        for _ in range(50):
            buf, cost = with_cache.acquire(4 * MiB)
            total_cached += cost + ic.wire_time(4 * MiB)
            with_cache.release(buf)
        total_cold = 50 * (
            2 * (ic.allocation_time(4 * MiB) + ic.registration_time(4 * MiB))
            + ic.wire_time(4 * MiB)
        )
        return [
            {"config": "registration cache", "fifty_transfers_s": total_cached},
            {"config": "dynamic every time", "fifty_transfers_s": total_cold},
        ]

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    save_table(rows, "ablation_registration_cache",
               title="Ablation: registration cache over 50 4-MiB transfers")
    assert rows[0]["fifty_transfers_s"] < rows[1]["fifty_transfers_s"]


def test_ablation_numa_buffer_policy(benchmark, save_table):
    m = smoky(4)

    def run():
        rows = []
        for policy in NumaBufferPolicy:
            rt = FlexIORuntime(m, numa_policy=policy)
            rows.append(
                {
                    "policy": policy.value,
                    # Writer-visible async copy cost across NUMA domains.
                    "writer_copy_s": rt.writer_visible_transfer_time(
                        64 * MiB, 0, 12, asynchronous=True
                    ),
                    "total_transfer_s": rt.transfer_time(64 * MiB, 0, 12),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    save_table(rows, "ablation_numa_policy",
               title="Ablation: NUMA placement of FlexIO's shm buffers")
    by = {r["policy"]: r for r in rows}
    # The paper's default (writer-local) protects the producer.
    assert by["writer-local"]["writer_copy_s"] < by["reader-local"]["writer_copy_s"]


def test_ablation_xpmem(benchmark, save_table):
    m = titan(2)

    def run():
        rt = FlexIORuntime(m)
        return [
            {"path": "classic 2-copy", "transfer_s": rt.transfer_time(128 * MiB, 0, 1, xpmem=False)},
            {"path": "xpmem 1-copy", "transfer_s": rt.transfer_time(128 * MiB, 0, 1, xpmem=True)},
        ]

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    save_table(rows, "ablation_xpmem", title="Ablation: XPMEM page mapping on the XK6")
    assert rows[1]["transfer_s"] < rows[0]["transfer_s"]
    assert rows[1]["transfer_s"] / rows[0]["transfer_s"] == pytest.approx(0.5, abs=0.1)
