"""Section IV.B.1 — tuning S3D's data movement (caching + batching +
asynchronous writes).

Paper numbers at 1 K cores with the RDMA transport:
* Titan: 1.2 s → 0.053 s per step;
* Smoky: 4.0 s → 0.077 s per step;
and no source-code changes — only XML hint updates.
"""

import pytest

from repro.figures import s3d_movement_tuning


@pytest.mark.parametrize(
    "machine_name,paper_untuned,paper_tuned",
    [("titan", 1.2, 0.053), ("smoky", 4.0, 0.077)],
)
def test_s3d_movement_tuning(benchmark, save_table, machine_name, paper_untuned, paper_tuned):
    rows = benchmark.pedantic(
        s3d_movement_tuning, args=(machine_name,), rounds=1, iterations=1
    )
    save_table(
        rows,
        f"s3d_movement_tuning_{machine_name}",
        title=(
            f"S3D movement tuning on {machine_name} "
            f"(paper: {paper_untuned} s -> {paper_tuned} s)"
        ),
    )
    untuned = rows[0]["movement_s"]
    tuned = rows[1]["movement_s"]
    # Absolute values land near the paper's (same models calibrated once).
    assert untuned == pytest.approx(paper_untuned, rel=0.25)
    assert tuned == pytest.approx(paper_tuned, rel=0.35)
    # And the tuning wipes out the handshake traffic entirely.
    assert rows[1]["handshake_msgs_per_step"] == 0
    assert rows[0]["handshake_msgs_per_step"] > 10_000
    assert rows[1]["data_msgs_per_step"] < rows[0]["data_msgs_per_step"]


def test_tuning_is_config_only():
    """The paper's point: tuning is hints in the XML file, not code.

    The same application code runs under both configurations; only the
    method parameters differ.
    """
    from repro.adios import AdiosConfig

    base = """
    <adios-config>
      <adios-group name="species"><var name="H2" type="float64" dimensions="n,n,n"/></adios-group>
      <method group="species" method="FLEXPATH">{params}</method>
    </adios-config>
    """
    untuned = AdiosConfig.from_xml(base.format(params="caching=NONE;batching=false;sync=true"))
    tuned = AdiosConfig.from_xml(base.format(params="caching=ALL;batching=true;sync=false"))
    u, t = untuned.method_for("species"), tuned.method_for("species")
    assert u.method == t.method == "FLEXPATH"
    assert not u.param_bool("batching") and t.param_bool("batching")
    assert u.param("caching") == "NONE" and t.param("caching") == "ALL"
