"""Figure 9 — S3D_Box total execution time on Smoky (a) and Titan (b).

Shape targets from the paper:
* holistic and topology-aware placements deploy the visualization onto
  staging nodes; data-aware mapping's hybrid placement is worse;
* staging beats inline, with the advantage growing at larger scales (up
  to 19 % on Smoky and 30 % on Titan);
* staging stays within ~5.1 % (Smoky) / ~3.6 % (Titan) of the solo lower
  bound while using <10 % extra resources.
"""

import pytest

from repro.figures import fig9_s3d_total_execution_time


@pytest.mark.parametrize("machine_name", ["smoky", "titan"])
def test_fig9_s3d_placement(benchmark, save_table, machine_name):
    rows = benchmark.pedantic(
        fig9_s3d_total_execution_time,
        args=(machine_name,),
        kwargs={"num_steps": 40},
        rounds=1,
        iterations=1,
    )
    sub = "a" if machine_name == "smoky" else "b"
    save_table(
        rows,
        f"fig9{sub}_s3d_{machine_name}",
        title=f"Figure 9({sub}): S3D_Box Total Execution Time (s) on {machine_name}",
    )
    for row in rows:
        lb = row["lower-bound"]
        topo = row["staging (topology-aware)"]
        assert lb < topo
        assert topo <= row["staging (holistic)"]
        assert row["staging (holistic)"] < row["hybrid (data-aware)"]
        assert row["hybrid (data-aware)"] < row["inline"]
    # Staging's advantage over inline grows with scale.
    gains = [
        (r["inline"] - r["staging (topology-aware)"]) / r["inline"] for r in rows
    ]
    assert gains == sorted(gains)
    # At the largest scale the gain is substantial (paper: 19–30 %).
    assert gains[-1] > 0.12
    # Gap to the lower bound stays small for staging.
    last = rows[-1]
    assert last["staging (topology-aware)"] / last["lower-bound"] - 1.0 < 0.07
