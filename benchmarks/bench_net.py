"""Network-plane benchmark: TCP step throughput, reconnect recovery,
checkpoint/restore cost.

Three measurements, recorded into ``BENCH_net.json``:

* **steady state** — writer + reader step exchange of a 64x64 float64
  field through the in-process daemon over real loopback sockets:
  steps/s and MB/s once the plan and sockets are warm.
* **reconnect recovery** — the control socket is torn out from under a
  live client; the next RPC must dial a fresh socket, re-HELLO with the
  resume token, and land in the same session.  Reported as the added
  latency of that first post-loss operation vs the steady-state RPC.
* **checkpoint/restore** — daemon state with N retained steps is cut to
  an atomic checkpoint file and restored into a fresh daemon; both
  directions timed, plus the file size.

Run:  python benchmarks/bench_net.py [--quick] [--out FILE]
Also collectable by pytest (the ``test_*`` wrappers assert the targets).
"""

import argparse
import json
import os
import statistics
import sys
import time

import numpy as np

from repro.core.directory import TenantSpec
from repro.net.client import connect
from repro.net.server import DirectoryDaemon

SHAPE = (64, 64)
TENANT = "bench"
TOKEN = "bench-t0ken"


def _daemon():
    d = DirectoryDaemon(
        tenants=[TenantSpec(TENANT, token=TOKEN)],
        telemetry=False, lease_interval=1.0,
    )
    d.start()
    return d


def _uri(d):
    return f"flexio://{d.host}:{d.control_port}/{TENANT}"


def bench_steady_state(num_steps=200):
    """Warm writer->daemon->reader exchange: steps/s and MB/s."""
    d = _daemon()
    field = np.arange(float(np.prod(SHAPE))).reshape(SHAPE)
    step_bytes = field.nbytes
    try:
        with connect(_uri(d), token=TOKEN) as c:
            w = c.open("bench.steady", "w")
            r = c.open("bench.steady", "r", timeout=2.0)
            # Warmup: sockets, codec paths, broker dicts.
            for _ in range(5):
                w.begin_step()
                w.write("field", field)
                w.end_step()
                r.begin_step(timeout=2.0)
                r.read_block("field", 0)
                r.end_step()
            t0 = time.perf_counter()
            for _ in range(num_steps):
                w.begin_step()
                w.write("field", field)
                w.end_step()
                r.begin_step(timeout=2.0)
                r.read_block("field", 0)
                r.end_step()
            elapsed = time.perf_counter() - t0
            w.close()
            r.close()
    finally:
        d.stop()
    return {
        "steps": num_steps,
        "step_bytes": step_bytes,
        "elapsed_s": elapsed,
        "steps_per_s": num_steps / elapsed,
        "mb_per_s": num_steps * step_bytes / elapsed / 1e6,
    }


def bench_reconnect_recovery(num_trials=10):
    """Latency of the first RPC after control-socket loss (reconnect +
    resume-HELLO) vs a steady-state RPC."""
    d = _daemon()
    steady_ms = []
    recovery_ms = []
    try:
        with connect(_uri(d), token=TOKEN) as c:
            sid = c.session_id
            c.register("bench.probe", program="writer")
            for _ in range(num_trials):
                t0 = time.perf_counter()
                c.lookup("bench.probe")
                steady_ms.append((time.perf_counter() - t0) * 1e3)

                c._sock.close()  # tear the control socket mid-session
                t0 = time.perf_counter()
                c.lookup("bench.probe")
                recovery_ms.append((time.perf_counter() - t0) * 1e3)
                assert c.session_id == sid and c.resumed
    finally:
        d.stop()
    return {
        "trials": num_trials,
        "steady_rpc_ms": statistics.median(steady_ms),
        "recovery_ms": statistics.median(recovery_ms),
        "recovery_added_ms": statistics.median(recovery_ms)
        - statistics.median(steady_ms),
        "pass_recovery_under_1s": statistics.median(recovery_ms) < 1000.0,
    }


def bench_checkpoint_restore(num_steps=50):
    """Checkpoint a daemon holding ``num_steps`` retained steps, then
    restore it into a fresh daemon; both directions timed."""
    import tempfile

    d = _daemon()
    field = np.arange(float(np.prod(SHAPE))).reshape(SHAPE)
    path = os.path.join(tempfile.mkdtemp(prefix="bench-net-"), "d.ckpt")
    try:
        with connect(_uri(d), token=TOKEN) as c:
            w = c.open("bench.ckpt", "w")
            for _ in range(num_steps):
                w.begin_step()
                w.write("field", field)
                w.end_step()
            t0 = time.perf_counter()
            d.checkpoint(path)
            checkpoint_ms = (time.perf_counter() - t0) * 1e3
            w.close()
    finally:
        d.stop()

    d2 = DirectoryDaemon(
        tenants=[TenantSpec(TENANT, token=TOKEN)],
        telemetry=False, lease_interval=1.0,
    )
    t0 = time.perf_counter()
    d2.restore(path)
    restore_ms = (time.perf_counter() - t0) * 1e3
    d2.start()
    try:
        with connect(_uri(d2), token=TOKEN) as c:
            r = c.open("bench.ckpt", "r", timeout=2.0)
            r.begin_step(timeout=2.0)
            got = r.read_block("field", 0)
            restored_ok = bool(np.array_equal(got, field))
            r.end_step()
            r.close()
    finally:
        d2.stop()
    return {
        "steps_retained": num_steps,
        "file_bytes": os.path.getsize(path),
        "checkpoint_ms": checkpoint_ms,
        "restore_ms": restore_ms,
        "pass_restored_data_identical": restored_ok,
    }


def run(quick=False):
    steady = bench_steady_state(num_steps=40 if quick else 200)
    reconnect = bench_reconnect_recovery(num_trials=3 if quick else 10)
    ckpt = bench_checkpoint_restore(num_steps=20 if quick else 50)
    return {
        "bench": "net",
        "quick": quick,
        "shape": list(SHAPE),
        "steady_state": steady,
        "reconnect": reconnect,
        "checkpoint_restore": ckpt,
    }


# --- pytest wrappers (run only when benchmarks/ is targeted explicitly) ---

def test_steady_state_throughput_positive():
    steady = bench_steady_state(num_steps=30)
    assert steady["steps_per_s"] > 10, steady


def test_reconnect_recovers_in_bounded_time():
    rec = bench_reconnect_recovery(num_trials=3)
    assert rec["pass_recovery_under_1s"], rec


def test_checkpoint_restore_round_trips():
    ckpt = bench_checkpoint_restore(num_steps=10)
    assert ckpt["pass_restored_data_identical"], ckpt


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="fewer steps")
    ap.add_argument("--out", default="BENCH_net.json")
    args = ap.parse_args(argv)
    results = run(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
    s, r, c = (results["steady_state"], results["reconnect"],
               results["checkpoint_restore"])
    print(f"steady state: {s['steps_per_s']:.0f} steps/s "
          f"({s['mb_per_s']:.1f} MB/s over TCP loopback)")
    print(f"reconnect   : steady RPC {r['steady_rpc_ms']:.2f} ms, "
          f"recovery {r['recovery_ms']:.2f} ms "
          f"(+{r['recovery_added_ms']:.2f} ms; "
          f"{'PASS' if r['pass_recovery_under_1s'] else 'FAIL'} <1s)")
    print(f"checkpoint  : {c['checkpoint_ms']:.2f} ms cut / "
          f"{c['restore_ms']:.2f} ms restore "
          f"({c['file_bytes'] / 1e3:.0f} kB, {c['steps_retained']} steps; "
          f"{'PASS' if c['pass_restored_data_identical'] else 'FAIL'} identical)")
    print(f"wrote {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
