"""Fused analytics pipeline benchmark: single-pass vs interpreted.

A GTS-like particle pipeline — row-decomposed ``zion`` (n, 7) blocks
from 8 writers, one reader running a sample(stride=16) + range-select
chain — measured two ways, recorded into ``BENCH_fused.json``:

* **interpreted** (``fused=false``): scatter every wire span into the
  materialized global array, then run the plug-in chain over it;
* **fused** (default): the compiled plan runs the chain per block while
  scattering — filtered rows are never copied at all.

Expected: >= 2x per-step read speedup and byte-identical results.  A
third measurement drives the chain cursor over spans arriving on an
xpmem :class:`~repro.transport.shm.ShmChannel`: the kernels must run
directly over the producer's mapped pages, keeping ``transport.copies``
at zero (fusion must not reintroduce a copy to run the chain).

Run:  python benchmarks/bench_fused_pipeline.py [--quick] [--out FILE]
Also collectable by pytest (the ``test_*`` wrappers assert the targets).
"""

import argparse
import json
import os
import statistics
import sys
import threading
import time

import numpy as np

from repro.adios import Adios, BoundingBox, RankContext, StepStatus
from repro.core import PerfMonitor, PluginManager, PluginSide, stream_registry
from repro.core.hints import stream_params
from repro.core.plugins import range_select_plugin, sampling_plugin
from repro.core.redistribution import global_plan_cache
from repro.transport.shm import ShmChannel

NUM_WRITERS = 8
ROWS_PER_WRITER = 32768          # 8 x 32768 x 7 float64 ~ 14.7 MB/step
TOTAL_ROWS = NUM_WRITERS * ROWS_PER_WRITER
GSHAPE = (TOTAL_ROWS, 7)
STRIDE = 16
SELECT = (0, 0.3, 0.7)           # column, lo, hi: ~40% of sampled rows

CONFIG = """
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="float64" dimensions="n,7"/>
  </adios-group>
  <method group="particles" method="FLEXPATH">{params}</method>
</adios-config>
"""


def _fresh(params):
    stream_registry.reset()
    global_plan_cache.clear()
    return Adios.from_xml(CONFIG.format(params=params))


def _deploy_chain(state):
    state.plugins.deploy(
        sampling_plugin(stride=STRIDE, only=("zion",)), PluginSide.READER
    )
    state.plugins.deploy(range_select_plugin("zion", *SELECT), PluginSide.READER)


def _run_pipeline(label, params, num_steps):
    """One full pipeline run; returns (per-step ms, last result, state)."""
    adios = _fresh(params)
    name = f"bench.fused.{label}"
    boxes = [
        BoundingBox((r * ROWS_PER_WRITER, 0), (ROWS_PER_WRITER, 7))
        for r in range(NUM_WRITERS)
    ]
    handles = [
        adios.open_write("particles", name, RankContext(r, NUM_WRITERS))
        for r in range(NUM_WRITERS)
    ]
    state = stream_registry._states[name]
    _deploy_chain(state)
    rng = np.random.default_rng(11)
    for _ in range(num_steps):
        for r, h in enumerate(handles):
            h.write("zion", rng.random(boxes[r].count), box=boxes[r],
                    global_shape=GSHAPE)
        for h in handles:
            h.end_step()
    for h in handles:
        h.close()

    reader = adios.open_read("particles", name, RankContext(0, 1))
    per_step, result = [], None
    while reader.begin_step() is StepStatus.OK:
        t0 = time.perf_counter()
        result = reader.read("zion", start=(0, 0), count=GSHAPE)
        per_step.append((time.perf_counter() - t0) * 1e3)
        reader.end_step()
    reader.close()
    return per_step, result, state


def bench_fused_read(num_steps=8):
    """Per-step read time, interpreted chain vs fused plan."""
    out, results = {}, {}
    for label, params in [
        ("interpreted", stream_params(fused=False)),
        ("fused", ""),
    ]:
        per_step, result, state = _run_pipeline(label, params, num_steps)
        # Step 0 pays plan compilation / warmup; steady state after.
        out[label + "_ms"] = statistics.median(per_step[1:])
        out[label + "_all_steps_ms"] = [round(t, 4) for t in per_step]
        results[label] = result
    stream_registry.reset()
    global_plan_cache.clear()
    out["rows_out"] = int(results["fused"].shape[0])
    out["identical"] = (
        results["fused"].shape == results["interpreted"].shape
        and results["fused"].tobytes() == results["interpreted"].tobytes()
    )
    out["speedup"] = out["interpreted_ms"] / out["fused_ms"]
    out["pass_2x"] = out["speedup"] >= 2.0
    return out


def bench_xpmem_zero_copy():
    """The fused chain consumed straight off xpmem-mapped wire spans.

    A producer thread publishes each writer block over an xpmem
    :class:`ShmChannel` (the producer blocks until the consumer detaches
    — the protocol's synchronous semantics), and the consumer drives the
    chain cursor over each mapped span in row order, releasing it before
    the next arrives.  The kernels read the producer's pages in place:
    the ``transport.copies`` histogram must stay at zero.
    """
    rng = np.random.default_rng(23)
    blocks = [rng.random((ROWS_PER_WRITER, 7)) for _ in range(NUM_WRITERS)]
    mgr = PluginManager()
    mgr.deploy(sampling_plugin(stride=STRIDE, only=("zion",)), PluginSide.READER)
    mgr.deploy(range_select_plugin("zion", *SELECT), PluginSide.READER)
    chain = mgr.compiled_chain(PluginSide.READER)

    monitor = PerfMonitor()
    channel = ShmChannel(use_xpmem=True, monitor=monitor)
    errors = []

    def produce():
        try:
            for blk in blocks:
                channel.send(blk, timeout=30.0)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    producer = threading.Thread(target=produce, name="bench-xpmem-producer")
    producer.start()
    cursor = chain.cursor("zion")
    pieces = []
    for _ in range(NUM_WRITERS):
        span = channel.recv(timeout=30.0)
        arr = span.as_array(np.float64, (ROWS_PER_WRITER, 7))
        piece = cursor.apply_block(arr)  # kernels over the mapped pages
        if piece.shape[0]:
            pieces.append(piece)
        span.release()  # detach: unblocks the producer's next send
    cursor.finish(monitor)
    producer.join(timeout=30.0)
    channel.close()
    assert not errors, errors

    got = np.concatenate(pieces, axis=0)
    oracle = PluginManager()
    oracle.deploy(sampling_plugin(stride=STRIDE, only=("zion",)),
                  PluginSide.READER)
    oracle.deploy(range_select_plugin("zion", *SELECT), PluginSide.READER)
    want = oracle.apply_side(
        PluginSide.READER, {"zion": np.concatenate(blocks, axis=0)}
    )["zion"]
    copies = monitor.metrics.histogram("transport.copies")
    return {
        "deliveries": copies.count,
        "transport_copies": copies.total,
        "rows_out": int(got.shape[0]),
        "identical": got.shape == want.shape
        and got.tobytes() == want.tobytes(),
        "pass_zero_copy": copies.total == 0 and copies.count == NUM_WRITERS,
    }


def run(quick=False):
    fused = bench_fused_read(num_steps=4 if quick else 8)
    xpmem = bench_xpmem_zero_copy()
    return {
        "bench": "fused_pipeline",
        "quick": quick,
        "writers": NUM_WRITERS,
        "rows": TOTAL_ROWS,
        "stride": STRIDE,
        "select": list(SELECT),
        "fused_read": fused,
        "xpmem": xpmem,
    }


# --- pytest wrappers (run only when benchmarks/ is targeted explicitly) ---

def test_fused_pipeline_speedup_and_identity():
    fused = bench_fused_read(num_steps=6)
    assert fused["identical"], fused
    assert fused["speedup"] >= 2.0, fused


def test_fused_chain_is_zero_copy_on_xpmem():
    xpmem = bench_xpmem_zero_copy()
    assert xpmem["identical"], xpmem
    assert xpmem["pass_zero_copy"], xpmem


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="fewer steps")
    ap.add_argument("--out", default="BENCH_fused.json")
    args = ap.parse_args(argv)
    results = run(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
    f, x = results["fused_read"], results["xpmem"]
    print(f"fused read  : interpreted {f['interpreted_ms']:.3f} ms/step, "
          f"fused {f['fused_ms']:.3f} ms/step "
          f"-> {f['speedup']:.2f}x ({'PASS' if f['pass_2x'] else 'FAIL'} >=2x)")
    print(f"identity    : {'PASS' if f['identical'] else 'FAIL'} "
          f"({f['rows_out']} rows survive the chain)")
    print(f"zero copy   : {'PASS' if x['pass_zero_copy'] and x['identical'] else 'FAIL'} "
          f"(xpmem, {x['deliveries']} deliveries, "
          f"{x['transport_copies']:.0f} copies)")
    print(f"wrote {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
