"""Benchmarks for the index-assisted query engine and the protocol-level
DES simulation (extensions beyond the paper's figures, covering the
offline-analysis path and the Section II.C protocol at message level).
"""

import numpy as np
import pytest

from repro.adios import BpReader, BpWriter, Range, block_decompose, run_query
from repro.core import CachingOption
from repro.coupled.protocol import ProtocolSimulation, matching_engine
from repro.machine import smoky


@pytest.fixture(scope="module")
def big_bp(tmp_path_factory):
    """64 blocks with stratified value ranges: block k in [10k, 10k+9]."""
    path = str(tmp_path_factory.mktemp("bench") / "query.bp")
    shape = (64 * 32,)
    boxes = block_decompose(shape, (64,))
    rng = np.random.default_rng(0)
    with BpWriter(path) as w:
        w.begin_step()
        for rank, box in enumerate(boxes):
            data = rng.uniform(10.0 * rank, 10.0 * rank + 9.0, size=box.count)
            w.write(rank, "v", data, box=box, global_shape=shape)
        w.end_step()
    return path


def test_query_with_index_pruning(benchmark, big_bp, save_table):
    """A 3-block-wide range query: the index discards 61 of 64 blocks."""
    def narrow_query():
        with BpReader(big_bp) as r:
            return run_query(r, Range("v", 300.0, 325.0))

    res = benchmark(narrow_query)
    save_table(
        [{
            "query": "v in [300, 325]",
            "blocks_pruned": res.blocks_pruned,
            "blocks_scanned": res.blocks_scanned,
            "hits": res.count,
            "pruning_ratio": res.pruning_ratio,
        }],
        "query_index_pruning",
        title="Index-assisted range query over 64 stratified blocks",
    )
    assert res.pruning_ratio > 0.9
    assert res.count > 0


def test_query_full_scan_baseline(benchmark, big_bp):
    """The no-pruning baseline: a query matching every block."""
    def wide_query():
        with BpReader(big_bp) as r:
            return run_query(r, Range("v", lo=0.0))

    res = benchmark(wide_query)
    assert res.blocks_pruned == 0
    assert res.blocks_scanned == 64


@pytest.mark.parametrize("caching", list(CachingOption))
def test_protocol_des_per_caching(benchmark, save_table, caching):
    """Message-level protocol execution, 32 writers -> 4 readers, 5 steps."""
    shape = (32 * 8, 16)
    writers = block_decompose(shape, (32, 1))
    readers = block_decompose(shape, (4, 1))
    machine = smoky(8)
    cpn = machine.node_type.cores_per_node

    def run():
        sim = ProtocolSimulation(
            machine, writers, readers,
            writer_cores=[i % cpn + (i // cpn) * cpn for i in range(32)],
            reader_cores=[2 * cpn + j for j in range(4)],
            caching=caching,
        )
        return sim, sim.run(num_steps=5)

    sim, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    eng = matching_engine(sim)
    expected = sum(eng.handshake().messages for _ in range(5))
    assert stats.control_messages == expected
    save_table(
        [{
            "caching": caching.value,
            "control_msgs": stats.control_messages,
            "data_msgs": stats.data_messages,
            "handshake_s_total": sum(stats.handshake_times),
            "data_s_total": sum(stats.data_times),
        }],
        f"protocol_des_{caching.value}",
        title=f"Protocol-level DES: 32x4 exchange, caching={caching.value}",
    )
    if caching is CachingOption.CACHING_ALL:
        assert sum(stats.handshake_times[1:]) == 0.0
