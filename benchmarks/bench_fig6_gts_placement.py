"""Figure 6 — GTS total execution time on Smoky (a) and Titan (b).

Shape targets from the paper:
* all three placement algorithms put GTS analytics on helper cores;
* node-topology-aware < holistic ≈ data-aware < staging < inline;
* the best placement stays within ~8.4 % (Smoky) / ~7.9 % (Titan) of the
  solo lower bound (we allow a modest margin: the pipeline drain of our
  finite runs is included in TET);
* the benefit over inline grows with scale.
"""

import pytest

from repro.figures import fig6_gts_total_execution_time


@pytest.mark.parametrize("machine_name", ["smoky", "titan"])
def test_fig6_gts_placement(benchmark, save_table, machine_name):
    rows = benchmark.pedantic(
        fig6_gts_total_execution_time,
        args=(machine_name,),
        kwargs={"num_steps": 20},
        rounds=1,
        iterations=1,
    )
    sub = "a" if machine_name == "smoky" else "b"
    save_table(
        rows,
        f"fig6{sub}_gts_{machine_name}",
        title=f"Figure 6({sub}): GTS Total Execution Time (s) on {machine_name}",
    )
    for row in rows:
        lb = row["lower-bound"]
        topo = row["helper (topology-aware)"]
        # Ordering within the figure.
        assert lb < topo
        assert topo < row["helper (holistic)"]
        assert topo < row["helper (data-aware)"]
        assert max(row["helper (holistic)"], row["helper (data-aware)"]) < row["staging"]
        assert row["staging"] < row["inline"]
        # Gap to the lower bound stays tight for the best placement.
        assert topo / lb - 1.0 < 0.13
    # Benefit over inline grows (weak scaling).
    benefits = [
        (r["inline"] - r["helper (topology-aware)"]) / r["inline"] for r in rows
    ]
    assert benefits[-1] >= benefits[0] - 0.01
