"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures or tables, writes
the rendered rows under ``results/``, and asserts the *shape* properties
the paper reports (orderings, crossovers, approximate factors).  Absolute
times come from the machine models, not the authors' testbed.
"""

import os

import pytest


@pytest.fixture(scope="session")
def results_dir():
    path = os.path.join(os.path.dirname(__file__), "..", "results")
    os.makedirs(path, exist_ok=True)
    return os.path.abspath(path)


@pytest.fixture
def save_table(results_dir):
    """Write rows to results/<name>.txt and return the rendered text."""
    from repro.figures import write_table

    def _save(rows, name, title="", columns=None):
        return write_table(rows, name, title=title, columns=columns,
                           results_dir=results_dir)

    return _save
