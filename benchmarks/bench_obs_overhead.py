"""Flight-recorder overhead benchmark (telemetry-plane acceptance).

The flight recorder is *always on*, so its per-event cost rides on every
hot-path message.  This bench drives the same 8 MiB shm-pool delivery
loop as :mod:`bench_buffers` with the data plane's per-step recorder
calls (``step.begin`` + ``step.commit``) made explicitly per message,
and compares msgs/s with the recorder **enabled** against the same loop
with ``FLEXIO_FLIGHT=0`` (the disabled fast path: one env check and an
early return).

Target (asserted by the pytest wrapper and recorded in the JSON):
``< 5%`` msgs/s cost on the 8 MiB shm-pool path.  An 8 MiB pool copy
dominates two ring appends by orders of magnitude, so a larger overhead
means the recorder's lock or allocation behaviour regressed.

A microbenchmark of ``record()`` itself (ns/event, enabled vs disabled)
is included so a regression can be localized without the transport in
the way.

Run:  python benchmarks/bench_obs_overhead.py [--quick] [--out FILE]
Also collectable by pytest (the ``test_*`` wrappers assert the target).
"""

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core.monitoring import PerfMonitor
from repro.obs import recorder as flight
from repro.obs.events import EV_STEP_BEGIN, EV_STEP_COMMIT
from repro.transport.shm import ShmChannel
from repro.util import MiB

SIZE = 8 * MiB
STREAM = "bench.obs"


def _payload():
    return np.random.default_rng(SIZE).integers(0, 256, size=SIZE, dtype=np.uint8)


def _set_enabled(enabled):
    os.environ["FLEXIO_FLIGHT"] = "1" if enabled else "0"
    if enabled:
        flight.reset()  # fresh ring so eviction behaviour is identical per run


def _run_loop(reps, enabled):
    """One cell: ``reps`` 8 MiB pool deliveries, 2 flight events each."""
    _set_enabled(enabled)
    mon = PerfMonitor()
    ch = ShmChannel(use_xpmem=False, monitor=mon)
    payload = _payload()
    try:
        t0 = time.perf_counter()
        for step in range(reps):
            flight.record(EV_STEP_BEGIN, stream=STREAM, step=step)
            ch.send(payload)
            wb = ch.recv()
            if not wb.released:
                wb.release()
            flight.record(EV_STEP_COMMIT, stream=STREAM, step=step,
                          nbytes=SIZE)
        dt = time.perf_counter() - t0
    finally:
        ch.close()
        os.environ.pop("FLEXIO_FLIGHT", None)
    return {
        "mode": "enabled" if enabled else "disabled",
        "reps": reps,
        "secs": round(dt, 6),
        "msgs_per_s": round(reps / dt, 2),
        "mb_per_s": round(reps * SIZE / dt / MiB, 1),
        "events_recorded": 2 * reps if enabled else 0,
    }


def _record_ns(n, enabled):
    """Microbenchmark: cost of one record() call in nanoseconds."""
    _set_enabled(enabled)
    try:
        t0 = time.perf_counter()
        for i in range(n):
            flight.record(EV_STEP_COMMIT, stream=STREAM, step=i)
        dt = time.perf_counter() - t0
    finally:
        os.environ.pop("FLEXIO_FLIGHT", None)
    return round(dt / n * 1e9, 1)


def run(quick=False, rounds=3):
    reps = 8 if quick else 32
    micro_n = 20_000 if quick else 200_000
    # Interleave enabled/disabled rounds and keep the best of each so a
    # noisy neighbour (CI) hits both modes symmetrically.
    cells = []
    for _ in range(rounds):
        cells.append(_run_loop(reps, enabled=False))
        cells.append(_run_loop(reps, enabled=True))
    best = {
        mode: max(
            (c for c in cells if c["mode"] == mode),
            key=lambda c: c["msgs_per_s"],
        )
        for mode in ("disabled", "enabled")
    }
    overhead = 1.0 - best["enabled"]["msgs_per_s"] / best["disabled"]["msgs_per_s"]
    return {
        "bench": "obs_overhead",
        "quick": quick,
        "path": "shm-pool",
        "size": SIZE,
        "cells": cells,
        "best_disabled_msgs_per_s": best["disabled"]["msgs_per_s"],
        "best_enabled_msgs_per_s": best["enabled"]["msgs_per_s"],
        "overhead_pct": round(overhead * 100, 2),
        "pass_overhead_lt_5pct": overhead < 0.05,
        "record_ns_enabled": _record_ns(micro_n, enabled=True),
        "record_ns_disabled": _record_ns(micro_n, enabled=False),
    }


# --- pytest wrappers (run only when benchmarks/ is targeted explicitly) ---

def test_flight_recorder_overhead_under_5pct_on_8mib_pool():
    results = run(quick=True, rounds=3)
    assert results["pass_overhead_lt_5pct"], results


def test_record_call_is_submicrosecond():
    assert _record_ns(50_000, enabled=True) < 20_000  # 20 µs: gross regression
    assert _record_ns(50_000, enabled=False) < 5_000


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="fewer reps")
    ap.add_argument("--out", default="BENCH_obs.json")
    args = ap.parse_args(argv)
    results = run(quick=args.quick)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"{'mode':9s} {'reps':>5s} {'msgs/s':>9s} {'MB/s':>10s}")
    for c in results["cells"]:
        print(f"{c['mode']:9s} {c['reps']:5d} {c['msgs_per_s']:9.2f} "
              f"{c['mb_per_s']:10.1f}")
    print(f"record(): {results['record_ns_enabled']} ns enabled, "
          f"{results['record_ns_disabled']} ns disabled")
    print(f"8 MiB shm-pool overhead: {results['overhead_pct']:.2f}% "
          f"({'PASS' if results['pass_overhead_lt_5pct'] else 'FAIL'} <5%)")
    print(f"wrote {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
