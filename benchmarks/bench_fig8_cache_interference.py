"""Figure 8 — last-level cache miss rates of GTS on Smoky.

Shape targets from the paper: helper-core analytics sharing the L3
inflate GTS's miss rate by ~47 % and its simulation time by ~4.1 %.
"""

from repro.figures import fig8_cache_miss_rates


def test_fig8_cache_interference(benchmark, save_table):
    rows = benchmark.pedantic(fig8_cache_miss_rates, rounds=5, iterations=1)
    save_table(rows, "fig8_cache_miss_rates",
               title="Figure 8: GTS LLC misses per 1K instructions on Smoky")
    solo = rows[0]["llc_misses_per_kinst"]
    shared = rows[1]["llc_misses_per_kinst"]
    assert abs(shared / solo - 1.47) < 0.08
    assert abs(rows[1]["sim_slowdown"] - 0.041) < 0.012


def test_fig8_titan_interferes_less(benchmark, save_table):
    """Titan's 8 MiB L3 (vs Smoky's 2 MiB) absorbs the analytics better."""
    rows = benchmark.pedantic(
        fig8_cache_miss_rates, args=("titan",), rounds=5, iterations=1
    )
    save_table(rows, "fig8_cache_miss_rates_titan",
               title="Figure 8 companion: the same co-run on Titan's larger L3")
    smoky_rows = fig8_cache_miss_rates("smoky")
    inflation_titan = rows[1]["llc_misses_per_kinst"] / rows[0]["llc_misses_per_kinst"]
    inflation_smoky = (
        smoky_rows[1]["llc_misses_per_kinst"] / smoky_rows[0]["llc_misses_per_kinst"]
    )
    assert inflation_titan < inflation_smoky
