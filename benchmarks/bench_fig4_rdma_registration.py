"""Figure 4 — cost of dynamic buffer allocation and registration in RDMA
Get on Cray XK6 / Gemini.

Shape targets from the paper:
* static (cached) buffers beat dynamic allocation+registration at every
  message size;
* the gap is largest for small/medium messages and narrows as transfer
  time dominates;
* static large-message bandwidth approaches the Gemini peak (~6 GB/s).
"""

from repro.figures import fig4_rdma_registration
from repro.figures.fig4 import fig4_functional_check
from repro.util import KiB, MiB


def test_fig4_bandwidth_sweep(benchmark, save_table):
    rows = benchmark.pedantic(fig4_rdma_registration, rounds=3, iterations=1)
    text = save_table(
        rows,
        "fig4_rdma_registration",
        title="Figure 4: RDMA Get bandwidth (MB/s), dynamic vs static registration (Gemini)",
    )
    assert len(rows) == 8
    for row in rows:
        assert row["static_MBps"] > row["dynamic_MBps"]
    # Gap narrows with size.
    ratios = [r["dynamic/static"] for r in rows]
    assert ratios[0] < ratios[-1] < 1.0
    # Peak check.
    assert 4000 < rows[-1]["static_MBps"] < 6500


def test_fig4_functional_registration_cache(benchmark, save_table):
    """The protocol-level source of the gap: cold Gets pay setup, warm
    Gets hit the registration cache."""
    out = benchmark.pedantic(fig4_functional_check, rounds=3, iterations=1)
    save_table([out], "fig4_functional_check",
               title="Figure 4 (functional): cold vs steady-state Get through NNTI")
    assert out["steady_time_s"] < out["cold_time_s"]
    assert out["cache_hits"] > 0
    assert out["setup_saved_s"] > 0
