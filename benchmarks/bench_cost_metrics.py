"""Section IV prose numbers: CPU hours, movement volumes, gaps to the
lower bound, staging interference.

Paper claims checked here:
* GTS: inline worst in CPU hours at scale; helper-core cheapest; helper
  and inline cut inter-node movement by ~90 % vs staging; staging's GTS
  slowdown kept under 15 % by the Get scheduler;
* S3D: staging uses ~1–3 % extra resources at these scales (0.78 % at
  the paper's largest) yet beats inline in both TET and CPU hours at
  scale.
"""

from repro.figures import gts_cost_metrics, s3d_cost_metrics


def test_gts_cost_metrics(benchmark, save_table):
    rows = benchmark.pedantic(
        gts_cost_metrics,
        kwargs={"machine_name": "smoky", "gts_cores": 512, "num_steps": 20},
        rounds=1,
        iterations=1,
    )
    save_table(rows, "gts_cost_metrics_smoky",
               title="GTS cost metrics at 512 cores on Smoky")
    by = {r["placement"]: r for r in rows}

    # Inter-node movement: helper ~90 % below staging.
    helper = by["helper (topology-aware)"]
    staging = by["staging"]
    assert helper["inter_node_MB"] < 0.1 * staging["inter_node_MB"]

    # CPU hours: helper cheapest of the real placements; inline worst or
    # close to it at this scale.
    placements = [k for k in by if k != "lower-bound"]
    cheapest = min(placements, key=lambda k: by[k]["cpu_hours"])
    assert cheapest == "helper (topology-aware)"
    assert by["inline"]["cpu_hours"] > by["helper (topology-aware)"]["cpu_hours"]

    # Staging interference on GTS kept under 15 % with scheduling.
    assert by["staging"]["sim_slowdown"] < 0.15

    # Gap to the lower bound for the best placement.
    assert by["helper (topology-aware)"]["gap_to_lb"] < 0.13


def test_s3d_cost_metrics(benchmark, save_table):
    rows = benchmark.pedantic(
        s3d_cost_metrics,
        kwargs={"machine_name": "titan", "s3d_cores": 1024, "num_steps": 40},
        rounds=1,
        iterations=1,
    )
    save_table(rows, "s3d_cost_metrics_titan",
               title="S3D cost metrics at 1024 cores on Titan")
    by = {r["placement"]: r for r in rows}

    staging = by["staging (topology-aware)"]
    # Small extra resources (paper: 0.78 % at their scale).
    assert staging["extra_resources"] < 0.05
    # Staging beats inline in TET and in CPU hours at scale.
    assert staging["tet_s"] < by["inline"]["tet_s"]
    assert staging["cpu_hours"] < by["inline"]["cpu_hours"]
    # Gap to the lower bound (paper: <= 3.6 % on Titan).
    assert staging["gap_to_lb"] < 0.05
    # Inline moves nothing over the interconnect but pays in time.
    assert by["inline"]["inter_node_MB"] == 0


def test_gts_staging_unscheduled_interference(benchmark, save_table):
    """Without the Get scheduler, async bulk movement interferes more —
    the reason the paper 'carefully set the scheduling policy'."""
    from repro.coupled import CoupledOptions

    def run():
        sched = gts_cost_metrics("smoky", 512, num_steps=10,
                                 options=CoupledOptions(scheduler_max_concurrent=4))
        flood = gts_cost_metrics("smoky", 512, num_steps=10,
                                 options=CoupledOptions(scheduler_max_concurrent=None))
        return sched, flood

    sched, flood = benchmark.pedantic(run, rounds=1, iterations=1)
    s = {r["placement"]: r for r in sched}["staging"]
    f = {r["placement"]: r for r in flood}["staging"]
    save_table([s, f], "gts_staging_scheduler_ablation",
               title="GTS staging: scheduled vs unscheduled Gets (interference)")
    assert f["sim_slowdown"] > s["sim_slowdown"]
    assert f["tet_s"] >= s["tet_s"]
