"""Figure 3 mechanism — MxN global-array redistribution.

Real-timing benchmark (pytest-benchmark measures actual wall time of the
data plane) plus the figure's 9-writer → 2-reader example, and the
handshake message accounting per caching option.
"""

import numpy as np
import pytest

from repro.adios import block_decompose
from repro.core import CachingOption, RedistributionEngine
from repro.core.redistribution import compute_plan


def test_fig3_nine_to_two(benchmark, save_table):
    """The paper's Figure 3: a 2D array on 9 writers passed to 2 readers."""
    shape = (900, 900)
    writers = block_decompose(shape, (3, 3))
    readers = block_decompose(shape, (2, 1))
    full = np.arange(shape[0] * shape[1], dtype=np.float64).reshape(shape)
    blocks = [np.ascontiguousarray(full[b.slices()]) for b in writers]
    eng = RedistributionEngine(writers, readers)

    out = benchmark(eng.move, blocks)
    for rb, arr in zip(readers, out):
        np.testing.assert_array_equal(arr, full[rb.slices()])

    plan = eng.plan
    rows = [
        {
            "writers": plan.num_writers,
            "readers": plan.num_readers,
            "overlap_pairs": len(plan.pairs),
            "stride_messages": plan.data_message_count(),
            "bytes_moved": plan.total_bytes(8),
        }
    ]
    save_table(rows, "fig3_mxn_plan", title="Figure 3: 9-writer to 2-reader plan")


@pytest.mark.parametrize("mxn", [(16, 4), (64, 8), (256, 16)])
def test_mxn_move_throughput(benchmark, mxn):
    """Data-plane throughput of the redistribution engine (real time)."""
    m, n = mxn
    shape = (m * 16, 64)
    writers = block_decompose(shape, (m, 1))
    readers = block_decompose(shape, (n, 1))
    full = np.random.default_rng(0).random(shape)
    blocks = [np.ascontiguousarray(full[b.slices()]) for b in writers]
    eng = RedistributionEngine(writers, readers)
    out = benchmark(eng.move, blocks)
    assert sum(o.nbytes for o in out) == full.nbytes


def test_handshake_caching_message_counts(benchmark, save_table):
    """Steady-state control traffic per caching option (Section II.C)."""

    def count():
        writers = block_decompose((128, 128), (16, 2))
        readers = block_decompose((128, 128), (4, 1))
        rows = []
        for opt in CachingOption:
            eng = RedistributionEngine(writers, readers, caching=opt)
            eng.handshake()  # first step
            steady = eng.handshake()  # steady state
            rows.append(
                {
                    "caching": opt.value,
                    "steady_msgs": steady.messages,
                    "steady_control_bytes": steady.control_bytes,
                }
            )
        return rows

    rows = benchmark.pedantic(count, rounds=3, iterations=1)
    save_table(rows, "handshake_caching_counts",
               title="Handshake messages per steady-state step, by caching option")
    by = {r["caching"]: r["steady_msgs"] for r in rows}
    assert by["all"] == 0
    assert by["all"] < by["local"] < by["none"]


def test_plan_computation_scales(benchmark):
    """Plan computation for a large MxN pairing stays fast."""
    writers = block_decompose((1024, 1024), (32, 32))  # 1024 writers
    readers = block_decompose((1024, 1024), (4, 4))    # 16 readers
    plan = benchmark(compute_plan, writers, readers)
    assert plan.num_writers == 1024
    total = sum(p.overlap.size for p in plan.pairs)
    assert total == 1024 * 1024
