"""Figure 7 — detailed timing of GTS and analytics (128 MPI processes on
Smoky).

Shape targets from the paper:
* Case 1 (helper core): I/O overhead nearly invisible thanks to the shm
  transport; analytics idle a large fraction of the time (paper: 67 %);
* Case 2 (inline): analysis weighs ~23.6 % of GTS runtime;
* taking one core from GTS (4 → 3 OpenMP threads) slows the simulation
  by only ~2.7 %;
* helper-core cache sharing costs ~4.1 % of simulation time (vs solo).
"""

from repro.figures import fig7_gts_detailed_timing
from repro.figures.fig7 import fig7_headline_numbers


def test_fig7_detailed_timing(benchmark, save_table):
    rows = benchmark.pedantic(
        fig7_gts_detailed_timing, kwargs={"num_steps": 20}, rounds=1, iterations=1
    )
    save_table(rows, "fig7_gts_detailed_timing",
               title="Figure 7: detailed timing of GTS and analytics (128 ranks, Smoky)")
    heads = fig7_headline_numbers(rows)
    save_table([heads], "fig7_headline_numbers",
               title="Figure 7 headline numbers (paper: 0.236 / 0.027 / 0.041 / 0.67)")

    case1, case2, case3 = rows

    # Case 1: I/O nearly invisible.
    assert case1["io_s"] < 0.01 * case1["tet_s"]
    # Case 1: analytics idle most of the time (paper 67 %).
    assert 0.5 < case1["idle_frac"] < 0.9
    # Case 2: inline analysis ~23.6 % of runtime.
    assert abs(heads["inline_analysis_fraction"] - 0.236) < 0.08
    # Taking one core costs ~2.7 %.
    assert abs(heads["take_one_core_slowdown"] - 0.027) < 0.01
    # Cache sharing costs ~4.1 %.
    assert abs(heads["helper_cache_slowdown"] - 0.041) < 0.015
    # Helper-core TET beats inline TET.
    assert case1["tet_s"] < case2["tet_s"]
    # Solo is the floor.
    assert case3["tet_s"] < case1["tet_s"]
