"""Transport micro-benchmarks (Sections II.D/II.E) — real timings of the
functional data plane: the FastForward SPSC queue, the shm buffer pool,
marshaling, and the simulated shm/RDMA cost hierarchy.
"""

import numpy as np
import pytest

from repro.machine import GeminiInterconnect
from repro.machine.presets import SMOKY_NODE, TITAN_NODE
from repro.marshal import FieldKind, FormatRegistry, decode_message, encode_message
from repro.transport import ShmBufferPool, ShmChannel, ShmCostModel, SPSCQueue
from repro.util import KiB, MiB


def test_spsc_queue_throughput(benchmark):
    """Enqueue+dequeue round trips through the lock-free ring (real time)."""
    q = SPSCQueue(slots=64, payload_size=200)
    msg = b"x" * 128

    def pingpong():
        for _ in range(100):
            q.try_enqueue(msg)
            q.try_dequeue()

    benchmark(pingpong)
    assert q.stats.enqueued == q.stats.dequeued


def test_shm_channel_large_message_throughput(benchmark):
    """One-copy pool path moving 1 MiB payloads (real time)."""
    ch = ShmChannel()
    payload = np.random.default_rng(0).bytes(1 * MiB)

    def send_recv():
        ch.send(payload)
        wb = ch.recv()
        ok = wb == payload
        wb.release()  # return the lease so the pool can reuse the buffer
        return ok

    assert benchmark(send_recv)
    assert ch.pool.stats.reuses > 0  # pool amortizes after warm-up


def test_buffer_pool_reuse_rate(benchmark):
    pool = ShmBufferPool()

    def churn():
        bufs = [pool.acquire(64 * KiB) for _ in range(8)]
        for b in bufs:
            pool.release(b.buffer_id)

    benchmark(churn)
    stats = pool.stats
    assert stats.reuses > stats.allocations


def test_marshal_codec_throughput(benchmark):
    """Encode+decode of a particle-like record (real time)."""
    reg = FormatRegistry()
    fmt = reg.define(
        "particles",
        [("step", FieldKind.INT64), ("zion", FieldKind.ARRAY), ("tag", FieldKind.STRING)],
    )
    record = {"step": 7, "zion": np.random.default_rng(0).random((10_000, 7)), "tag": "gts"}

    def round_trip():
        wire = encode_message(fmt, record, peer_registry=reg)
        return decode_message(wire, reg)

    _, out = benchmark(round_trip)
    assert out["step"] == 7
    assert out["zion"].shape == (10_000, 7)


def test_cost_hierarchy_shm_vs_rdma(benchmark, save_table):
    """Modeled per-MB movement costs: same-NUMA shm < cross-NUMA shm <
    RDMA — the gradient the placement algorithms exploit."""

    def table():
        # Titan: the machine that pairs this node type with Gemini.
        shm = ShmCostModel(TITAN_NODE)
        ic = GeminiInterconnect()
        n = 1 * MiB
        return [
            {"path": "shm same-NUMA (2 copies)", "seconds_per_MiB": shm.transfer_time(n)},
            {"path": "shm same-NUMA (xpmem)", "seconds_per_MiB": shm.transfer_time(n, xpmem=True)},
            {"path": "shm cross-NUMA", "seconds_per_MiB": shm.transfer_time(n, cross_numa=True)},
            {"path": "RDMA (gemini, warm)", "seconds_per_MiB": ic.get_time(n, static_buffers=True)},
            {"path": "RDMA (gemini, cold)", "seconds_per_MiB": ic.get_time(n, static_buffers=False)},
        ]

    rows = benchmark.pedantic(table, rounds=5, iterations=1)
    save_table(rows, "transport_cost_hierarchy",
               title="Modeled movement cost per MiB by path")
    secs = [r["seconds_per_MiB"] for r in rows]
    assert secs[1] < secs[0] < secs[2] < secs[3] < secs[4]
