"""Adaptive in-situ run: real data, simulated time, runtime management.

Combines most of the stack in one run:

* four "simulation ranks" stream real particle data (DES processes that
  also pay simulated compute time);
* a sampling codelet starts reader-side; the placement controller
  watches its observed reduction ratio and migrates it into the writer —
  and because the simulated movement bill is charged from the *actual*
  conditioned byte counts, the migration visibly cuts data movement;
* the performance monitor's trace is dumped at the end, the way FlexIO
  feeds offline tuning.

Run:  python examples/adaptive_insitu.py
"""

import os
import tempfile

import numpy as np

from repro.adios import RankContext
from repro.core import PluginSide, stream_registry
from repro.core.adaptive import AdaptivePolicy, DCPlacementController
from repro.core.hints import CACHING_ALL, stream_params
from repro.core.plugins import sampling_plugin
from repro.coupled.insitu import InSituRun
from repro.machine import smoky
from repro.util import fmt_bytes

CONFIG = """
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="float64" dimensions="n,7"/>
  </adios-group>
  <method group="particles" method="FLEXPATH">{params}</method>
</adios-config>
""".format(params=stream_params(caching=CACHING_ALL))


def generator(rank, step):
    rng = np.random.default_rng(1000 * rank + step)
    return {"zion": rng.normal(size=(20_000, 7))}


def analytics(record, step):
    v = record["zion"]
    return {"step": step, "particles": len(v), "mean_vpar": float(v[:, 3].mean())}


def run_once(stream_name, with_controller):
    stream_registry.reset()
    run = InSituRun(
        machine=smoky(4),
        config_xml=CONFIG,
        group="particles",
        stream_name=stream_name,
        generator=generator,
        analytics=analytics,
        writer_cores=[0, 1, 2, 3],
        reader_cores=[4, 5],
        compute_time_per_step=6.0,
        analytics_time_per_byte=2e-9,
        num_steps=6,
    )
    # Pre-create the stream so the codelet exists before step 0.
    state = stream_registry.create(stream_name, RankContext(0, 4))
    sampler = state.plugins.deploy(sampling_plugin(4), PluginSide.READER)
    controller = DCPlacementController(state.plugins, AdaptivePolicy(hysteresis=2))

    if with_controller:
        # Hook controller observation into the generator path (once per
        # step, as the runtime monitoring gather would).
        inner = run.generator

        def observed(rank, step):
            if rank == 0 and step > 0:
                controller.observe_step(writer_busy_fraction=0.6, sim_step_time=6.0)
            return inner(rank, step)

        run.generator = observed

    result = run.run()
    return result, sampler, controller, state


def main() -> None:
    static, sampler_s, _, _ = run_once("static.stream", with_controller=False)
    adaptive, sampler_a, controller, state = run_once("adaptive.stream", with_controller=True)

    print("static run (codelet stays reader-side):")
    print(f"  simulated TET   {static.simulated_time:8.2f} s")
    print(f"  data moved      {fmt_bytes(static.intra_node_bytes + static.inter_node_bytes)}")
    print(f"  movement time   {static.movement_time:8.3f} s")
    print()
    print("adaptive run (controller migrates the sampler writer-side):")
    print(f"  simulated TET   {adaptive.simulated_time:8.2f} s")
    print(f"  data moved      {fmt_bytes(adaptive.intra_node_bytes + adaptive.inter_node_bytes)}")
    print(f"  movement time   {adaptive.movement_time:8.3f} s")
    for event in controller.events:
        print(f"  migration at step {event.step}: {event.plugin} "
              f"{event.from_side.value} -> {event.to_side.value} ({event.reason})")
    print(f"  sampler now on the {sampler_a.side.value} side "
          f"(reduction ratio {sampler_a.reduction_ratio:.2f})")

    moved_ratio = (adaptive.intra_node_bytes + adaptive.inter_node_bytes) / (
        static.intra_node_bytes + static.inter_node_bytes
    )
    print(f"\nadaptive run moved {moved_ratio:.0%} of the static run's bytes")

    # Offline-tuning path: dump the monitor's trace.
    with tempfile.TemporaryDirectory() as tmp:
        trace = os.path.join(tmp, "flexio_trace.jsonl")
        n = state.monitor.dump(trace)
        print(f"dumped {n} monitoring records for offline tuning "
              f"({os.path.getsize(trace)} bytes)")
    summary = state.monitor.summary()
    for cat in ("stream_publish", "dc_plugin", "dc_migration"):
        if cat in summary:
            s = summary[cat]
            print(f"  {cat:16s} count={s['count']:4d} bytes={fmt_bytes(s['total_bytes'])}")


if __name__ == "__main__":
    main()
