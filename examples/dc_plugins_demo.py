"""Data Conditioning plug-ins (paper Section II.F): mobile codelets on a
live stream.

Shows the full lifecycle: a codelet authored as *source text* on the
reader side, validated against the restricted subset, compiled at
runtime, executed reader-side, then MIGRATED into the writer's address
space mid-stream — changing where the data reduction happens without
touching application code.  Also demonstrates that hostile codelets are
rejected.

Run:  python examples/dc_plugins_demo.py
"""

import numpy as np

import repro
from repro.adios import StepStatus
from repro.core import CodeletError, DCPlugin, PluginSide
from repro.core.monitoring import PerfMonitor
from repro.util import fmt_bytes

CONFIG = """
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="float64" dimensions="n,7"/>
  </adios-group>
  <method group="particles" method="FLEXPATH"/>
</adios-config>
"""

# A codelet, as the analytics would author it: plain source text for a
# velocity-magnitude filter. It travels as a string and compiles on
# whichever side it is deployed to.
FILTER_SRC = """
def condition(vars):
    v = vars['zion']
    speed = np.sqrt(v[:, 3] ** 2 + v[:, 4] ** 2)
    out = dict(vars)
    out['zion'] = v[speed < 1.5]
    return out
"""


def write_step(writer, n=50_000, seed=0):
    rng = np.random.default_rng(seed)
    particles = np.concatenate(
        [rng.uniform(size=(n, 3)), rng.normal(size=(n, 2)),
         rng.uniform(size=(n, 1)), np.arange(n)[:, None]], axis=1
    )
    writer.begin_step()
    writer.write("zion", particles)
    writer.end_step()
    return particles.nbytes


def main() -> None:
    client = repro.connect("local://", config=CONFIG)
    writer = client.open("demo.stream", "w")
    reader = client.open("demo.stream", "r")

    # --- 1. Author + validate the codelet -------------------------------
    codelet = DCPlugin("speed-filter", FILTER_SRC)
    print(f"compiled codelet {codelet.name!r} from {len(FILTER_SRC)} chars of source")

    # Hostile codelets never compile:
    for bad_src, why in [
        ("import os\ndef condition(vars):\n    return vars\n", "import"),
        ("def condition(vars):\n    return vars['zion'].__class__\n", "dunder access"),
    ]:
        try:
            DCPlugin("evil", bad_src)
        except CodeletError as exc:
            print(f"  rejected hostile codelet ({why}): {exc}")

    # --- 2. Deploy reader-side: full data buffered, reduced on read -----
    writer.plugins.deploy(codelet, PluginSide.READER)
    raw_bytes = write_step(writer, seed=1)
    assert reader.begin_step() is StepStatus.OK
    out = reader.read_block("zion", 0)
    reader.end_step()
    print(f"\nreader-side: buffered {fmt_bytes(raw_bytes)}, "
          f"read {fmt_bytes(out.nbytes)} after conditioning")

    # --- 3. Migrate into the writer: reduced BEFORE buffering -----------
    writer.plugins.migrate("speed-filter", PluginSide.WRITER)
    print(f"migrated {codelet.name!r} to the {codelet.side.value} side at runtime")
    write_step(writer, seed=2)
    assert reader.begin_step() is StepStatus.OK
    out2 = reader.read_block("zion", 0)
    reader.end_step()
    print(f"writer-side: only {fmt_bytes(out2.nbytes)} ever entered the stream "
          f"(same conditioning, moved upstream)")

    # --- 4. Monitoring sees every codelet execution ---------------------
    stats = codelet.stats
    print(f"\ncodelet stats: {stats.invocations} invocations, "
          f"{fmt_bytes(stats.bytes_in)} in -> {fmt_bytes(stats.bytes_out)} out "
          f"(reduction x{stats.bytes_in / max(stats.bytes_out, 1):.1f})")
    writer.close()


if __name__ == "__main__":
    main()
