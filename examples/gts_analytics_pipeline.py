"""The GTS online-analytics pipeline (paper Section IV.A), end to end.

Four GTS ranks generate particle data (zions + electrons, seven
attributes each) and stream it through FlexIO; a Data Conditioning
plug-in — created by the analytics but *deployed into the writer's
address space* — samples the particles before they are buffered; the
analytics side then runs the paper's chain: particle distribution
function, ~20 %-selective range query on velocity, and 1-D/2-D
histograms saved for parallel-coordinates visualization.

Run:  python examples/gts_analytics_pipeline.py
"""

import os
import tempfile

from repro.adios import EndOfStream, RankContext
from repro.apps import GtsAnalytics, GtsConfig, GtsRank
from repro.core import FlexIO, PluginSide
from repro.core.plugins import sampling_plugin
from repro.util import fmt_bytes

CONFIG = """
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="float64" dimensions="n,7"/>
    <var name="electron" type="float64" dimensions="n,7"/>
  </adios-group>
  <method group="particles" method="FLEXPATH">batching=true</method>
</adios-config>
"""

NUM_RANKS = 4
NUM_STEPS = 3


def main() -> None:
    flexio = FlexIO.from_xml(CONFIG)
    cfg = GtsConfig(num_ranks=NUM_RANKS, particles_per_rank=20_000)

    # --- Simulation side: write particle output every I/O step ----------
    gts_ranks = [GtsRank(cfg, r) for r in range(NUM_RANKS)]
    writers = [
        flexio.open_write("particles", "gts.particles", RankContext(r, NUM_RANKS))
        for r in range(NUM_RANKS)
    ]

    # The analytics ships a sampling codelet to run WRITER-side, cutting
    # what FlexIO must buffer/move by 4x before it leaves the simulation.
    sampler = sampling_plugin(stride=4)
    writers[0].plugins.deploy(sampler, PluginSide.WRITER)
    print(f"deployed DC plug-in {sampler.name!r} into the writer address space")

    for step in range(NUM_STEPS):
        for rank, writer in zip(gts_ranks, writers):
            output = rank.output(step)
            writer.write("zion", output["zion"])
            writer.write("electron", output["electron"])
        for writer in writers:
            writer.advance()
    for writer in writers:
        writer.close()
    print(f"DC plug-in reduction ratio: {sampler.reduction_ratio:.2f} "
          f"({fmt_bytes(sampler.stats.bytes_in)} -> {fmt_bytes(sampler.stats.bytes_out)})")

    # --- Analytics side: the paper's chain, process-group pattern -------
    chain = GtsAnalytics(selectivity=0.2)
    reader = flexio.open_read("particles", "gts.particles", RankContext(0, 1))
    with tempfile.TemporaryDirectory() as tmp:
        step = 0
        while True:
            for writer_rank in range(NUM_RANKS):
                record = {
                    "zion": reader.read_block("zion", writer_rank),
                    "electron": reader.read_block("electron", writer_rank),
                }
                result = chain.process(record, step=step)
                GtsAnalytics.save(result, os.path.join(tmp, f"hist_s{step}_r{writer_rank}.npz"))
            try:
                reader.advance()
                step += 1
            except EndOfStream:
                break
        nfiles = len(os.listdir(tmp))
    print(f"analytics processed {chain.steps_processed} process groups over "
          f"{step + 1} steps; wrote {nfiles} histogram files")
    print(f"range-query selectivity: {chain.reduction_ratio:.1%} (paper: ~20%)")


if __name__ == "__main__":
    main()
