"""The GTS online-analytics pipeline (paper Section IV.A), end to end.

Four GTS ranks generate particle data (zions + electrons, seven
attributes each) plus a small 2-D field grid and stream them through
FlexIO; a Data Conditioning plug-in — created by the analytics but
*deployed into the writer's address space* — samples the particles
before they are buffered; the analytics side then runs the paper's
chain: particle distribution function, ~20 %-selective range query on
velocity, and 1-D/2-D histograms saved for parallel-coordinates
visualization.

The stream runs with ``trace=true``, so every timestep becomes one
distributed trace: the write span is the root, and the reader's
redistribute/transport/plug-in spans attach to it across the
decoupled programs.

Run:  python examples/gts_analytics_pipeline.py
      python examples/gts_analytics_pipeline.py --trace-dir out/
      python -m repro.tools.trace out/gts_trace.jsonl
"""

import argparse
import os
import tempfile

import numpy as np

import repro
from repro.adios import BoundingBox
from repro.apps import GtsAnalytics, GtsConfig, GtsRank
from repro.core import PluginSide
from repro.core.hints import stream_params
from repro.core.plugins import sampling_plugin
from repro.util import fmt_bytes

CONFIG = """
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="float64" dimensions="n,7"/>
    <var name="electron" type="float64" dimensions="n,7"/>
    <var name="phi" type="float64" dimensions="64,64"/>
  </adios-group>
  <method group="particles" method="FLEXPATH">{params}</method>
</adios-config>
""".format(params=stream_params(batching=True, trace=True))

NUM_RANKS = 4
NUM_STEPS = 3
PHI_SHAPE = (64, 64)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="write gts_trace.jsonl + gts_trace.perfetto.json "
                             "and the monitoring report here")
    args = parser.parse_args(argv)

    client = repro.connect("local://", config=CONFIG)
    cfg = GtsConfig(num_ranks=NUM_RANKS, particles_per_rank=20_000)

    # --- Simulation side: write particle output every I/O step ----------
    gts_ranks = [GtsRank(cfg, r) for r in range(NUM_RANKS)]
    writers = [
        client.open("gts.particles", "w", rank=r, num_ranks=NUM_RANKS)
        for r in range(NUM_RANKS)
    ]
    monitor = writers[0].monitor  # shared by the whole stream (trace=true)

    # The analytics ships a sampling codelet to run WRITER-side, cutting
    # what FlexIO must buffer/move by 4x before it leaves the simulation.
    # `only` leaves the phi field grid intact: its block distribution must
    # survive for the reader's global-array redistribution.
    sampler = sampling_plugin(stride=4, only=("zion", "electron"))
    writers[0].plugins.deploy(sampler, PluginSide.WRITER)
    print(f"deployed DC plug-in {sampler.name!r} into the writer address space")

    rows = PHI_SHAPE[0] // NUM_RANKS
    for step in range(NUM_STEPS):
        for writer in writers:
            writer.begin_step()
        for r, (rank, writer) in enumerate(zip(gts_ranks, writers)):
            output = rank.output(step)
            writer.write("zion", output["zion"])
            writer.write("electron", output["electron"])
            # Each rank owns a row-block of the 64x64 potential field.
            phi_block = np.fromfunction(
                lambda i, j: np.sin((i + r * rows) / 7.0 + step) * np.cos(j / 9.0),
                (rows, PHI_SHAPE[1]),
            )
            writer.write(
                "phi", phi_block,
                box=BoundingBox((r * rows, 0), (rows, PHI_SHAPE[1])),
                global_shape=PHI_SHAPE,
            )
        for writer in writers:
            # Async publish: the drainer pushes the step through the shm
            # channel while the simulation continues.
            writer.end_step()
    for writer in writers:
        writer.close()
    print(f"DC plug-in reduction ratio: {sampler.reduction_ratio:.2f} "
          f"({fmt_bytes(sampler.stats.bytes_in)} -> {fmt_bytes(sampler.stats.bytes_out)})")

    # --- Analytics side: the paper's chain, process-group pattern -------
    chain = GtsAnalytics(selectivity=0.2)
    reader = client.open("gts.particles", "r")

    def check_phi(rd, step):
        # Global-array read: MxN redistribution of the field grid.
        phi = rd.read("phi")
        assert phi.shape == PHI_SHAPE

    with tempfile.TemporaryDirectory() as tmp:
        results = chain.run_stream(
            reader, NUM_RANKS, save_dir=tmp, on_step=check_phi
        )
        nfiles = len(os.listdir(tmp))
    nsteps = 1 + max(r.step for r in results)
    print(f"analytics processed {chain.steps_processed} process groups over "
          f"{nsteps} steps; wrote {nfiles} histogram files")
    print(f"range-query selectivity: {chain.reduction_ratio:.1%} (paper: ~20%)")

    # --- Observability: dump the trace for offline analysis -------------
    n_spans = sum(1 for r in monitor.trace if "trace_id" in dict(r.extra))
    print(f"captured {n_spans} spans over {len(monitor.trace)} trace records")
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
        dump = os.path.join(args.trace_dir, "gts_trace.jsonl")
        monitor.dump(dump)
        perfetto = os.path.join(args.trace_dir, "gts_trace.perfetto.json")
        nev = monitor.export_perfetto(perfetto)
        print(f"wrote {dump} and {perfetto} ({nev} Perfetto events)")
        print(f"analyze with: python -m repro.tools.trace {dump}")
        print()
        print(monitor.report())


if __name__ == "__main__":
    main()
