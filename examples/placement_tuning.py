"""Placement tuning (paper Section III/IV): run every placement option
for GTS on Smoky and compare the paper's metrics.

This regenerates a column of Figure 6(a) at one scale and prints what
each placement algorithm decided and what it cost.

Run:  python examples/placement_tuning.py [gts_cores]
"""

import sys

from repro.coupled import evaluate_gts_placements
from repro.coupled.scenarios import gts_ranks_for_cores, gts_workload
from repro.figures import format_table
from repro.machine import smoky
from repro.placement import DataAwareMapping, HolisticPlacement, NodeTopologyAwarePlacement
from repro.placement.algorithms import process_group_matrix
from repro.util import fmt_bytes


def main() -> None:
    cores = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    machine = smoky(80)
    ranks = gts_ranks_for_cores(machine, cores)
    print(f"GTS at {cores} cores on {machine.name}: {ranks} MPI ranks\n")

    # --- What the three algorithms decide --------------------------------
    helper_wl, cfg = gts_workload(machine, ranks, helper_mode=True)
    matrix = process_group_matrix(ranks, ranks, cfg.bytes_per_rank)
    print("placement decisions:")
    for algo in (DataAwareMapping(), HolisticPlacement(), NodeTopologyAwarePlacement()):
        p = algo.place(machine, helper_wl.sim, helper_wl.ana, matrix, num_ana=ranks)
        print(
            f"  {algo.name:16s} style={p.style():12s} nodes={p.num_nodes:3d} "
            f"numa-splits={p.thread_numa_splits():3d} "
            f"inter-node-movement={fmt_bytes(p.interprogram_internode_bytes())}"
        )
    print()

    # --- What each placement costs end to end ----------------------------
    results = evaluate_gts_placements(machine, ranks, num_steps=20)
    lower_bound = results["lower-bound"].total_execution_time
    rows = []
    for name, r in results.items():
        rows.append(
            {
                "placement": name,
                "TET_s": r.total_execution_time,
                "vs_lower_bound": f"{r.total_execution_time / lower_bound - 1:+.1%}",
                "nodes": r.metrics.num_nodes,
                "cpu_hours": r.metrics.total_cpu_hours,
                "inter_node_MB": r.metrics.inter_node_bytes / 2**20,
                "ana_idle": f"{r.analytics_idle_fraction:.0%}",
            }
        )
    print(format_table(rows, title=f"Coupled GTS run, {cores} cores on Smoky"))

    best = min(
        (r for r in rows if r["placement"] != "lower-bound"),
        key=lambda r: r["TET_s"],
    )
    print(f"best placement: {best['placement']} "
          f"({best['vs_lower_bound']} above the solo lower bound)")


if __name__ == "__main__":
    main()
