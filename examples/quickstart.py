"""Quickstart: couple a writer and a reader through FlexIO.

The central idea of FlexIO: the application is written once against the
ADIOS-style step API; whether data streams memory-to-memory to online
analytics or lands in a BP file for offline analysis is decided by one
line in the XML configuration.  The session itself comes from one call:

    client = repro.connect("local://", config=...)        # in-process
    client = repro.connect("flexio://host:port/tenant")   # networked

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

import repro
from repro.adios import BoxSelection, StepStatus, block_decompose
from repro.core.hints import CACHING_ALL, stream_params
from repro.machine import smoky

CONFIG = """
<adios-config>
  <adios-group name="fields">
    <var name="temperature" type="float64" dimensions="32,32"/>
  </adios-group>
  <method group="fields" method="{method}">{params}</method>
</adios-config>
"""

# Hints built through the central registry: a typo would raise at build
# time instead of being silently ignored by the config layer.
PARAMS = stream_params(caching=CACHING_ALL, batching=True)

SHAPE = (32, 32)
NUM_WRITERS = 4
NUM_STEPS = 3


def run_simulation(client, name: str) -> None:
    """Four 'simulation ranks' write a block-decomposed global array."""
    boxes = block_decompose(SHAPE, (2, 2))
    handles = [
        client.open(name, "w", rank=r, num_ranks=NUM_WRITERS)
        for r in range(NUM_WRITERS)
    ]
    for step in range(NUM_STEPS):
        field = np.fromfunction(
            lambda i, j: np.sin(i / 5.0 + step) * np.cos(j / 7.0), SHAPE
        )
        for rank, handle in enumerate(handles):
            handle.begin_step()
            handle.write(
                "temperature",
                field[boxes[rank].slices()].copy(),
                box=boxes[rank],
                global_shape=SHAPE,
            )
        for handle in handles:
            handle.end_step()
    for handle in handles:
        handle.close()


def run_analytics(client, name: str) -> list[float]:
    """One 'analytics rank' reads a selection of the global array back."""
    reader = client.open(name, "r")
    maxima = []
    while reader.begin_step() is StepStatus.OK:
        # A sub-selection spanning several writers' blocks — FlexIO's MxN
        # machinery reassembles it transparently.  Selection objects go
        # through the selection= keyword; raw tuples through start=/count=.
        region = reader.read(
            "temperature", selection=BoxSelection(start=(8, 8), count=(16, 16))
        )
        maxima.append(float(region.max()))
        reader.end_step()
    reader.close()
    return maxima


def main() -> None:
    # --- Stream mode: memory-to-memory, no files ------------------------
    client = repro.connect(
        "local://",
        config=CONFIG.format(method="FLEXPATH", params=PARAMS),
        machine=smoky(4),
    )
    print(f"[stream] method for group 'fields': {client.flexio.method_name('fields')}")
    run_simulation(client, "quickstart.stream")
    stream_maxima = run_analytics(client, "quickstart.stream")
    print(f"[stream] per-step maxima of the selection: {stream_maxima}")

    # --- File mode: the ONE-LINE switch ---------------------------------
    client = repro.connect("local://", config=CONFIG.format(method="BP", params=PARAMS))
    print(f"[file]   method for group 'fields': {client.flexio.method_name('fields')}")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "quickstart.bp")
        run_simulation(client, path)
        print(f"[file]   BP-lite file written: {os.path.getsize(path)} bytes")
        file_maxima = run_analytics(client, path)
    print(f"[file]   per-step maxima of the selection: {file_maxima}")

    assert stream_maxima == file_maxima, "stream and file modes must agree"
    print("OK: identical results through both transports, zero code changes.")


if __name__ == "__main__":
    main()
