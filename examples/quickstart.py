"""Quickstart: couple a writer and a reader through FlexIO.

The central idea of FlexIO: the application is written once against the
ADIOS-style API; whether data streams memory-to-memory to online
analytics or lands in a BP file for offline analysis is decided by one
line in the XML configuration.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro.adios import BoxSelection, RankContext, StepStatus, block_decompose
from repro.core import FlexIO
from repro.core.hints import CACHING_ALL, stream_params
from repro.machine import smoky

CONFIG = """
<adios-config>
  <adios-group name="fields">
    <var name="temperature" type="float64" dimensions="32,32"/>
  </adios-group>
  <method group="fields" method="{method}">{params}</method>
</adios-config>
"""

# Hints built through the central registry: a typo would raise at build
# time instead of being silently ignored by the config layer.
PARAMS = stream_params(caching=CACHING_ALL, batching=True)

SHAPE = (32, 32)
NUM_WRITERS = 4
NUM_STEPS = 3


def run_simulation(flexio: FlexIO, name: str) -> None:
    """Four 'simulation ranks' write a block-decomposed global array."""
    boxes = block_decompose(SHAPE, (2, 2))
    handles = [
        flexio.open_write("fields", name, RankContext(r, NUM_WRITERS))
        for r in range(NUM_WRITERS)
    ]
    for step in range(NUM_STEPS):
        field = np.fromfunction(
            lambda i, j: np.sin(i / 5.0 + step) * np.cos(j / 7.0), SHAPE
        )
        for rank, handle in enumerate(handles):
            handle.begin_step()
            handle.write(
                "temperature",
                field[boxes[rank].slices()].copy(),
                box=boxes[rank],
                global_shape=SHAPE,
            )
        for handle in handles:
            handle.end_step()
    for handle in handles:
        handle.close()


def run_analytics(flexio: FlexIO, name: str) -> list[float]:
    """One 'analytics rank' reads a selection of the global array back."""
    reader = flexio.open_read("fields", name, RankContext(0, 1))
    maxima = []
    while reader.begin_step() is StepStatus.OK:
        # A sub-selection spanning several writers' blocks — FlexIO's MxN
        # machinery reassembles it transparently.  Selections can be
        # passed as objects instead of raw start/count tuples.
        region = reader.read("temperature", BoxSelection(start=(8, 8), count=(16, 16)))
        maxima.append(float(region.max()))
        reader.end_step()
    reader.close()
    return maxima


def main() -> None:
    # --- Stream mode: memory-to-memory, no files ------------------------
    flexio = FlexIO.from_xml(
        CONFIG.format(method="FLEXPATH", params=PARAMS), machine=smoky(4)
    )
    print(f"[stream] method for group 'fields': {flexio.method_name('fields')}")
    run_simulation(flexio, "quickstart.stream")
    stream_maxima = run_analytics(flexio, "quickstart.stream")
    print(f"[stream] per-step maxima of the selection: {stream_maxima}")

    # --- File mode: the ONE-LINE switch ---------------------------------
    flexio = FlexIO.from_xml(CONFIG.format(method="BP", params=PARAMS))
    print(f"[file]   method for group 'fields': {flexio.method_name('fields')}")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "quickstart.bp")
        run_simulation(flexio, path)
        print(f"[file]   BP-lite file written: {os.path.getsize(path)} bytes")
        file_maxima = run_analytics(flexio, path)
    print(f"[file]   per-step maxima of the selection: {file_maxima}")

    assert stream_maxima == file_maxima, "stream and file modes must agree"
    print("OK: identical results through both transports, zero code changes.")


if __name__ == "__main__":
    main()
