"""The Pixie3D online analysis & visualization pipeline on the Cray XT5
(paper Section II.H).

Eight Pixie3D ranks stream the conserved MHD fields (density, pressure,
velocity, magnetic field) through FlexIO; the analysis side computes the
current density J = ∇×B, scalar diagnostics (energies, max current,
∇·B check), and renders a mid-plane slice of |J| to a PPM image — all on
the Jaguar XT5 machine model with the SeaStar interconnect.

Run:  python examples/pixie3d_xt5_pipeline.py [output_dir]
"""

import os
import sys

import numpy as np

import repro
from repro.adios import StepStatus
from repro.apps import Pixie3dAnalysis, Pixie3dConfig, Pixie3dRank, write_ppm
from repro.apps.pixie3d import FIELDS
from repro.apps.viz import _heat_colormap
from repro.core.hints import CACHING_ALL, stream_params
from repro.machine import jaguar_xt5

CONFIG = """
<adios-config>
  <adios-group name="mhd">
    {vars}
  </adios-group>
  <method group="mhd" method="FLEXPATH">{params}</method>
</adios-config>
""".format(
    vars="\n    ".join(
        f'<var name="{f}" type="float64" dimensions="n,n,n"/>' for f in FIELDS
    ),
    params=stream_params(caching=CACHING_ALL, batching=True),
)

NUM_RANKS = 8
NUM_STEPS = 3


def slice_to_ppm(path, field2d):
    """Colormap a 2-D slice into an image file."""
    lo, hi = float(field2d.min()), float(field2d.max())
    norm = (field2d - lo) / (hi - lo if hi > lo else 1.0)
    rgb = (_heat_colormap(norm) * 255.0 + 0.5).astype(np.uint8)
    return write_ppm(path, rgb)


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "pixie3d_images"
    os.makedirs(out_dir, exist_ok=True)

    machine = jaguar_xt5(8)
    print(f"machine: {machine.name} — {machine.node_type.cores_per_node} cores/node, "
          f"{machine.interconnect.name} interconnect")

    cfg = Pixie3dConfig(num_ranks=NUM_RANKS, local_edge=10)
    gshape = cfg.global_shape
    boxes = cfg.boxes()
    client = repro.connect("local://", config=CONFIG, machine=machine)

    # --- Simulation side --------------------------------------------------
    writers = [
        client.open("pixie3d.stream", "w", rank=r, num_ranks=NUM_RANKS)
        for r in range(NUM_RANKS)
    ]
    for step in range(NUM_STEPS):
        for w in writers:
            w.begin_step()
        for r, w in enumerate(writers):
            record = Pixie3dRank(cfg, r).output(step)
            for name, data in record.items():
                w.write(name, data, box=boxes[r], global_shape=gshape)
        for w in writers:
            w.end_step()
    for w in writers:
        w.close()
    print(f"streamed {NUM_STEPS} steps of {len(FIELDS)} fields on a {gshape} grid")

    # --- Analysis side ------------------------------------------------------
    analysis = Pixie3dAnalysis(cfg.spacing)
    reader = client.open("pixie3d.stream", "r")
    step = 0
    while reader.begin_step() is StepStatus.OK:
        record = {name: reader.read(name) for name in FIELDS}
        diag = analysis.diagnostics(record, step=step)
        print(f"  step {step}: E_mag={diag.magnetic_energy:.4f} "
              f"E_kin={diag.kinetic_energy:.5f} max|J|={diag.max_current:.2f} "
              f"<|divB|>={diag.mean_abs_div_b:.3f}")
        jx, jy, jz = analysis.current_density(record)
        jmag = np.sqrt(jx**2 + jy**2 + jz**2)
        path = os.path.join(out_dir, f"current_step{step}.ppm")
        nbytes = slice_to_ppm(path, analysis.slice_field(jmag, axis=2))
        print(f"    wrote {path} ({nbytes} bytes)")
        reader.end_step()
        step += 1
    print(f"analysis processed {analysis.steps_processed} steps")


if __name__ == "__main__":
    main()
