"""The S3D in-situ visualization pipeline (paper Section IV.B).

Eight S3D ranks stream 3-D species fields through FlexIO's global-array
pattern; two visualization ranks each read a slab (a *different*
distribution than the writers' — the MxN redistribution happens under
the read call), volume-render their slab, composite depth-ordered
partials, and write PPM images exactly as the paper's pipeline does.

Run:  python examples/s3d_insitu_viz.py [output_dir]
"""

import os
import sys

import numpy as np

import repro
from repro.adios import StepStatus, block_decompose
from repro.apps import S3dConfig, S3dRank, composite_over, volume_render, write_ppm
from repro.core.hints import CACHING_ALL, stream_params

CONFIG = """
<adios-config>
  <adios-group name="species">
    <var name="OH" type="float64" dimensions="n,n,n"/>
    <var name="CH4" type="float64" dimensions="n,n,n"/>
  </adios-group>
  <method group="species" method="FLEXPATH">{params}</method>
</adios-config>
""".format(params=stream_params(caching=CACHING_ALL, batching=True))

SPECIES_TO_RENDER = ("OH", "CH4")
NUM_VIZ = 2
NUM_STEPS = 2


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "s3d_images"
    os.makedirs(out_dir, exist_ok=True)

    cfg = S3dConfig(num_ranks=8, local_edge=12)
    gshape = cfg.global_shape
    writer_boxes = cfg.boxes()
    client = repro.connect("local://", config=CONFIG)

    # --- Simulation side -------------------------------------------------
    writers = [
        client.open("s3d.species", "w", rank=r, num_ranks=cfg.num_ranks)
        for r in range(cfg.num_ranks)
    ]
    ranks = [S3dRank(cfg, r) for r in range(cfg.num_ranks)]
    for step in range(NUM_STEPS):
        for writer in writers:
            writer.begin_step()
        for r, writer in enumerate(writers):
            for sp in SPECIES_TO_RENDER:
                writer.write(
                    sp,
                    ranks[r].species_field(step, sp),
                    box=writer_boxes[r],
                    global_shape=gshape,
                )
        for writer in writers:
            writer.end_step()
    for writer in writers:
        writer.close()
    print(f"simulation streamed {NUM_STEPS} steps of "
          f"{len(SPECIES_TO_RENDER)} species on a {gshape} grid")

    # --- Visualization side: 2 ranks, slab decomposition ----------------
    viz_boxes = block_decompose(gshape, (NUM_VIZ, 1, 1))
    readers = [
        client.open("s3d.species", "r", rank=v, num_ranks=NUM_VIZ)
        for v in range(NUM_VIZ)
    ]
    step = 0
    images = 0
    while all(r.begin_step() is StepStatus.OK for r in readers):
        for sp in SPECIES_TO_RENDER:
            # Each viz rank reads ITS slab; FlexIO chunks/reassembles from
            # however the 8 writers decomposed the array (the MxN exchange).
            slabs = [
                readers[v].read(sp, start=viz_boxes[v].start, count=viz_boxes[v].count)
                for v in range(NUM_VIZ)
            ]
            lo = min(float(s.min()) for s in slabs)
            hi = max(float(s.max()) for s in slabs)
            partials = [volume_render(s, axis=0, vrange=(lo, hi)) for s in slabs]
            image = composite_over(partials)  # depth-ordered compositing
            path = os.path.join(out_dir, f"{sp}_step{step}.ppm")
            nbytes = write_ppm(path, image)
            images += 1
            print(f"  rendered {path} ({nbytes} bytes)")
        for r in readers:
            r.end_step()
        step += 1
    print(f"wrote {images} PPM images to {out_dir}/")


if __name__ == "__main__":
    main()
