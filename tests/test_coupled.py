"""Tests for the coupled-run simulator: pipeline mechanics + paper shapes."""

import pytest

from repro.coupled import (
    CoupledOptions,
    CoupledWorkload,
    PlacementStyle,
    evaluate_gts_placements,
    evaluate_s3d_placements,
    gts_workload,
    s3d_workload,
    simulate_coupled,
)
from repro.coupled.scenarios import GTS_ANALYTICS_CACHE, GTS_CACHE
from repro.machine import smoky, titan
from repro.placement.algorithms import AnalyticsProfile, SimProfile


def tiny_workload(io_interval=10.0, ana_time=4.0, num_steps=5, **kw):
    sim = SimProfile(num_ranks=4, threads_per_rank=3, io_interval=io_interval,
                     bytes_per_rank=8 << 20, grid=(2, 2), halo_bytes=1 << 20)
    ana = AnalyticsProfile(time_single=ana_time, serial_fraction=0.01)
    defaults = dict(
        name="tiny", sim=sim, ana=ana, num_steps=num_steps,
        sim_cache=GTS_CACHE, ana_cache=GTS_ANALYTICS_CACHE,
    )
    defaults.update(kw)
    return CoupledWorkload(**defaults)


# ---------------------------------------------------------------------------
# Pipeline mechanics
# ---------------------------------------------------------------------------

def test_solo_is_pure_compute():
    m = smoky(4)
    wl = tiny_workload()
    r = simulate_coupled(m, wl, style=PlacementStyle.SOLO)
    assert r.total_execution_time == pytest.approx(5 * 10.0)
    assert r.metrics.data_movement_volume == 0
    assert r.num_analytics == 0


def test_inline_adds_analysis_serially():
    m = smoky(4)
    wl = tiny_workload()
    solo = simulate_coupled(m, wl, style=PlacementStyle.SOLO)
    inline = simulate_coupled(m, wl, style=PlacementStyle.INLINE)
    assert inline.total_execution_time > solo.total_execution_time
    # Inline analysis runs at n = num_ranks.
    expected_extra = 5 * wl.ana.time(4)
    assert inline.total_execution_time - solo.total_execution_time == pytest.approx(
        expected_extra, rel=0.05
    )


def test_helper_pipeline_hides_fast_analytics():
    """When analytics keep up, TET ≈ sim time (+ small drain)."""
    m = smoky(4)
    wl = tiny_workload(ana_time=2.0)
    r = simulate_coupled(m, wl, style=PlacementStyle.HELPER_CORE, num_ana=4)
    sim_only = 5 * r.step.sim_compute
    assert r.total_execution_time < sim_only + 2 * r.step.ana_compute
    assert r.analytics_idle_fraction > 0.3


def test_slow_analytics_become_the_bottleneck():
    """Consumption slower than production: backpressure stalls the sim."""
    m = smoky(4)
    wl = tiny_workload(io_interval=2.0, ana_time=8.0)
    opts = CoupledOptions(max_buffered_steps=1)
    r = simulate_coupled(m, wl, style=PlacementStyle.HELPER_CORE, num_ana=1, options=opts)
    # TET is set by the analytics' throughput, not the sim's.
    assert r.total_execution_time >= 5 * wl.ana.time(1) * 0.9
    assert r.analytics_idle_fraction < 0.3


def test_buffering_absorbs_jitter_headroom():
    """More buffered steps never hurt total time."""
    m = smoky(4)
    wl = tiny_workload(io_interval=3.0, ana_time=3.5)
    tets = []
    for k in (1, 2, 8):
        r = simulate_coupled(
            m, wl, style=PlacementStyle.HELPER_CORE, num_ana=1,
            options=CoupledOptions(max_buffered_steps=k),
        )
        tets.append(r.total_execution_time)
    assert tets[0] >= tets[1] >= tets[2]


def test_sync_vs_async_staging():
    m = smoky(8)
    wl = tiny_workload(ana_time=2.0)
    asyn = simulate_coupled(
        m, wl, style=PlacementStyle.STAGING, num_ana=2,
        options=CoupledOptions(asynchronous=True),
    )
    syn = simulate_coupled(
        m, wl, style=PlacementStyle.STAGING, num_ana=2,
        options=CoupledOptions(asynchronous=False),
    )
    # Sync writers block for the full movement; async hides it (at the
    # price of a small interference slowdown).
    assert syn.step.sim_io_visible > asyn.step.sim_io_visible
    assert "network" in asyn.step.slowdowns


def test_offline_serializes_sim_then_analytics():
    m = smoky(4)
    wl = tiny_workload(ana_time=2.0)
    r = simulate_coupled(m, wl, style=PlacementStyle.OFFLINE, num_ana=2)
    sim_part = 5 * (r.step.sim_compute + r.step.sim_io_visible)
    ana_part = 5 * (r.step.movement_latency + r.step.ana_compute)
    assert r.total_execution_time == pytest.approx(sim_part + ana_part)
    assert r.metrics.file_bytes > 0
    assert r.step.sim_io_visible > 0  # file writes are writer-visible


def test_movement_volume_accounting_by_style():
    m = smoky(8)
    wl = tiny_workload()
    helper = simulate_coupled(m, wl, style=PlacementStyle.HELPER_CORE, num_ana=4)
    staging = simulate_coupled(m, wl, style=PlacementStyle.STAGING, num_ana=4)
    inline = simulate_coupled(m, wl, style=PlacementStyle.INLINE)
    assert inline.metrics.inter_node_bytes == 0
    assert helper.metrics.intra_node_bytes > 0
    assert helper.metrics.inter_node_bytes < staging.metrics.inter_node_bytes
    # The paper's ~90 % claim direction: helper slashes interconnect bytes.
    assert helper.metrics.inter_node_bytes < 0.2 * staging.metrics.inter_node_bytes


def test_style_or_placement_required():
    with pytest.raises(ValueError):
        simulate_coupled(smoky(4), tiny_workload())


def test_workload_validation():
    with pytest.raises(ValueError):
        tiny_workload(num_steps=0)
    with pytest.raises(ValueError):
        CoupledOptions(max_buffered_steps=0)
    with pytest.raises(ValueError):
        CoupledOptions(scheduler_max_concurrent=0)


# ---------------------------------------------------------------------------
# Paper shapes: GTS (Figure 6/7/8)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def gts_smoky():
    return evaluate_gts_placements(smoky(40), num_ranks=32, num_steps=20)


def test_gts_fig6_ordering(gts_smoky):
    """helper(topo) < helper(holistic/DAM) < staging < inline, all > LB."""
    tet = {k: r.total_execution_time for k, r in gts_smoky.items()}
    assert tet["lower-bound"] < tet["helper (topology-aware)"]
    assert tet["helper (topology-aware)"] < tet["helper (holistic)"]
    assert tet["helper (topology-aware)"] < tet["helper (data-aware)"]
    assert max(tet["helper (holistic)"], tet["helper (data-aware)"]) < tet["staging"]
    assert tet["staging"] < tet["inline"]


def test_gts_gap_to_lower_bound(gts_smoky):
    """Paper: best placement within ~8.4 % of the lower bound on Smoky."""
    lb = gts_smoky["lower-bound"].total_execution_time
    best = gts_smoky["helper (topology-aware)"].metrics
    assert best.gap_to(lb) < 0.12


def test_gts_fig8_cache_inflation(gts_smoky):
    """Paper: ~47 % more L3 misses, ~4.1 % cycle-time increase."""
    r = gts_smoky["helper (topology-aware)"]
    solo, shared = r.cache_misses
    assert shared / solo == pytest.approx(1.47, abs=0.07)
    assert r.step.slowdowns["cache"] == pytest.approx(0.041, abs=0.01)


def test_gts_fig7_phases(gts_smoky):
    """Helper-core case: negligible I/O, analytics mostly idle."""
    r = gts_smoky["helper (topology-aware)"]
    assert r.phases["io"] < 0.01 * r.total_execution_time
    assert r.analytics_idle_fraction > 0.5  # paper: 67 %
    assert r.phases["cycle1"] == pytest.approx(r.phases["cycle2"])


def test_gts_helper_core_take_one_core_cost(gts_smoky):
    """Taking a core from GTS costs ~2.7 % of compute (Figure 7 case 1 vs 2)."""
    lb = gts_smoky["lower-bound"].step.sim_compute  # 4 threads
    helper = gts_smoky["helper (topology-aware)"].step
    compute_3t = helper.sim_compute / (1 + sum(helper.slowdowns.values()))
    assert compute_3t / lb == pytest.approx(1.027, abs=0.005)


def test_gts_movement_reduction_vs_staging(gts_smoky):
    """Paper: helper/inline cut inter-node movement ~90 % vs staging."""
    helper = gts_smoky["helper (topology-aware)"].metrics.inter_node_bytes
    staging = gts_smoky["staging"].metrics.inter_node_bytes
    assert helper < 0.1 * staging


def test_gts_cpu_hours_helper_cheapest(gts_smoky):
    ch = {k: r.metrics.total_cpu_hours for k, r in gts_smoky.items() if k != "lower-bound"}
    assert min(ch, key=ch.get) == "helper (topology-aware)"


# ---------------------------------------------------------------------------
# Paper shapes: S3D (Figure 9)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def s3d_titan():
    return evaluate_s3d_placements(titan(80), num_ranks=256, num_steps=40)


def test_s3d_fig9_ordering(s3d_titan):
    tet = {k: r.total_execution_time for k, r in s3d_titan.items()}
    assert tet["lower-bound"] < tet["staging (topology-aware)"]
    assert tet["staging (topology-aware)"] <= tet["staging (holistic)"]
    assert tet["staging (holistic)"] < tet["hybrid (data-aware)"]
    assert tet["hybrid (data-aware)"] < tet["inline"]


def test_s3d_gap_to_lower_bound(s3d_titan):
    """Paper: staging within 3.6 % of the lower bound on Titan."""
    lb = s3d_titan["lower-bound"].total_execution_time
    assert s3d_titan["staging (topology-aware)"].metrics.gap_to(lb) < 0.06


def test_s3d_staging_improvement_grows_with_scale():
    """Paper: 'the advantage of staging placement over inline increases
    at larger scales'."""
    m = titan(80)
    gaps = []
    for ranks in (128, 512):
        res = evaluate_s3d_placements(m, num_ranks=ranks, num_steps=20)
        inline = res["inline"].total_execution_time
        staging = res["staging (topology-aware)"].total_execution_time
        gaps.append((inline - staging) / inline)
    assert gaps[1] > gaps[0]


def test_s3d_staging_small_extra_resources(s3d_titan):
    """Paper: staging uses <1–3 % additional resources at scale."""
    lb_nodes = s3d_titan["lower-bound"].metrics.num_nodes
    st_nodes = s3d_titan["staging (topology-aware)"].metrics.num_nodes
    assert (st_nodes - lb_nodes) / lb_nodes < 0.10


# ---------------------------------------------------------------------------
# Workload builders
# ---------------------------------------------------------------------------

def test_gts_workload_helper_vs_full_threads():
    m = smoky(8)
    full, cfg_full = gts_workload(m, 16, helper_mode=False)
    helper, cfg_helper = gts_workload(m, 16, helper_mode=True)
    assert cfg_full.omp_threads == 4
    assert cfg_helper.omp_threads == 3
    assert helper.sim.io_interval > full.sim.io_interval


def test_s3d_workload_shapes():
    m = titan(8)
    wl, cfg = s3d_workload(m, 64)
    assert wl.sim.bytes_per_rank == cfg.bytes_per_rank
    assert wl.ana_output_bytes > 0
    assert wl.cycles_per_interval == 1
