"""Edge-path tests for the coupled-run simulator not covered elsewhere."""

import pytest

from repro.coupled import (
    CoupledOptions,
    CoupledWorkload,
    PlacementStyle,
    simulate_coupled,
)
from repro.coupled.scenarios import GTS_ANALYTICS_CACHE, GTS_CACHE
from repro.machine import Machine, smoky
from repro.machine.presets import SMOKY_NODE
from repro.placement.algorithms import AnalyticsProfile, SimProfile


def wl(**kw):
    sim = SimProfile(num_ranks=4, threads_per_rank=1, io_interval=5.0,
                     bytes_per_rank=4 << 20)
    defaults = dict(
        name="edge", sim=sim,
        ana=AnalyticsProfile(time_single=2.0, serial_fraction=0.01),
        num_steps=4, sim_cache=GTS_CACHE, ana_cache=GTS_ANALYTICS_CACHE,
    )
    defaults.update(kw)
    return CoupledWorkload(**defaults)


def test_offline_needs_filesystem_model():
    bare = Machine("bare", SMOKY_NODE, 4)  # no filesystem model
    with pytest.raises(RuntimeError):
        simulate_coupled(bare, wl(), style=PlacementStyle.OFFLINE, num_ana=1)


def test_staging_needs_interconnect_model():
    bare = Machine("bare", SMOKY_NODE, 4)
    with pytest.raises(RuntimeError):
        simulate_coupled(bare, wl(), style=PlacementStyle.STAGING, num_ana=1)


def test_default_allocation_used_when_num_ana_omitted():
    r = simulate_coupled(smoky(8), wl(), style=PlacementStyle.STAGING)
    assert r.num_analytics >= 1
    # Rate matching: consumption fits the interval.
    assert wl().ana.time(r.num_analytics) <= wl().sim.io_interval


def test_solo_and_inline_force_zero_analytics():
    for style in (PlacementStyle.SOLO, PlacementStyle.INLINE):
        r = simulate_coupled(smoky(8), wl(), style=style, num_ana=7)
        assert r.num_analytics == 0


def test_sync_staging_io_visible_includes_movement():
    opts = CoupledOptions(asynchronous=False)
    r = simulate_coupled(smoky(8), wl(), style=PlacementStyle.STAGING,
                         num_ana=2, options=opts)
    assert r.step.sim_io_visible == pytest.approx(r.step.movement_latency)
    assert "network" not in r.step.slowdowns


def test_unscheduled_flood_uses_flood_coefficient():
    # Big output + short interval: movement duty saturates, exposing the
    # difference between scheduled and flood interference coefficients.
    big = wl(sim=SimProfile(num_ranks=4, threads_per_rank=1, io_interval=0.5,
                            bytes_per_rank=512 << 20))
    sched = simulate_coupled(
        smoky(8), big, style=PlacementStyle.STAGING, num_ana=2,
        options=CoupledOptions(scheduler_max_concurrent=4),
    )
    flood = simulate_coupled(
        smoky(8), big, style=PlacementStyle.STAGING, num_ana=2,
        options=CoupledOptions(scheduler_max_concurrent=None),
    )
    assert flood.step.slowdowns["network"] > sched.step.slowdowns["network"]
    assert flood.step.slowdowns["network"] <= CoupledOptions().interference_cap


def test_phase_totals_sum_structure():
    r = simulate_coupled(smoky(8), wl(cycles_per_interval=3),
                         style=PlacementStyle.HELPER_CORE, num_ana=4)
    assert {"cycle1", "cycle2", "cycle3"} <= set(r.phases)
    assert r.phases["cycle1"] == pytest.approx(r.phases["cycle3"])


def test_ana_output_bytes_add_file_traffic():
    plain = simulate_coupled(smoky(8), wl(), style=PlacementStyle.HELPER_CORE, num_ana=4)
    writing = simulate_coupled(
        smoky(8), wl(ana_output_bytes=8 << 20),
        style=PlacementStyle.HELPER_CORE, num_ana=4,
    )
    assert writing.metrics.file_bytes > plain.metrics.file_bytes
    assert writing.step.ana_compute > plain.step.ana_compute
