"""Tests for the command-line tools."""

import io

import numpy as np
import pytest

from repro.adios import BoundingBox, BpWriter, block_decompose
from repro.tools.advisor import advise, main as advisor_main
from repro.tools.bpls import list_file, main as bpls_main
from repro.tools.report import generate, main as report_main


@pytest.fixture
def bp_file(tmp_path):
    path = str(tmp_path / "sample.bp")
    shape = (8, 8)
    boxes = block_decompose(shape, (2, 2))
    full = np.arange(64.0).reshape(shape)
    with BpWriter(path) as w:
        for step in range(2):
            w.begin_step()
            for rank, box in enumerate(boxes):
                w.write(rank, "temp", full[box.slices()] + step, box=box, global_shape=shape)
            w.write(0, "count", np.array([42], dtype=np.int64))
            w.end_step()
    return path


# ---------------------------------------------------------------------------
# bpls
# ---------------------------------------------------------------------------

def test_bpls_lists_variables(bp_file):
    out = io.StringIO()
    assert list_file(bp_file, out=out) == 0
    text = out.getvalue()
    assert "of variables:  2" in text
    assert "of steps:      2" in text
    assert "temp" in text and "count" in text
    assert "min=0" in text


def test_bpls_single_variable(bp_file):
    out = io.StringIO()
    assert list_file(bp_file, var="count", out=out) == 0
    text = out.getvalue()
    assert "count" in text
    assert "temp {" not in text


def test_bpls_blocks_detail(bp_file):
    out = io.StringIO()
    assert list_file(bp_file, show_blocks=True, out=out) == 0
    text = out.getvalue()
    assert "rank    0" in text
    assert "start=(0, 0)" in text


def test_bpls_dump(bp_file):
    out = io.StringIO()
    assert list_file(bp_file, var="count", dump=True, out=out) == 0
    assert "42" in out.getvalue()


def test_bpls_unknown_variable(bp_file):
    out = io.StringIO()
    assert list_file(bp_file, var="ghost", out=out) == 1


def test_bpls_bad_file(tmp_path):
    bad = tmp_path / "junk.bp"
    bad.write_bytes(b"not a bp file, sorry")
    out = io.StringIO()
    assert list_file(str(bad), out=out) == 1
    assert "bpls:" in out.getvalue()


def test_bpls_main_entry(bp_file, capsys):
    assert bpls_main([bp_file]) == 0
    assert "temp" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------

def test_report_fig4():
    out = io.StringIO()
    assert generate("fig4", "smoky", out=out) == 0
    text = out.getvalue()
    assert "Figure 4" in text and "dynamic_MBps" in text


def test_report_fig8_both_machines():
    for m in ("smoky", "titan"):
        out = io.StringIO()
        assert generate("fig8", m, out=out) == 0
        assert "llc_misses_per_kinst" in out.getvalue()


def test_report_tuning():
    out = io.StringIO()
    assert generate("tuning", "titan", out=out) == 0
    assert "untuned" in out.getvalue()


def test_report_unknown():
    out = io.StringIO()
    assert generate("fig99", "smoky", out=out) == 1


def test_report_main_entry(capsys):
    assert report_main(["fig4"]) == 0
    assert "Figure 4" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# advisor
# ---------------------------------------------------------------------------

def test_advisor_gts_like_recommends_helper():
    out = io.StringIO()
    rc = advise(
        "smoky", sim_ranks=16, threads=3, io_interval=6.0,
        bytes_per_rank=110 << 20, ana_time=20.0, ana_serial=0.01,
        halo_bytes=2 << 20, out=out,
    )
    assert rc == 0
    text = out.getvalue()
    assert "resource allocation" in text
    assert "topology-aware" in text
    assert "helper-core" in text


def test_advisor_s3d_like_recommends_staging():
    out = io.StringIO()
    rc = advise(
        "titan", sim_ranks=64, threads=1, io_interval=20.0,
        bytes_per_rank=1_700_000, ana_time=10.0, ana_serial=0.1,
        halo_bytes=400 << 20, out=out,
    )
    assert rc == 0
    assert "staging" in out.getvalue()


def test_advisor_async_allocation():
    out_sync, out_async = io.StringIO(), io.StringIO()
    kw = dict(sim_ranks=16, threads=1, io_interval=5.0,
              bytes_per_rank=200 << 20, ana_time=30.0, ana_serial=0.01)
    advise("smoky", **kw, out=out_sync)
    advise("smoky", **kw, asynchronous=True, out=out_async)
    assert "sync (rate matching)" in out_sync.getvalue()
    assert "async" in out_async.getvalue()


def test_advisor_main_entry(capsys):
    rc = advisor_main([
        "--machine", "smoky", "--sim-ranks", "8", "--io-interval", "5",
        "--bytes-per-rank", "1000000", "--ana-time", "4",
    ])
    assert rc == 0
    assert "topology-aware" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# trace --flight
# ---------------------------------------------------------------------------

def _flight_dump(tmp_path, with_metrics=True):
    from repro.core.monitoring import PerfMonitor
    from repro.obs.events import EV_RETRY, EV_STEP_BEGIN, EV_STEP_LOST
    from repro.obs.recorder import FlightRecorder

    rec = FlightRecorder()
    rec.record(EV_STEP_BEGIN, stream="s", step=4)
    rec.record(EV_RETRY, stream="s", step=4, attempt=1)
    rec.record(EV_STEP_LOST, stream="s", step=4, error="boom")
    mon = None
    if with_metrics:
        mon = PerfMonitor()
        mon.metrics.counter("dataplane.drain.steps_lost").inc(1)
    path = str(tmp_path / "flight.json")
    rec.dump(path, reason="step 4 lost", monitor=mon)
    return path


def test_trace_flight_renders_timeline_and_metrics(tmp_path):
    from repro.tools.trace import main as trace_main

    path = _flight_dump(tmp_path)
    out = io.StringIO()
    assert trace_main(["--flight", path], out=out) == 0
    text = out.getvalue()
    assert "step 4 lost" in text
    assert "step.begin" in text
    assert "drain.retry" in text
    assert "step.lost" in text
    assert "dataplane.drain.steps_lost" in text


def test_trace_flight_rejects_plain_json(tmp_path):
    from repro.tools.trace import main as trace_main

    bogus = tmp_path / "x.json"
    bogus.write_text('{"not": "a flight dump"}')
    out = io.StringIO()
    assert trace_main(["--flight", str(bogus)], out=out) == 2
    assert "cannot read" in out.getvalue()


# ---------------------------------------------------------------------------
# monitor
# ---------------------------------------------------------------------------

def test_monitor_requires_exactly_one_source():
    from repro.tools.monitor import main as monitor_main

    with pytest.raises(SystemExit):
        monitor_main([])
    with pytest.raises(SystemExit):
        monitor_main(["--demo", "--url", "http://127.0.0.1:1"])


def test_monitor_unreachable_url_exits_2():
    from repro.tools.monitor import main as monitor_main

    out = io.StringIO()
    # Port 1 on loopback: nothing listens there.
    assert monitor_main(["--url", "http://127.0.0.1:1"], out=out) == 2
    assert "cannot scrape" in out.getvalue()


def test_monitor_demo_scrapes_table_and_validates_exposition():
    from repro.core import stream_registry
    from repro.tools.monitor import main as monitor_main

    stream_registry.reset()
    out = io.StringIO()
    try:
        rc = monitor_main(["--demo", "--demo-steps", "3", "--check-expo"],
                          out=out)
    finally:
        stream_registry.reset()
    text = out.getvalue()
    assert rc == 0, text
    assert "stream" in text and "health" in text   # table header
    assert "monitor.demo" in text                  # the demo stream's row
    assert "exposition OK" in text


def test_monitor_demo_json_output():
    import json

    from repro.core import stream_registry
    from repro.tools.monitor import main as monitor_main

    stream_registry.reset()
    out = io.StringIO()
    try:
        rc = monitor_main(["--demo", "--demo-steps", "2", "--json"], out=out)
    finally:
        stream_registry.reset()
    text = out.getvalue()
    assert rc == 0, text
    doc = json.loads(text[text.index("{"):])
    (row,) = doc["streams"]
    assert row["state"] == "closed"  # the demo writer closes before scraping
    assert row["stream"].startswith("monitor.demo")


# ---------------------------------------------------------------------------
# flexlint CLI: SARIF, baseline, cache, jobs
# ---------------------------------------------------------------------------

import json as _json
import os as _os
import textwrap as _textwrap

from repro.tools import flexlint as _flexlint_cli


@pytest.fixture
def lint_tree(tmp_path):
    """A tiny tree with one active finding (an FXL012 lease leak)."""
    pkg = tmp_path / "repro" / "transport"
    pkg.mkdir(parents=True)
    (pkg / "leaky.py").write_text(_textwrap.dedent("""
        def f(pool):
            lease = pool.lease(100)
            fill(lease.data)
            lease.release()
    """), encoding="utf-8")
    (pkg / "clean.py").write_text(_textwrap.dedent("""
        def g(pool):
            lease = pool.lease(100)
            try:
                fill(lease.data)
            finally:
                lease.release()
    """), encoding="utf-8")
    return tmp_path


def _run(args, cwd):
    out = io.StringIO()
    old = _os.getcwd()
    _os.chdir(cwd)
    try:
        code = _flexlint_cli.main(args, out=out)
    finally:
        _os.chdir(old)
    return code, out.getvalue()


def test_flexlint_sarif_output(lint_tree, tmp_path):
    sarif_path = tmp_path / "report.sarif"
    code, _text = _run(
        [str(lint_tree), "--no-cache", "--sarif", str(sarif_path)], lint_tree
    )
    assert code == 1
    log = _json.loads(sarif_path.read_text(encoding="utf-8"))
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "FlexLint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "FXL012" in rule_ids
    results = run["results"]
    assert any(r["ruleId"] == "FXL012" for r in results)
    loc = results[0]["locations"][0]["physicalLocation"]
    assert loc["region"]["startLine"] >= 1


def test_flexlint_update_baseline_then_clean(lint_tree):
    code, _ = _run(
        [str(lint_tree), "--no-cache", "--update-baseline"], lint_tree
    )
    assert code == 0  # baseline update always exits 0
    baseline = lint_tree / _flexlint_cli.DEFAULT_BASELINE
    data = _json.loads(baseline.read_text(encoding="utf-8"))
    assert data["entries"] and all(
        e["reason"] for e in data["entries"]
    )  # every suppression carries a reason
    # With the baseline in place the same tree is green...
    code, text = _run([str(lint_tree), "--no-cache"], lint_tree)
    assert code == 0
    assert "baselined" in text
    # ...but a NEW finding still fails the run.
    extra = lint_tree / "repro" / "transport" / "new_leak.py"
    extra.write_text(
        "def h(pool):\n    lease = pool.lease(1)\n    fill(lease.data)\n",
        encoding="utf-8",
    )
    code, _ = _run([str(lint_tree), "--no-cache"], lint_tree)
    assert code == 1


def test_flexlint_cache_hits_on_second_run(lint_tree):
    cache = lint_tree / "cache.json"
    stats1 = lint_tree / "stats1.json"
    stats2 = lint_tree / "stats2.json"
    code1, _ = _run(
        [str(lint_tree), "--cache", str(cache), "--stats-json", str(stats1)],
        lint_tree,
    )
    code2, _ = _run(
        [str(lint_tree), "--cache", str(cache), "--stats-json", str(stats2)],
        lint_tree,
    )
    assert code1 == code2 == 1  # findings identical from cached entries
    s1 = _json.loads(stats1.read_text(encoding="utf-8"))
    s2 = _json.loads(stats2.read_text(encoding="utf-8"))
    assert s1["cache_hits"] == 0 and s1["cache_misses"] == s1["files"]
    assert s2["cache_misses"] == 0 and s2["cache_hits"] == s2["files"]


def test_flexlint_cache_invalidated_by_edit(lint_tree):
    cache = lint_tree / "cache.json"
    _run([str(lint_tree), "--cache", str(cache)], lint_tree)
    edited = lint_tree / "repro" / "transport" / "clean.py"
    edited.write_text(edited.read_text(encoding="utf-8") + "\nx = 1\n",
                      encoding="utf-8")
    stats = lint_tree / "stats.json"
    _run(
        [str(lint_tree), "--cache", str(cache), "--stats-json", str(stats)],
        lint_tree,
    )
    s = _json.loads(stats.read_text(encoding="utf-8"))
    assert s["cache_misses"] == 1  # only the edited file re-analyzed


def test_flexlint_no_cache_and_jobs_flags(lint_tree):
    stats = lint_tree / "stats.json"
    code, _ = _run(
        [str(lint_tree), "--no-cache", "--jobs", "2",
         "--stats-json", str(stats)],
        lint_tree,
    )
    assert code == 1
    s = _json.loads(stats.read_text(encoding="utf-8"))
    assert s["jobs"] == 2
    assert s["cache_hits"] == 0
    assert not (lint_tree / _flexlint_cli.DEFAULT_CACHE).exists()


def test_flexlint_json_output_keeps_rule_key(lint_tree):
    code, text = _run([str(lint_tree), "--no-cache", "--json"], lint_tree)
    assert code == 1
    findings = _json.loads(text)
    assert findings and findings[0]["rule"] == "FXL012"
