"""Chaos-harness and fault-model tests.

Drives :func:`repro.tools.chaos.run_chaos` — the seeded replay of
GTS/S3D coupled pipelines through the live data plane — across the
fault regimes (recoverable, lossy, transactional, degrading) and checks
the resiliency invariants hold; plus unit coverage for the fault
injector, the fault-spec parser, the shared timeout hierarchy, and the
wedged-drainer escape hatch.
"""

import threading

import numpy as np
import pytest

from repro.adios import Adios, RankContext, StepStatus
from repro.core import StepState, stream_registry
from repro.obs.analysis import fault_summary
from repro.tools import chaos
from repro.tools.chaos import run_chaos
from repro.transport.faults import (
    FaultKind,
    TransportFault,
    TransportTimeout,
    injector_from_env,
    parse_fault_spec,
)
from repro.transport.shm import QueueEmpty, QueueFull


@pytest.fixture(autouse=True)
def fresh_state():
    stream_registry.reset()
    yield
    stream_registry.reset()


# ---------------------------------------------------------------------------
# Chaos invariants across regimes
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scenario", ["gts", "s3d"])
def test_chaos_recoverable_regime_commits_everything(scenario):
    """At 10% fault rate with retries, every step commits byte-identical."""
    report = run_chaos(scenario, seed=7, rate=0.1, steps=10)
    assert report.ok, report.invariant_violations
    assert report.committed == list(range(10))
    assert report.lost == []
    assert report.faults_injected > 0          # the run was not fault-free
    assert report.recovered > 0                # ...retries did the saving
    assert report.retries >= report.recovered


def test_chaos_lossy_regime_agrees_on_both_sides():
    """With retries exhausted, losses are typed and symmetric."""
    report = run_chaos("gts", seed=1, rate=0.45, steps=12, max_retries=1)
    assert report.ok, report.invariant_violations
    assert report.lost                          # this regime must lose steps
    assert report.writer_failures == len(report.lost)
    assert sorted(report.committed + report.lost) == list(range(12))


def test_chaos_transactional_regime():
    report = run_chaos(
        "gts", seed=7, rate=0.45, steps=12, max_retries=1, transactional=True
    )
    assert report.ok, report.invariant_violations
    assert report.lost
    assert report.writer_failures == len(report.lost)


def test_chaos_degradation_ladder_engages():
    """rdma under sustained fault degrades (rdma -> shm -> buffered)."""
    report = run_chaos(
        "s3d", seed=3, rate=0.5, steps=12, transport="rdma",
        max_retries=1, degrade_after=2,
    )
    assert report.ok, report.invariant_violations
    assert report.degradations >= 1


def test_chaos_same_seed_same_outcome():
    a = run_chaos("gts", seed=13, rate=0.1, steps=10)
    b = run_chaos("gts", seed=13, rate=0.1, steps=10)
    assert a.committed == b.committed
    assert a.lost == b.lost
    assert a.faults_injected == b.faults_injected


def test_chaos_rejects_unknown_scenario():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_chaos("xgc")


def test_chaos_report_as_dict_round_trips():
    report = run_chaos("gts", seed=7, rate=0.0, steps=3)
    d = report.as_dict()
    assert d["ok"] is True
    assert d["committed"] == [0, 1, 2]
    assert d["faults_injected"] == 0


def test_chaos_trace_out_writes_perfetto(tmp_path):
    out = tmp_path / "chaos.perfetto.json"
    report = run_chaos("gts", seed=7, rate=0.1, steps=5, trace_out=str(out))
    assert report.ok
    assert out.exists() and out.stat().st_size > 0


def test_chaos_lost_step_always_yields_flight_dump(tmp_path):
    """Any LOST step must leave a flight artifact containing that step's
    retry events — the recorder is the black box that explains the loss."""
    from repro.obs.events import EV_RETRY, EV_STEP_LOST
    from repro.obs.recorder import load_dump

    report = run_chaos(
        "gts", seed=1, rate=0.45, steps=12, max_retries=1,
        flight_dir=str(tmp_path),
    )
    assert report.ok, report.invariant_violations
    assert report.lost
    assert report.flight_dumps
    assert report.flight_events > 0
    docs = [load_dump(p) for p in report.flight_dumps]
    for lost_step in report.lost:
        covering = [
            doc for doc in docs
            if any(
                e["code"] == EV_STEP_LOST and e.get("step") == lost_step
                for e in doc["events"]
            )
        ]
        assert covering, f"no flight dump contains lost step {lost_step}"
        # max_retries=1 means the loss was preceded by a retry attempt,
        # and the dump's window must show it.
        assert any(
            e["code"] == EV_RETRY and e.get("step") == lost_step
            for e in covering[0]["events"]
        ), f"dump for lost step {lost_step} lacks its retry events"


def test_chaos_lossy_run_without_dump_artifact_fails_invariant(tmp_path):
    """The observability invariant itself: lost steps + no artifact = fail.
    Exhaust the per-process auto-dump cap first, so the lossy run below
    cannot write one."""
    from repro.obs import recorder

    report = run_chaos(
        "gts", seed=1, rate=0.45, steps=12, max_retries=1,
        flight_dir=str(tmp_path / "missing-parent-dir-is-fine"),
    )
    assert report.ok  # sanity: normally the dump lands and the run is OK

    # Monkey-path-free cap exhaustion: dump_on_fault stops writing after
    # MAX_AUTO_DUMPS, but run_chaos resets the recorder per run — so
    # instead aim the dump at an unwritable path.
    unwritable = tmp_path / "not-a-dir"
    unwritable.write_text("file, not a directory")
    report2 = run_chaos(
        "gts", seed=1, rate=0.45, steps=12, max_retries=1,
        flight_dir=str(unwritable),
    )
    assert not report2.ok
    assert any("flight" in v for v in report2.invariant_violations)
    recorder.set_flight_dir(None)


def test_chaos_cli_smoke(capsys):
    rc = chaos.main(["--scenario", "all", "--seed", "7", "--steps", "6"])
    out = capsys.readouterr().out
    assert rc == 0
    assert out.count("[OK]") == 2


def test_chaos_cli_json(capsys):
    import json

    rc = chaos.main(["--scenario", "gts", "--seed", "7", "--steps", "4",
                     "--json"])
    assert rc == 0
    reports = json.loads(capsys.readouterr().out)
    assert len(reports) == 1 and reports[0]["ok"] is True


# ---------------------------------------------------------------------------
# Fault injector + spec parsing
# ---------------------------------------------------------------------------

def test_injector_same_seed_same_schedule():
    a = parse_fault_spec("rate=0.3,seed=5")
    b = parse_fault_spec("rate=0.3,seed=5")
    assert [a.next_fault() for _ in range(50)] == [
        b.next_fault() for _ in range(50)
    ]


def test_injector_fail_ops_are_exact():
    inj = parse_fault_spec("ops=2|4,kinds=torn")
    hits = [inj.next_fault() for _ in range(5)]
    assert hits == [None, FaultKind.TORN_SEND, None, FaultKind.TORN_SEND, None]


def test_parse_fault_spec_validation():
    assert parse_fault_spec(None) is None
    assert parse_fault_spec("   ") is None
    with pytest.raises(ValueError, match="unknown fault kind"):
        parse_fault_spec("kinds=gremlin")
    with pytest.raises(ValueError, match="unknown fault spec key"):
        parse_fault_spec("chance=0.5")
    with pytest.raises(ValueError, match="key=value"):
        parse_fault_spec("rate")


def test_injector_from_env():
    inj = injector_from_env({"FLEXIO_FAULTS": "rate=0.25,seed=9"})
    assert inj is not None and inj.rate == 0.25 and inj.seed == 9
    assert injector_from_env({}) is None


def test_timeout_hierarchy_is_unified():
    """SHM queue timeouts are TransportTimeouts are TimeoutErrors."""
    for exc_type in (QueueFull, QueueEmpty):
        assert issubclass(exc_type, TransportTimeout)
        assert issubclass(exc_type, TransportFault)
        assert issubclass(exc_type, TimeoutError)
    assert TransportTimeout.kind is FaultKind.SEND_TIMEOUT


# ---------------------------------------------------------------------------
# Fault summary over a chaos trace
# ---------------------------------------------------------------------------

def test_fault_summary_reflects_chaos_trace():
    name = "chaos.summary.stream"
    adios = Adios.from_xml(
        """
        <adios-config>
          <adios-group name="g"><var name="x" type="float64" dimensions="4"/></adios-group>
          <method group="g" method="FLEXPATH">
            trace=true;faults=rate=0.4,seed=2,kinds=timeout
          </method>
        </adios-config>
        """
    )
    h = adios.open_write("g", name, RankContext(0, 1))
    for step in range(8):
        h.write("x", np.full(4, float(step)))
        h.end_step()
    h.close()
    state = stream_registry._states[name]
    summary = fault_summary([r.as_dict() for r in state.monitor.trace])
    assert summary.any()
    assert summary.total_injected == sum(summary.injected.values())
    assert all(key.startswith("shm.") for key in summary.injected)
    assert summary.drain_faults >= summary.total_injected
    lines = summary.lines()
    assert any("injected" in line for line in lines)


# ---------------------------------------------------------------------------
# Wedged drainer escape hatch
# ---------------------------------------------------------------------------

def test_wedged_drainer_stop_times_out_but_does_not_hang():
    name = "chaos.wedged.stream"
    adios = Adios.from_xml(
        """
        <adios-config>
          <adios-group name="g"><var name="x" type="float64" dimensions="4"/></adios-group>
          <method group="g" method="FLEXPATH"/>
        </adios-config>
        """
    )
    h = adios.open_write("g", name, RankContext(0, 1))
    state = stream_registry._states[name]
    release = threading.Event()
    entered = threading.Event()
    real_drain = state._drain_one

    def stuck_drain(step, rank_parts):
        entered.set()
        release.wait()            # simulate a drain wedged in the transport
        real_drain(step, rank_parts)

    state._drain_one = stuck_drain
    h.write("x", np.zeros(4))
    h.end_step()                   # async: submits to the drainer and returns
    assert entered.wait(timeout=5.0)

    drainer = state._drainer
    assert drainer.stop(timeout=0.1) is False
    assert drainer.wedged is True
    assert (
        state.monitor.metrics.counter("dataplane.drain.wedged").value == 1
    )
    assert drainer.stop(timeout=0.1) is False   # idempotent, still wedged
    assert (
        state.monitor.metrics.counter("dataplane.drain.wedged").value == 1
    )

    release.set()                 # un-wedge so the daemon thread finishes
    drainer._thread.join(timeout=5.0)
    assert state._published and state._published[0].status is StepState.COMMITTED
    state._drain_one = real_drain
    h.close()


def test_shutdown_pipeline_is_idempotent():
    name = "chaos.shutdown.stream"
    adios = Adios.from_xml(
        """
        <adios-config>
          <adios-group name="g"><var name="x" type="float64" dimensions="4"/></adios-group>
          <method group="g" method="FLEXPATH"/>
        </adios-config>
        """
    )
    h = adios.open_write("g", name, RankContext(0, 1))
    h.write("x", np.ones(4))
    h.end_step()
    state = stream_registry._states[name]
    state.shutdown_pipeline()
    state.shutdown_pipeline()     # double shutdown must be a no-op
    h.close()                     # close after shutdown must not raise
    reader = adios.open_read("g", name, RankContext(0, 1))
    assert reader.begin_step() is StepStatus.OK
    np.testing.assert_array_equal(reader.read_block("x", 0), np.ones(4))
