"""Tests for the RDMA transport: registration cache, NNTI, scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import GeminiInterconnect, InfinibandInterconnect
from repro.transport import (
    NntiFabric,
    RdmaChannel,
    RegistrationCache,
    TransferScheduler,
)
from repro.transport.rdma import TransferRequest
from repro.util import KiB, MiB


# ---------------------------------------------------------------------------
# Registration cache
# ---------------------------------------------------------------------------

def test_regcache_cold_acquire_pays_setup():
    cache = RegistrationCache(GeminiInterconnect())
    buf, cost = cache.acquire(1 * MiB)
    assert cost > 0
    assert buf.size >= 1 * MiB
    assert cache.stats.misses == 1


def test_regcache_hit_is_free():
    cache = RegistrationCache(GeminiInterconnect())
    buf, _ = cache.acquire(1 * MiB)
    cache.release(buf)
    buf2, cost = cache.acquire(1 * MiB)
    assert cost == 0.0
    assert buf2 is buf
    assert cache.stats.hits == 1
    assert cache.stats.setup_time_saved > 0


def test_regcache_bucket_rounding():
    cache = RegistrationCache(GeminiInterconnect())
    buf, _ = cache.acquire(5000)
    assert buf.size == 8192
    cache.release(buf)
    # A 6000-byte request reuses the same 8 KiB buffer.
    buf2, cost = cache.acquire(6000)
    assert buf2 is buf and cost == 0.0


def test_regcache_reclamation():
    ic = GeminiInterconnect()
    cache = RegistrationCache(ic, max_bytes=64 * KiB)
    bufs = [cache.acquire(32 * KiB)[0] for _ in range(2)]
    for b in bufs:
        cache.release(b)
    # A larger request forces a fresh registration past the threshold,
    # reclaiming (deregistering) the idle 32 KiB buffers.
    cache.acquire(128 * KiB)
    assert cache.stats.reclaimed >= 1
    assert cache.total_bytes <= 64 * KiB + 128 * KiB


def test_regcache_double_release_rejected():
    cache = RegistrationCache(GeminiInterconnect())
    buf, _ = cache.acquire(100)
    cache.release(buf)
    with pytest.raises(ValueError):
        cache.release(buf)


def test_regcache_validation():
    with pytest.raises(ValueError):
        RegistrationCache(GeminiInterconnect(), max_bytes=0)
    cache = RegistrationCache(GeminiInterconnect())
    with pytest.raises(ValueError):
        cache.acquire(0)


# ---------------------------------------------------------------------------
# NNTI fabric / connections
# ---------------------------------------------------------------------------

def make_pair(ic=None):
    fabric = NntiFabric(ic or GeminiInterconnect())
    a = fabric.endpoint(0, "sim-0")
    b = fabric.endpoint(5, "viz-0")
    return fabric, a, b, fabric.connect(a, b)


def test_put_small_delivers_to_mailbox():
    _, a, b, conn = make_pair()
    t = conn.put_small(a, "hs", b"handshake")
    assert t > 0
    assert b.poll() == ("hs", b"handshake")
    assert b.poll() is None


def test_put_small_both_directions():
    _, a, b, conn = make_pair()
    conn.put_small(a, "x", b"to-b")
    conn.put_small(b, "y", b"to-a")
    assert b.poll() == ("x", b"to-b")
    assert a.poll() == ("y", b"to-a")


def test_get_bulk_moves_payload_and_charges_time():
    _, a, b, conn = make_pair()
    payload = b"p" * (4 * MiB)
    out, t = conn.get_bulk(b, payload)
    assert out == payload
    # Steady state after warm-up is faster (registration cache hits).
    out2, t2 = conn.get_bulk(b, payload)
    assert out2 == payload
    assert t2 < t


def test_get_bulk_same_node_loopback():
    fabric = NntiFabric(GeminiInterconnect())
    a = fabric.endpoint(3, "a")
    b = fabric.endpoint(3, "b")
    conn = fabric.connect(a, b)
    _, t_local = conn.get_bulk(b, b"x" * MiB)
    c = fabric.endpoint(9, "c")
    conn2 = fabric.connect(a, c)
    _, t_remote_cold = conn2.get_bulk(c, b"x" * MiB)
    _, t_remote = conn2.get_bulk(c, b"x" * MiB)  # warm
    assert t_local < t_remote_cold
    assert t_local < t_remote or t_local < t_remote_cold


def test_endpoint_name_collision_rejected():
    fabric = NntiFabric(GeminiInterconnect())
    fabric.endpoint(0, "x")
    with pytest.raises(ValueError):
        fabric.endpoint(1, "x")


def test_connection_rejects_foreign_endpoint():
    fabric, a, b, conn = make_pair()
    c = fabric.endpoint(7, "other")
    with pytest.raises(ValueError):
        conn.put_small(c, "t", b"")


# ---------------------------------------------------------------------------
# Transfer scheduler
# ---------------------------------------------------------------------------

def test_scheduler_single_flow_matches_wire_time():
    ic = GeminiInterconnect()
    sched = TransferScheduler(ic, max_concurrent=4)
    reqs = [TransferRequest(sender=0, nbytes=16 * MiB)]
    out = sched.schedule(reqs)
    assert len(out) == 1
    expected = ic.params.latency + 16 * MiB / min(ic.params.peak_bw, ic.injection_bw)
    assert out[0].finish == pytest.approx(expected, rel=0.01)


def test_scheduler_conserves_work():
    """Total bytes / ejection bandwidth lower-bounds the makespan."""
    ic = GeminiInterconnect()
    sched = TransferScheduler(ic, max_concurrent=4)
    reqs = [TransferRequest(i, 8 * MiB) for i in range(16)]
    span = sched.makespan(reqs)
    assert span >= (16 * 8 * MiB) / ic.injection_bw


def test_scheduler_concurrency_bound_respected():
    ic = GeminiInterconnect()
    sched = TransferScheduler(ic, max_concurrent=2)
    reqs = [TransferRequest(i, 4 * MiB) for i in range(8)]
    out = sched.schedule(reqs)
    # At any finish instant, count overlapping transfers.
    for t in out:
        overlapping = sum(
            1 for o in out if o.start < t.finish and o.finish > t.start
        )
        assert overlapping <= 2 + 1  # admission at completion instants may touch


def test_scheduler_bounded_concurrency_no_slower_than_flood():
    """With one shared ejection link, limiting concurrency does not hurt
    the makespan (it helps interference; see coupled-run model)."""
    ic = GeminiInterconnect()
    reqs = [TransferRequest(i, 8 * MiB) for i in range(12)]
    flood = TransferScheduler(ic, max_concurrent=12).makespan(reqs)
    limited = TransferScheduler(ic, max_concurrent=3).makespan(reqs)
    assert limited <= flood * 1.05


def test_scheduler_empty_and_validation():
    ic = GeminiInterconnect()
    sched = TransferScheduler(ic)
    assert sched.makespan([]) == 0.0
    with pytest.raises(ValueError):
        TransferScheduler(ic, max_concurrent=0)
    with pytest.raises(ValueError):
        sched.schedule([TransferRequest(0, -5)])


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=64 * MiB), min_size=1, max_size=20),
    k=st.integers(min_value=1, max_value=8),
)
def test_scheduler_property_all_finish_and_ordered(sizes, k):
    ic = InfinibandInterconnect()
    sched = TransferScheduler(ic, max_concurrent=k)
    reqs = [TransferRequest(i, s) for i, s in enumerate(sizes)]
    out = sched.schedule(reqs)
    assert len(out) == len(reqs)
    for t in out:
        assert t.finish > t.start >= 0.0
    # Work conservation within the shared link.
    assert max(t.finish for t in out) >= sum(sizes) / ic.injection_bw


# ---------------------------------------------------------------------------
# Channel
# ---------------------------------------------------------------------------

def test_rdma_channel_small_and_large_paths():
    _, a, b, conn = make_pair()
    ch = RdmaChannel(conn, sender=a)
    t_small = ch.send(b"tiny")
    t_large = ch.send(b"X" * (2 * MiB))
    assert ch.small_sends == 1 and ch.large_sends == 1
    assert t_large > t_small
    assert ch.recv() == b"tiny"
    assert ch.recv() == b"X" * (2 * MiB)
    assert ch.recv() is None


def test_rdma_channel_contention_slows_bulk():
    _, a, b, conn = make_pair()
    ch = RdmaChannel(conn, sender=a)
    ch.send(b"w" * MiB)  # warm the caches
    t1 = ch.send(b"y" * (8 * MiB), concurrent_flows=1)
    t8 = ch.send(b"y" * (8 * MiB), concurrent_flows=8)
    assert t8 > t1
