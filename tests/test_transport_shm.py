"""Tests for the shared-memory transport: SPSC queue, buffer pool, channel."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.presets import SMOKY_NODE, TITAN_NODE
from repro.transport import (
    QueueClosed,
    QueueFull,
    ShmBufferPool,
    ShmChannel,
    ShmCostModel,
    SPSCQueue,
)
from repro.util import CACHE_LINE


# ---------------------------------------------------------------------------
# SPSC queue
# ---------------------------------------------------------------------------

def test_queue_entries_cache_line_aligned():
    q = SPSCQueue(slots=8, payload_size=100)
    assert q.entry_size % CACHE_LINE == 0
    assert q.entry_size >= 100 + 8


def test_queue_fifo_order():
    q = SPSCQueue(slots=4)
    for i in range(3):
        assert q.try_enqueue(f"msg{i}".encode())
    assert [q.try_dequeue() for _ in range(3)] == [b"msg0", b"msg1", b"msg2"]


def test_queue_full_and_empty_conditions():
    q = SPSCQueue(slots=2)
    assert q.try_enqueue(b"a")
    assert q.try_enqueue(b"b")
    assert not q.try_enqueue(b"c")  # full: next entry still FULL
    assert q.try_dequeue() == b"a"
    assert q.try_enqueue(b"c")      # slot freed
    assert q.try_dequeue() == b"b"
    assert q.try_dequeue() == b"c"
    assert q.try_dequeue() is None  # empty


def test_queue_wraps_many_times():
    q = SPSCQueue(slots=3)
    for i in range(100):
        assert q.try_enqueue(str(i).encode())
        assert q.try_dequeue() == str(i).encode()


def test_queue_oversized_message_rejected():
    q = SPSCQueue(slots=4, payload_size=16)
    with pytest.raises(ValueError):
        q.try_enqueue(b"x" * 17)


def test_queue_close_signals_end_of_stream():
    q = SPSCQueue(slots=4)
    q.try_enqueue(b"last")
    q.close()
    assert q.try_dequeue() == b"last"  # drained first
    with pytest.raises(QueueClosed):
        q.try_dequeue()
    with pytest.raises(QueueClosed):
        q.try_enqueue(b"late")


def test_queue_blocking_enqueue_times_out():
    q = SPSCQueue(slots=2)
    q.try_enqueue(b"a")
    q.try_enqueue(b"b")
    with pytest.raises(QueueFull):
        q.enqueue(b"c", timeout=0.01)


def test_queue_blocking_dequeue_times_out():
    q = SPSCQueue(slots=2)
    with pytest.raises(TimeoutError):
        q.dequeue(timeout=0.01)


def test_queue_stats_counters():
    q = SPSCQueue(slots=2)
    q.try_enqueue(b"ab")
    q.try_enqueue(b"cd")
    q.try_enqueue(b"ef")  # producer spin
    q.try_dequeue()
    assert q.stats.enqueued == 2
    assert q.stats.bytes_enqueued == 4
    assert q.stats.producer_spins == 1
    assert q.stats.dequeued == 1


def test_queue_validation():
    with pytest.raises(ValueError):
        SPSCQueue(slots=1)
    with pytest.raises(ValueError):
        SPSCQueue(payload_size=0)


def test_queue_cross_thread_stress():
    """Real producer/consumer threads move 2000 messages without loss,
    duplication, or reordering — the lock-free protocol at work."""
    q = SPSCQueue(slots=8, payload_size=64)
    n = 2000
    received = []

    def producer():
        for i in range(n):
            q.enqueue(f"{i:08d}".encode(), timeout=10)
        q.close()

    def consumer():
        while True:
            try:
                received.append(q.dequeue(timeout=10))
            except QueueClosed:
                return

    t1 = threading.Thread(target=producer)
    t2 = threading.Thread(target=consumer)
    t1.start(); t2.start()
    t1.join(20); t2.join(20)
    assert received == [f"{i:08d}".encode() for i in range(n)]


@settings(max_examples=30, deadline=None)
@given(msgs=st.lists(st.binary(min_size=0, max_size=64), max_size=50))
def test_queue_property_fifo(msgs):
    """Any interleaving of enqueue-then-dequeue preserves exact content."""
    q = SPSCQueue(slots=4, payload_size=64)
    out = []
    pending = list(msgs)
    while pending or len(q):
        while pending and q.try_enqueue(pending[0]):
            pending.pop(0)
        item = q.try_dequeue()
        if item is not None:
            out.append(item)
    assert out == list(msgs)


# ---------------------------------------------------------------------------
# Buffer pool
# ---------------------------------------------------------------------------

def test_pool_reuses_buffers():
    pool = ShmBufferPool()
    b1 = pool.acquire(1000)
    pool.release(b1.buffer_id)
    b2 = pool.acquire(900)  # same power-of-two bucket
    assert b2.buffer_id == b1.buffer_id
    assert pool.stats.allocations == 1
    assert pool.stats.reuses == 1


def test_pool_closest_size_bucketing():
    pool = ShmBufferPool()
    assert pool.acquire(1).size == 1
    assert pool.acquire(1025).size == 2048
    assert pool.acquire(4096).size == 4096


def test_pool_release_validation():
    pool = ShmBufferPool()
    b = pool.acquire(100)
    pool.release(b.buffer_id)
    with pytest.raises(ValueError):
        pool.release(b.buffer_id)
    with pytest.raises(KeyError):
        pool.release(9999)


def test_pool_reclamation_threshold():
    pool = ShmBufferPool(max_bytes=4096)
    bufs = [pool.acquire(2048) for _ in range(2)]
    for b in bufs:
        pool.release(b.buffer_id)
    # A differently-sized request forces a fresh allocation, pushing the
    # pool over its threshold and reclaiming the idle 2 KiB buffers.
    pool.acquire(8192)
    assert pool.stats.reclaimed >= 1
    assert pool.total_bytes <= 4096 + 8192


def test_pool_validation():
    with pytest.raises(ValueError):
        ShmBufferPool(max_bytes=0)
    pool = ShmBufferPool()
    with pytest.raises(ValueError):
        pool.acquire(0)


# ---------------------------------------------------------------------------
# Channel
# ---------------------------------------------------------------------------

def test_channel_inline_small_messages():
    ch = ShmChannel()
    ch.send(b"hello")
    assert ch.recv() == b"hello"
    assert ch.inline_sends == 1
    assert ch.large_sends == 0


def test_channel_pool_path_for_large_messages():
    ch = ShmChannel()
    big = bytes(range(256)) * 64  # 16 KiB
    ch.send(big)
    wb = ch.recv()
    assert wb == big
    assert ch.large_sends == 1
    # One staging copy into the leased pool buffer; the consumer reads a
    # view of that buffer (the legacy path copied out a second time).
    assert ch.copies_per_large_message == 1
    assert wb.copies == 1
    assert ch.pool.stats.allocations == 1
    # The lease pins the buffer until the consumer releases the span.
    assert ch.pool.outstanding_leases == 1
    wb.release()
    assert ch.pool.outstanding_leases == 0
    ch.send(big)
    wb2 = ch.recv()
    assert wb2 == big
    wb2.release()
    assert ch.pool.stats.reuses == 1


def test_channel_numpy_payload():
    ch = ShmChannel()
    arr = np.arange(5000, dtype=np.float64)
    ch.send(arr)
    wb = ch.recv()
    out = wb.as_array(np.float64)
    np.testing.assert_array_equal(out, arr)
    wb.release()


def test_channel_xpmem_single_copy_cross_thread():
    """XPMEM path is synchronous: producer blocks until consumer detaches,
    so it must be exercised across threads."""
    ch = ShmChannel(use_xpmem=True)
    big = b"z" * 10000
    out = []
    copies = []

    def consumer():
        wb = ch.recv(timeout=10)
        copies.append(wb.copies)
        out.append(wb.tobytes())  # materialize before the detach
        wb.release()  # detach: unblocks the waiting producer

    t = threading.Thread(target=consumer)
    t.start()
    ch.send(big, timeout=10)
    t.join(10)
    assert out == [big]
    assert copies == [0]  # mapped pages: zero copies end to end
    assert ch.copies_per_large_message == 0
    assert ch.pool.stats.allocations == 0  # no pool buffer involved


def test_channel_end_of_stream():
    ch = ShmChannel()
    ch.send(b"bye")
    ch.close()
    assert ch.recv() == b"bye"
    with pytest.raises(QueueClosed):
        ch.recv(timeout=0.1)


def test_channel_many_messages_mixed_sizes():
    ch = ShmChannel()
    msgs = [bytes([i % 251]) * (10 if i % 3 else 5000) for i in range(50)]
    consumed = []

    def consumer():
        for _ in msgs:
            consumed.append(ch.recv(timeout=10))

    t = threading.Thread(target=consumer)
    t.start()
    for m in msgs:
        ch.send(m, timeout=10)
    t.join(10)
    assert consumed == msgs


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------

def test_cost_model_cross_numa_slower():
    cm = ShmCostModel(SMOKY_NODE)
    same = cm.transfer_time(1 << 20, cross_numa=False)
    cross = cm.transfer_time(1 << 20, cross_numa=True)
    assert cross > same


def test_cost_model_xpmem_beats_two_copy_for_large():
    cm = ShmCostModel(TITAN_NODE)
    classic = cm.transfer_time(100 << 20, xpmem=False)
    xpmem = cm.transfer_time(100 << 20, xpmem=True)
    assert xpmem < classic
    # Roughly half: one copy instead of two.
    assert xpmem / classic == pytest.approx(0.5, abs=0.1)


def test_cost_model_small_message_latency():
    cm = ShmCostModel(SMOKY_NODE)
    assert cm.small_msg_time(False) < cm.small_msg_time(True)
    assert cm.transfer_time(0) == pytest.approx(cm.small_msg_time(False))


def test_cost_model_validation():
    cm = ShmCostModel(SMOKY_NODE)
    with pytest.raises(ValueError):
        cm.transfer_time(-1)
