"""Tests for resiliency: timeout-and-retry and transactional output."""

import numpy as np
import pytest

from repro.adios import Adios, EndOfStream, RankContext
from repro.core import stream_registry
from repro.core.resilience import (
    FaultInjector,
    MovementFailed,
    Participant,
    ReliableChannel,
    RetryPolicy,
    TransactionAborted,
    TransactionCoordinator,
    TransactionalStreamWriter,
    TxPhase,
)

CONFIG = """
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="float64" dimensions="n,7"/>
  </adios-group>
  <method group="particles" method="FLEXPATH"/>
</adios-config>
"""


@pytest.fixture(autouse=True)
def fresh_registry():
    stream_registry.reset()
    yield
    stream_registry.reset()


# ---------------------------------------------------------------------------
# FaultInjector
# ---------------------------------------------------------------------------

def test_injector_scripted_failures():
    inj = FaultInjector(fail_ops=[2, 4])
    assert [inj.should_fail() for _ in range(5)] == [False, True, False, True, False]
    assert inj.faults_injected == 2


def test_injector_probabilistic_deterministic():
    inj_a = FaultInjector(drop_probability=0.5, seed=7)
    inj_b = FaultInjector(drop_probability=0.5, seed=7)
    a = [inj_a.should_fail() for _ in range(20)]
    b = [inj_b.should_fail() for _ in range(20)]
    assert a == b
    assert any(a) and not all(a)


def test_injector_validation():
    with pytest.raises(ValueError):
        FaultInjector(drop_probability=1.0)


# ---------------------------------------------------------------------------
# RetryPolicy / ReliableChannel
# ---------------------------------------------------------------------------

def test_retry_policy_backoff():
    p = RetryPolicy(max_retries=3, timeout=1.0, backoff_factor=2.0)
    assert p.delay_before(0) == 0.0
    assert p.delay_before(1) == 1.0
    assert p.delay_before(2) == 2.0
    assert p.delay_before(3) == 4.0
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(timeout=0)


def test_reliable_channel_passes_through_on_success():
    sent = []
    ch = ReliableChannel(lambda data: sent.append(data) or len(data))
    assert ch.send(b"hello") == 5
    assert sent == [b"hello"]
    assert ch.stats.retries == 0


def test_reliable_channel_retries_through_transient_fault():
    sent = []
    ch = ReliableChannel(
        lambda data: sent.append(data),
        policy=RetryPolicy(max_retries=2, timeout=0.5),
        injector=FaultInjector(fail_ops=[1]),  # first attempt times out
    )
    ch.send(b"payload")
    assert sent == [b"payload"]
    assert ch.stats.retries == 1
    assert ch.stats.time_lost == pytest.approx(0.5 + 0.5)  # timeout + backoff


def test_reliable_channel_exhausts_retries():
    ch = ReliableChannel(
        lambda data: None,
        policy=RetryPolicy(max_retries=2, timeout=0.1),
        injector=FaultInjector(fail_ops=[1, 2, 3]),
    )
    with pytest.raises(MovementFailed):
        ch.send(b"x")
    assert ch.stats.failures == 1


def test_reliable_channel_wraps_real_transport():
    """Retry over the actual shm channel: the message still arrives once."""
    from repro.transport import ShmChannel

    shm = ShmChannel()
    ch = ReliableChannel(
        shm.send,
        policy=RetryPolicy(max_retries=3, timeout=0.1),
        injector=FaultInjector(fail_ops=[1, 2]),
    )
    ch.send(b"resilient")
    assert shm.recv() == b"resilient"
    assert ch.stats.retries == 2


# ---------------------------------------------------------------------------
# Two-phase commit
# ---------------------------------------------------------------------------

def make_participants(n, injector=None, log=None):
    log = log if log is not None else []

    def publish(rank):
        def fn(step, payload):
            log.append((rank, step, sorted(payload)))

        return fn

    return [Participant(r, publish(r), injector) for r in range(n)], log


def test_transaction_commits_all():
    parts, log = make_participants(3)
    coord = TransactionCoordinator(parts)
    coord.run(0, {r: {"zion": r} for r in range(3)})
    assert sorted(log) == [(0, 0, ["zion"]), (1, 0, ["zion"]), (2, 0, ["zion"])]
    assert all(p.phase is TxPhase.COMMITTED for p in parts)
    assert coord.stats.committed == 1


def test_transaction_aborts_atomically():
    inj = FaultInjector(fail_ops=[2])  # second participant's prepare fails
    parts, log = make_participants(3, injector=inj)
    coord = TransactionCoordinator(parts)
    with pytest.raises(TransactionAborted):
        coord.run(0, {r: {"zion": r} for r in range(3)})
    assert log == []  # nothing published anywhere
    assert all(p.phase is TxPhase.ABORTED for p in parts)
    assert coord.stats.aborted == 1


def test_transaction_missing_payload_aborts():
    parts, log = make_participants(2)
    coord = TransactionCoordinator(parts)
    with pytest.raises(TransactionAborted):
        coord.run(0, {0: {"zion": 1}})  # rank 1 has nothing
    assert log == []


def test_commit_without_prepare_rejected():
    parts, _ = make_participants(1)
    with pytest.raises(TransactionAborted):
        parts[0].commit()


def test_coordinator_needs_participants():
    with pytest.raises(ValueError):
        TransactionCoordinator([])


# ---------------------------------------------------------------------------
# Transactional stream output — readers never see torn steps
# ---------------------------------------------------------------------------

def open_tx_writer(num_ranks=2, injector=None, retries=2):
    ad = Adios.from_xml(CONFIG)
    handles = [
        ad.open_write("particles", "tx.stream", RankContext(r, num_ranks))
        for r in range(num_ranks)
    ]
    return ad, TransactionalStreamWriter(handles, injector=injector,
                                         max_step_retries=retries)


def test_transactional_stream_happy_path():
    ad, tx = open_tx_writer()
    for step in range(3):
        for r in range(2):
            tx.write(r, "zion", np.full((4, 7), float(step * 10 + r)))
        assert tx.commit_step() == step
    tx.close()

    reader = ad.open_read("particles", "tx.stream", RankContext(0, 1))
    seen = []
    while True:
        seen.append((float(reader.read_block("zion", 0)[0, 0]),
                     float(reader.read_block("zion", 1)[0, 0])))
        try:
            reader._advance()
        except EndOfStream:
            break
    assert seen == [(0.0, 1.0), (10.0, 11.0), (20.0, 21.0)]


def test_transactional_stream_retries_aborted_step():
    inj = FaultInjector(fail_ops=[1])  # first prepare of step 0 fails
    ad, tx = open_tx_writer(injector=inj)
    for r in range(2):
        tx.write(r, "zion", np.full((4, 7), float(r)))
    assert tx.commit_step() == 0  # retried internally, then committed
    tx.close()
    reader = ad.open_read("particles", "tx.stream", RankContext(0, 1))
    assert reader.read_block("zion", 0)[0, 0] == 0.0
    assert reader.read_block("zion", 1)[0, 0] == 1.0


def test_transactional_stream_gives_up_and_stays_clean():
    """If every retry aborts, nothing of the step is visible."""
    inj = FaultInjector(fail_ops=[1, 2, 3, 4, 5, 6, 7, 8])
    ad, tx = open_tx_writer(injector=inj, retries=2)
    for r in range(2):
        tx.write(r, "zion", np.zeros((4, 7)))
    with pytest.raises(TransactionAborted):
        tx.commit_step()
    tx.close()
    reader = ad.open_read("particles", "tx.stream", RankContext(0, 1))
    with pytest.raises((KeyError, EndOfStream)):
        reader.read_block("zion", 0)


def test_transactional_writer_validation():
    with pytest.raises(ValueError):
        TransactionalStreamWriter([])
