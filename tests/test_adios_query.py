"""Tests for index-assisted queries over BP-lite files."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adios import BpReader, BpWriter, block_decompose
from repro.adios.query import And, Or, QueryError, Range, run_query


@pytest.fixture
def gradient_file(tmp_path):
    """A global array whose blocks have disjoint value ranges — ideal for
    pruning: block k holds values in [100k, 100k + 63]."""
    path = str(tmp_path / "grad.bp")
    shape = (32, 16)
    boxes = block_decompose(shape, (8, 1))
    with BpWriter(path) as w:
        w.begin_step()
        for rank, box in enumerate(boxes):
            data = (np.arange(box.size, dtype=np.float64).reshape(box.count)
                    + 100.0 * rank)
            w.write(rank, "energy", data, box=box, global_shape=shape)
            w.write(rank, "weight", np.full(box.count, float(rank)), box=box,
                    global_shape=shape)
        w.end_step()
    return path, shape, boxes


# ---------------------------------------------------------------------------
# Predicate construction
# ---------------------------------------------------------------------------

def test_range_validation():
    with pytest.raises(QueryError):
        Range("x")
    with pytest.raises(QueryError):
        Range("x", 5, 1)
    Range("x", lo=0)   # open above
    Range("x", hi=10)  # open below


def test_predicate_composition_variables():
    q = (Range("a", 0, 1) & Range("b", 2, 3)) | Range("c", hi=0)
    assert q.variables() == {"a", "b", "c"}


# ---------------------------------------------------------------------------
# Pruning
# ---------------------------------------------------------------------------

def test_query_prunes_disjoint_blocks(gradient_file):
    path, _, _ = gradient_file
    with BpReader(path) as r:
        res = run_query(r, Range("energy", 210.0, 220.0))
    # Only block 2 ([200, 263]) can match.
    assert res.blocks_scanned == 1
    assert res.blocks_pruned == 7
    assert res.pruning_ratio == pytest.approx(7 / 8)
    assert res.count == 11  # 210..220 inclusive
    assert (res.values["energy"] >= 210).all() and (res.values["energy"] <= 220).all()


def test_query_no_match_prunes_everything(gradient_file):
    path, _, _ = gradient_file
    with BpReader(path) as r:
        res = run_query(r, Range("energy", 10_000.0, 20_000.0))
    assert res.blocks_scanned == 0
    assert res.count == 0


def test_query_coordinates_are_global(gradient_file):
    path, shape, boxes = gradient_file
    with BpReader(path) as r:
        res = run_query(r, Range("energy", 100.0, 100.0))  # block 1's first cell
    assert res.count == 1
    coord = tuple(res.coordinates[0])
    assert coord == boxes[1].start  # global, not block-local


def test_query_matches_brute_force(gradient_file):
    path, shape, _ = gradient_file
    with BpReader(path) as r:
        full = r.read("energy", 0)
        res = run_query(r, Range("energy", 150.0, 420.0))
    expected = np.sort(full[(full >= 150) & (full <= 420)])
    np.testing.assert_array_equal(np.sort(res.values["energy"]), expected)


# ---------------------------------------------------------------------------
# Composition semantics
# ---------------------------------------------------------------------------

def test_and_across_variables(gradient_file):
    path, _, _ = gradient_file
    with BpReader(path) as r:
        q = Range("energy", lo=100.0) & Range("weight", 1.0, 2.0)
        res = run_query(r, q)
    # weight == rank: only ranks 1 and 2 qualify; their energies >= 100 all.
    assert set(np.unique(res.values["weight"])) == {1.0, 2.0}
    assert res.count == 2 * 64


def test_or_unions_blocks(gradient_file):
    path, _, _ = gradient_file
    with BpReader(path) as r:
        q = Range("energy", 0.0, 10.0) | Range("energy", 700.0, 710.0)
        res = run_query(r, q)
    assert res.blocks_scanned == 2  # first and last blocks only
    assert res.count == 22


def test_and_pruning_uses_both_sides(gradient_file):
    path, _, _ = gradient_file
    with BpReader(path) as r:
        # energy matches block 3 only; weight matches blocks 5+ only:
        # conjunction can match nothing, and pruning sees that per block.
        q = Range("energy", 310.0, 320.0) & Range("weight", lo=5.0)
        res = run_query(r, q)
    assert res.blocks_scanned == 0
    assert res.count == 0


# ---------------------------------------------------------------------------
# Alignment errors
# ---------------------------------------------------------------------------

def test_missing_variable_on_rank_rejected(tmp_path):
    path = str(tmp_path / "mis.bp")
    with BpWriter(path) as w:
        w.begin_step()
        w.write(0, "a", np.zeros(4))
        w.write(0, "b", np.zeros(4))
        w.write(1, "a", np.zeros(4))  # rank 1 lacks b
        w.end_step()
    with BpReader(path) as r:
        with pytest.raises(QueryError):
            run_query(r, Range("a", 0, 1) & Range("b", 0, 1))


def test_shape_mismatch_rejected(tmp_path):
    path = str(tmp_path / "shape.bp")
    with BpWriter(path) as w:
        w.begin_step()
        w.write(0, "a", np.zeros(4))
        w.write(0, "b", np.zeros(5))
        w.end_step()
    with BpReader(path) as r:
        with pytest.raises(QueryError):
            run_query(r, Range("a", 0, 1) & Range("b", 0, 1))


def test_query_empty_step_rejected(gradient_file):
    path, _, _ = gradient_file
    with BpReader(path) as r:
        with pytest.raises(QueryError):
            run_query(r, Range("energy", 0, 1), step=7)


# ---------------------------------------------------------------------------
# Property: query == brute force for arbitrary data and ranges
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    lo=st.floats(-2, 2),
    width=st.floats(0, 2),
)
def test_property_query_equals_brute_force(tmp_path_factory, seed, lo, width):
    rng = np.random.default_rng(seed)
    path = str(tmp_path_factory.mktemp("q") / "prop.bp")
    shape = (24,)
    boxes = block_decompose(shape, (4,))
    full = rng.normal(size=shape)
    with BpWriter(path) as w:
        w.begin_step()
        for rank, box in enumerate(boxes):
            w.write(rank, "v", full[box.slices()].copy(), box=box, global_shape=shape)
        w.end_step()
    hi = lo + width
    with BpReader(path) as r:
        res = run_query(r, Range("v", lo, hi))
    expected = full[(full >= lo) & (full <= hi)]
    np.testing.assert_array_equal(np.sort(res.values["v"]), np.sort(expected))
    # Every pruned block truly had no matching values.
    assert res.count == expected.size
