"""Tests for the online/offline placement fallback."""

import pytest

from repro.coupled import PlacementStyle, evaluate_gts_placements, gts_workload
from repro.coupled.fallback import simulate_with_fallback
from repro.machine import smoky


def gts_wl(machine, ranks=8, steps=5):
    wl, _ = gts_workload(machine, ranks, helper_mode=True, num_steps=steps)
    return wl


def test_online_chosen_when_machine_big_enough():
    machine = smoky(16)
    decision = simulate_with_fallback(machine, gts_wl(machine), num_ana=8)
    assert decision.chosen in (PlacementStyle.HELPER_CORE, PlacementStyle.STAGING)
    assert decision.online_attempted
    assert "feasible" in decision.reason


def test_offline_fallback_when_machine_too_small():
    """A 1-node machine cannot host 8 sim ranks x 3 threads + analytics
    online — the run switches to offline automatically."""
    machine = smoky(1)
    decision = simulate_with_fallback(machine, gts_wl(machine), num_ana=8)
    assert decision.chosen is PlacementStyle.OFFLINE
    assert not decision.online_attempted
    assert "insufficient online resources" in decision.reason
    assert decision.result.metrics.file_bytes > 0


def test_deadline_keeps_online_when_met():
    machine = smoky(16)
    generous = simulate_with_fallback(machine, gts_wl(machine), num_ana=8,
                                      deadline=10_000.0)
    assert generous.chosen is not PlacementStyle.OFFLINE


def test_offline_result_is_complete_run():
    # The simulation alone fits one node; sim + analytics does not.
    machine = smoky(1)
    decision = simulate_with_fallback(machine, gts_wl(machine, ranks=4), num_ana=8)
    assert decision.chosen is PlacementStyle.OFFLINE
    r = decision.result
    assert r.total_execution_time > 0
    assert r.metrics.num_nodes <= machine.num_nodes


def test_gts_evaluation_includes_offline_series():
    results = evaluate_gts_placements(smoky(40), num_ranks=16, num_steps=5)
    assert "offline" in results
    offline = results["offline"]
    # Offline serializes sim then analytics: slowest of all options here.
    for name, res in results.items():
        if name not in ("offline",):
            assert offline.total_execution_time >= res.total_execution_time
    assert offline.metrics.file_bytes > 0
    assert offline.metrics.inter_node_bytes == 0
