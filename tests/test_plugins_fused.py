"""Fused analytics plan: sandbox fuzz, fused-vs-interpreted equivalence,
plan-cache chain keys, and predicate pushdown on both planes.

Four tiers:

* codelet sandbox — hypothesis fuzz over forbidden constructs (every
  escape attempt is a :class:`CodeletError`, never an execution) and
  over the arithmetic subset that must keep compiling;
* fused plan — random writer row decompositions x random kernel chains:
  :class:`FusedPlan` output is byte-identical to scattering with the
  plain plan and running the chain interpreted;
* plan cache — chain-hash-extended keys never collide across chains and
  geometry invalidation drops every fused variant;
* pushdown — the in-process drain and the net broker skip blocks a
  registered reader predicate provably drops, counted in
  ``plugin.blocks_skipped``, with reads staying exact.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adios import Adios, BoundingBox, RankContext, StepStatus, block_decompose
from repro.core import CodeletError, DCPlugin, PluginManager, PluginSide
from repro.core.directory import TenantSpec
from repro.core.hints import stream_params
from repro.core.plugins import (
    range_select_plugin,
    sampling_plugin,
    unit_conversion_plugin,
)
from repro.core.redistribution import PlanCache
from repro.core.stream import stream_registry
from repro.net.client import connect
from repro.net.server import DirectoryDaemon
from repro.obs.names import (
    M_PLUGIN_BLOCKS_SKIPPED,
    M_PLUGIN_FUSED_READS,
)


# ---------------------------------------------------------------------------
# Codelet sandbox: fuzz the validator
# ---------------------------------------------------------------------------

#: Escape attempts parameterized by a fuzzed identifier; every one must
#: be rejected at DCPlugin construction (CodeletError), whatever name
#: the fuzzer picks (keywords degrade to syntax errors — also typed).
_ESCAPES = (
    "import {m}\ndef condition(vars):\n    return vars\n",
    "from {m} import x\ndef condition(vars):\n    return vars\n",
    "def condition(vars):\n    with vars:\n        pass\n    return vars\n",
    "def condition(vars):\n    try:\n        pass\n    except Exception:\n        pass\n    return vars\n",
    "def condition(vars):\n    {m} = lambda a: a\n    return vars\n",
    "class {m}:\n    pass\ndef condition(vars):\n    return vars\n",
    "def condition(vars):\n    return vars['{m}'].__class__\n",
    "def condition(vars):\n    return np._{m}\n",
    "def condition(vars):\n    global {m}\n    return vars\n",
    "def condition(vars):\n    yield vars\n",
    "async def condition(vars):\n    return vars\n",
    "def condition(vars):\n    assert vars\n    return vars\n",
    "def condition(vars):\n    raise ValueError('{m}')\n",
)


@settings(max_examples=120, deadline=None)
@given(
    template=st.sampled_from(_ESCAPES),
    name=st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True),
)
def test_fuzz_sandbox_rejects_every_escape(template, name):
    with pytest.raises(CodeletError):
        DCPlugin("fuzz", template.format(m=name))


@settings(max_examples=60, deadline=None)
@given(
    scale=st.floats(0.25, 4.0),
    bias=st.floats(-2.0, 2.0),
)
def test_fuzz_sandbox_accepts_arithmetic_codelets(scale, bias):
    """The restricted subset stays expressive: arbitrary arithmetic
    comprehensions over the vars dict compile and run."""
    src = (
        "def condition(vars):\n"
        f"    return {{k: v * {scale!r} + {bias!r} for k, v in vars.items()}}\n"
    )
    p = DCPlugin("arith", src)
    out = p.apply({"x": np.ones(5)})
    np.testing.assert_allclose(out["x"], np.ones(5) * scale + bias)


# ---------------------------------------------------------------------------
# FusedPlan == scatter-then-interpret, for arbitrary blocks and chains
# ---------------------------------------------------------------------------


def _chain_kernels(order, stride, lo, hi, factor):
    """Fresh plug-in instances for one fuzzed chain composition."""
    factories = {
        "sample": lambda: sampling_plugin(stride=stride, only=("zion",)),
        "range": lambda: range_select_plugin("zion", 0, lo, hi),
        "unit": lambda: unit_conversion_plugin("zion", factor),
    }
    return [factories[k]() for k in order]


def _manager(order, stride, lo, hi, factor):
    mgr = PluginManager()
    for k in _chain_kernels(order, stride, lo, hi, factor):
        mgr.deploy(k, PluginSide.READER)
    return mgr


@settings(max_examples=80, deadline=None)
@given(
    rows=st.lists(st.integers(1, 30), min_size=1, max_size=5),
    order=st.permutations(("unit", "sample", "range")),
    take=st.integers(1, 3),
    stride=st.integers(1, 5),
    lo=st.floats(-1.0, 0.5),
    span=st.floats(0.0, 1.5),
    factor=st.floats(0.5, 2.0),
    seed=st.integers(0, 10_000),
)
def test_fuzz_fused_plan_matches_interpreted_chain(
    rows, order, take, stride, lo, span, factor, seed
):
    """Random writer row splits x random kernel chains: the fused
    single-pass execute is byte-identical to the two-pass oracle
    (plain scatter, then the chain interpreted over the whole array)."""
    total = sum(rows)
    gshape = (total, 7)
    starts, at = [], 0
    for n in rows:
        starts.append(at)
        at += n
    writer_boxes = [
        BoundingBox((s, 0), (n, 7)) for s, n in zip(starts, rows)
    ]
    reader_boxes = [BoundingBox((0, 0), gshape)]
    chain_order = tuple(order[:take])
    hi = lo + span
    chain = _manager(chain_order, stride, lo, hi, factor).compiled_chain(
        PluginSide.READER
    )
    assert chain is not None and chain.supports("zion")

    cache = PlanCache()
    fplan, _ = cache.get(writer_boxes, reader_boxes, gshape, chain=chain)
    assert fplan.fusable  # contiguous row tilings always fuse
    rng = np.random.default_rng(seed)
    blocks = [rng.uniform(-1.0, 2.0, size=(n, 7)) for n in rows]
    fused = fplan.execute(blocks, "zion")

    plain, _ = cache.get(writer_boxes, reader_boxes, gshape)
    assembled = plain.execute(blocks)[0]
    oracle = _manager(chain_order, stride, lo, hi, factor)
    want = oracle.apply_side(PluginSide.READER, {"zion": assembled})["zion"]

    assert fused.shape == want.shape
    assert fused.tobytes() == want.tobytes()


# ---------------------------------------------------------------------------
# Plan cache: chain-hash-extended keys
# ---------------------------------------------------------------------------


def _stride_chain(stride):
    mgr = PluginManager()
    mgr.deploy(sampling_plugin(stride=stride, only=("v",)), PluginSide.READER)
    return mgr.compiled_chain(PluginSide.READER)


def test_plan_cache_chain_hash_separates_variants():
    boxes = [BoundingBox((0, 0), (8, 4)), BoundingBox((8, 0), (8, 4))]
    readers = [BoundingBox((0, 0), (16, 4))]
    cache = PlanCache()
    plain, hit = cache.get(boxes, readers, (16, 4))
    assert not hit
    fused, hit = cache.get(boxes, readers, (16, 4), chain=_stride_chain(2))
    assert not hit
    # The fused variant reuses the already-compiled geometry.
    assert fused.compiled is plain
    again, hit = cache.get(boxes, readers, (16, 4), chain=_stride_chain(2))
    assert hit and again is fused
    other, hit = cache.get(boxes, readers, (16, 4), chain=_stride_chain(3))
    assert not hit and other is not fused
    assert len(cache) == 3
    # One geometry invalidation drops the plain plan AND every chain
    # variant (the update_writer_boxes path).
    assert cache.invalidate(boxes, readers, (16, 4))
    assert len(cache) == 0


def test_chain_hash_stable_and_parameter_sensitive():
    def digest(stride):
        mgr = PluginManager()
        mgr.deploy(sampling_plugin(stride=stride, only=("zion",)),
                   PluginSide.READER)
        return mgr.chain_hash(PluginSide.READER)

    assert digest(2) == digest(2)
    assert digest(2) != digest(3)


# ---------------------------------------------------------------------------
# Predicate pushdown, in-process plane
# ---------------------------------------------------------------------------

_S3D_XML = """
<adios-config>
  <adios-group name="field">
    <var name="temp" type="float64" dimensions="32,32"/>
  </adios-group>
  <method group="field" method="FLEXPATH">{params}</method>
</adios-config>
"""


def test_pushdown_skips_provably_dropped_blocks_in_process():
    params = stream_params(sync=True, pushdown=True)
    ad = Adios.from_xml(_S3D_XML.format(params=params))
    name = "fused.pushdown.inproc"
    boxes = block_decompose((32, 32), (2, 1))
    handles = [ad.open_write("field", name, RankContext(r, 2)) for r in range(2)]
    state = stream_registry._states[name]
    state.plugins.deploy(
        range_select_plugin("temp", 0, 0.0, 1.0), PluginSide.READER
    )
    reader = ad.open_read("field", name, RankContext(0, 1))
    rng = np.random.default_rng(3)
    keep = rng.uniform(0.0, 0.5, size=tuple(boxes[0].count))
    drop = rng.uniform(2.0, 3.0, size=tuple(boxes[1].count))

    def write_step():
        for h, data, box in zip(handles, (keep, drop), boxes):
            h.write("temp", data, box=box, global_shape=(32, 32))
            h.end_step()

    metrics = state.monitor.metrics
    try:
        # Step 0 drains before the reader registered its predicate, so
        # nothing may be skipped; the first read registers it.
        write_step()
        assert reader.begin_step(timeout=5.0) is StepStatus.OK
        got0 = reader.read("temp", start=(0, 0), count=(32, 32))
        reader.end_step()
        assert metrics.counter(M_PLUGIN_BLOCKS_SKIPPED).value == 0

        # Step 1: the drain now provably drops the out-of-range block.
        write_step()
        assert metrics.counter(M_PLUGIN_BLOCKS_SKIPPED).value == 1
        assert reader.begin_step(timeout=5.0) is StepStatus.OK
        got1 = reader.read("temp", start=(0, 0), count=(32, 32))
        reader.end_step()

        # Reads stay exact either way: the buffered step copy is
        # untouched, and the chain drops those rows regardless.
        for got in (got0, got1):
            assert got.shape == (16, 32)
            assert got.tobytes() == keep.tobytes()
        assert metrics.counter(M_PLUGIN_FUSED_READS).value == 2
    finally:
        for h in handles:
            h.close()
        reader.close()
        stream_registry.close_stream(name)


# ---------------------------------------------------------------------------
# Predicate pushdown, network plane
# ---------------------------------------------------------------------------


@pytest.fixture()
def daemon():
    d = DirectoryDaemon(
        tenants=[TenantSpec("public")], telemetry=False, lease_interval=0.05
    )
    d.start()
    yield d
    d.stop()


def test_net_broker_prunes_blocks_for_pushdown_readers(daemon):
    uri = f"flexio://{daemon.host}:{daemon.control_port}/public"
    rng = np.random.default_rng(5)
    keep = rng.uniform(0.0, 0.5, size=(16, 32))
    drop = rng.uniform(2.0, 3.0, size=(16, 32))
    with connect(uri) as c:
        w = c.open("flux", "w")
        r = c.open("flux", "r", timeout=2.0, pushdown=True)
        r.plugins.deploy(
            range_select_plugin("temp", 0, 0.0, 1.0), PluginSide.READER
        )

        def publish():
            w.begin_step()
            w.write("temp", keep,
                    box=BoundingBox((0, 0), (16, 32)), global_shape=(32, 32))
            w.write("temp", drop,
                    box=BoundingBox((16, 0), (16, 32)), global_shape=(32, 32))
            w.end_step()

        # Step 0 is published before the reader's first fetch carries
        # the predicate to the broker (the re-ATTACH): never pruned.
        publish()
        assert r.begin_step(timeout=2.0) is StepStatus.OK
        got0 = r.read("temp", start=(0, 0), count=(32, 32))
        r.end_step()
        # The daemon notices the predicate-less attach closing
        # asynchronously; pruning arms once only the re-ATTACH remains.
        time.sleep(0.3)
        publish()
        assert r.begin_step(timeout=2.0) is StepStatus.OK
        got1 = r.read("temp", start=(0, 0), count=(32, 32))
        r.end_step()

        # Both reads return exactly the surviving rows — the broker
        # pruned a block only the chain would have dropped anyway.
        for got in (got0, got1):
            assert got.shape == (16, 32)
            assert got.tobytes() == keep.tobytes()
        hosted = daemon._streams["public/flux"]
        skipped = hosted.monitor.metrics.counter(
            M_PLUGIN_BLOCKS_SKIPPED, labels={"tenant": "public"}
        ).value
        assert skipped == 1
        # Both reads took the fused per-block path on the client.
        assert c.monitor.metrics.counter(M_PLUGIN_FUSED_READS).value == 2
        w.close()
        r.close()
