"""Tests for the ADIOS config file and the open/write/advance/close API."""

import numpy as np
import pytest

from repro.adios import (
    Adios,
    AdiosConfig,
    AdiosError,
    BoundingBox,
    ConfigError,
    EndOfStream,
    RankContext,
    block_decompose,
)

CONFIG = """
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="float64" dimensions="n,7"/>
    <var name="electron" type="float64" dimensions="n,7"/>
    <var name="count" type="int64"/>
  </adios-group>
  <adios-group name="fields">
    <var name="temp" type="float64" dimensions="16,16"/>
  </adios-group>
  <method group="particles" method="BP">batching=true;queue_slots=128</method>
  <buffer size-MB="32"/>
</adios-config>
"""


# ---------------------------------------------------------------------------
# Config parsing
# ---------------------------------------------------------------------------

def test_config_parses_groups_and_vars():
    cfg = AdiosConfig.from_xml(CONFIG)
    assert set(cfg.groups) == {"particles", "fields"}
    zion = cfg.group("particles").var("zion")
    assert zion.global_shape == (-1, 7)  # 'n' resolves at write time
    assert cfg.group("fields").var("temp").global_shape == (16, 16)
    assert cfg.group("particles").var("count").global_shape is None
    assert cfg.buffer_mb == 32


def test_config_method_binding_and_params():
    cfg = AdiosConfig.from_xml(CONFIG)
    spec = cfg.method_for("particles")
    assert spec.method == "BP"
    assert spec.param_bool("batching")
    assert spec.param_int("queue_slots") == 128
    assert spec.param("missing", "dflt") == "dflt"
    # Unbound group defaults to file I/O.
    assert cfg.method_for("fields").method == "BP"


def test_config_one_line_method_switch():
    """The paper's switching story: only the <method> line changes."""
    file_cfg = AdiosConfig.from_xml(CONFIG)
    stream_xml = CONFIG.replace(
        '<method group="particles" method="BP">batching=true;queue_slots=128</method>',
        '<method group="particles" method="FLEXPATH">batching=true</method>',
    )
    stream_cfg = AdiosConfig.from_xml(stream_xml)
    assert file_cfg.method_for("particles").method == "BP"
    assert stream_cfg.method_for("particles").method == "FLEXPATH"
    assert file_cfg.groups.keys() == stream_cfg.groups.keys()


def test_config_errors():
    with pytest.raises(ConfigError):
        AdiosConfig.from_xml("<wrong-root/>")
    with pytest.raises(ConfigError):
        AdiosConfig.from_xml("not xml at all <<<")
    with pytest.raises(ConfigError):
        AdiosConfig.from_xml(
            "<adios-config><method group='ghost' method='BP'/></adios-config>"
        )
    with pytest.raises(ConfigError):
        AdiosConfig.from_xml(
            "<adios-config><adios-group name='g'/>"
            "<method group='g' method='BP'>oops-no-equals</method></adios-config>"
        )
    with pytest.raises(ConfigError):
        AdiosConfig.from_xml("<adios-config><mystery/></adios-config>")


def test_config_duplicate_group_rejected():
    xml = (
        "<adios-config><adios-group name='g'/><adios-group name='g'/></adios-config>"
    )
    with pytest.raises(ConfigError):
        AdiosConfig.from_xml(xml)


def test_rank_context_validation():
    RankContext(0, 1)
    with pytest.raises(ValueError):
        RankContext(1, 1)
    with pytest.raises(ValueError):
        RankContext(0, 0)


# ---------------------------------------------------------------------------
# File-mode API round trips
# ---------------------------------------------------------------------------

def test_file_mode_multi_rank_round_trip(tmp_path):
    ad = Adios.from_xml(CONFIG)
    path = str(tmp_path / "out.bp")
    shape = (16, 16)
    boxes = block_decompose(shape, (2, 2))
    full = np.arange(256.0).reshape(shape)

    writers = [ad.open_write("fields", path, RankContext(r, 4)) for r in range(4)]
    for step in range(2):
        for r, w in enumerate(writers):
            w.write("temp", full[boxes[r].slices()] + step, box=boxes[r], global_shape=shape)
        for w in writers:
            w.end_step()
    for w in writers:
        w.close()

    reader = ad.open_read("fields", path, RankContext(0, 1))
    assert reader.available_vars() == ["temp"]
    np.testing.assert_array_equal(reader.read("temp"), full)
    reader._advance()
    np.testing.assert_array_equal(reader.read("temp"), full + 1)
    with pytest.raises(EndOfStream):
        reader._advance()
    reader.close()


def test_file_mode_process_group_pattern(tmp_path):
    ad = Adios.from_xml(CONFIG)
    path = str(tmp_path / "pg.bp")
    writers = [ad.open_write("particles", path, RankContext(r, 3)) for r in range(3)]
    for r, w in enumerate(writers):
        w.write("zion", np.full((4, 7), float(r)))
        w.write("count", np.array(4 * (r + 1), dtype=np.int64))
    for w in writers:
        w.end_step()
        w.close()

    reader = ad.open_read("particles", path, RankContext(0, 1))
    for r in range(3):
        assert (reader.read_block("zion", writer_rank=r) == r).all()
    reader.close()


def test_write_after_close_rejected(tmp_path):
    ad = Adios.from_xml(CONFIG)
    w = ad.open_write("fields", str(tmp_path / "x.bp"), RankContext(0, 1))
    w.close()
    with pytest.raises(AdiosError):
        w.write("temp", np.zeros((16, 16)))


def test_unknown_method_rejected(tmp_path):
    xml = CONFIG.replace('method="BP"', 'method="TELEPORT"')
    ad = Adios.from_xml(xml)
    with pytest.raises(AdiosError):
        ad.open_write("particles", str(tmp_path / "y.bp"), RankContext(0, 1))


def test_context_manager_handles(tmp_path):
    ad = Adios.from_xml(CONFIG)
    path = str(tmp_path / "cm.bp")
    with ad.open_write("fields", path, RankContext(0, 1)) as w:
        w.write("temp", np.ones((16, 16)), box=BoundingBox((0, 0), (16, 16)),
                global_shape=(16, 16))
        w.end_step()
    with ad.open_read("fields", path, RankContext(0, 1)) as r:
        assert r.read("temp").sum() == 256
