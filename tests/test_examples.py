"""Smoke tests: every shipped example runs end to end in-process."""

import importlib.util
import os
import sys

import pytest

from repro.core import stream_registry

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


@pytest.fixture(autouse=True)
def fresh_registry(monkeypatch, tmp_path):
    stream_registry.reset()
    # Examples write images/files relative to cwd or argv; sandbox them.
    monkeypatch.chdir(tmp_path)
    yield
    stream_registry.reset()


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_example(name, argv=(), capsys=None):
    module = load_example(name)
    old_argv = sys.argv
    sys.argv = [f"{name}.py", *argv]
    try:
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


def test_quickstart(capsys):
    out = run_example("quickstart", capsys=capsys)
    assert "identical results through both transports" in out


def test_gts_analytics_pipeline(capsys):
    out = run_example("gts_analytics_pipeline", capsys=capsys)
    assert "selectivity" in out
    assert "20" in out


def test_s3d_insitu_viz(capsys, tmp_path):
    out = run_example("s3d_insitu_viz", argv=[str(tmp_path / "imgs")], capsys=capsys)
    assert "PPM images" in out
    assert any(f.endswith(".ppm") for f in os.listdir(tmp_path / "imgs"))


def test_placement_tuning(capsys):
    out = run_example("placement_tuning", argv=["128"], capsys=capsys)
    assert "best placement" in out
    assert "topology-aware" in out


def test_dc_plugins_demo(capsys):
    out = run_example("dc_plugins_demo", capsys=capsys)
    assert "rejected hostile codelet" in out
    assert "migrated" in out


def test_adaptive_insitu(capsys):
    out = run_example("adaptive_insitu", capsys=capsys)
    assert "migration at step" in out
    assert "adaptive run moved" in out


def test_pixie3d_xt5_pipeline(capsys, tmp_path):
    out = run_example(
        "pixie3d_xt5_pipeline", argv=[str(tmp_path / "pix")], capsys=capsys
    )
    assert "seastar" in out
    assert "E_mag" in out
