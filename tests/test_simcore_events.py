"""Unit tests for the DES kernel: events, timeouts, conditions."""

import pytest

from repro.simcore import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    EventAlreadyTriggered,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(2.5)
        return env.now

    p = env.process(proc(env))
    assert env.run(p) == 2.5
    assert env.now == 2.5


def test_timeout_zero_is_legal():
    env = Environment()

    def proc(env):
        yield env.timeout(0)
        return "done"

    assert env.run(env.process(proc(env))) == "done"
    assert env.now == 0.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        v = yield env.timeout(1, value="payload")
        return v

    assert env.run(env.process(proc(env))) == "payload"


def test_event_succeed_resumes_waiter():
    env = Environment()
    ev = env.event()
    log = []

    def waiter(env, ev):
        v = yield ev
        log.append((env.now, v))

    def trigger(env, ev):
        yield env.timeout(3)
        ev.succeed(42)

    env.process(waiter(env, ev))
    env.process(trigger(env, ev))
    env.run()
    assert log == [(3.0, 42)]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed(2)
    with pytest.raises(EventAlreadyTriggered):
        ev.fail(RuntimeError("x"))


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_failed_event_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def waiter(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught {exc}"

    p = env.process(waiter(env, ev))
    ev.fail(RuntimeError("boom"))
    assert env.run(p) == "caught boom"


def test_unhandled_failed_event_aborts_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("unnoticed"))
    with pytest.raises(SimulationError):
        env.run()


def test_defused_failure_does_not_abort():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("handled elsewhere"))
    ev.defuse()
    env.run()  # no raise


def test_allof_collects_all_values():
    env = Environment()
    t1 = env.timeout(1, value="a")
    t2 = env.timeout(2, value="b")

    def proc(env):
        result = yield AllOf(env, [t1, t2])
        return sorted(result.values())

    p = env.process(proc(env))
    assert env.run(p) == ["a", "b"]
    assert env.now == 2.0


def test_anyof_fires_on_first():
    env = Environment()
    t1 = env.timeout(1, value="fast")
    t2 = env.timeout(10, value="slow")

    def proc(env):
        result = yield AnyOf(env, [t1, t2])
        return (env.now, list(result.values()))

    when, values = env.run(env.process(proc(env)))
    assert when == 1.0
    assert values == ["fast"]


def test_and_or_operators():
    env = Environment()
    a = env.timeout(1, value=1)
    b = env.timeout(2, value=2)

    def proc(env):
        res = yield (a & b)
        return sum(res.values())

    assert env.run(env.process(proc(env))) == 3


def test_empty_allof_fires_immediately():
    env = Environment()

    def proc(env):
        res = yield AllOf(env, [])
        return res

    assert env.run(env.process(proc(env))) == {}


def test_condition_on_already_processed_events():
    env = Environment()
    t = env.timeout(1, value="x")
    env.run()  # t processed

    def proc(env):
        res = yield AllOf(env, [t])
        return list(res.values())

    assert env.run(env.process(proc(env))) == ["x"]


def test_run_until_time():
    env = Environment()
    fired = []

    def proc(env):
        while True:
            yield env.timeout(1)
            fired.append(env.now)

    env.process(proc(env))
    env.run(until=3.5)
    assert fired == [1.0, 2.0, 3.0]
    assert env.now == 3.5


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in range(5):
        env.process(proc(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_event_returns_value():
    env = Environment()
    ev = env.event()

    def trigger(env, ev):
        yield env.timeout(7)
        ev.succeed("finished")

    env.process(trigger(env, ev))
    assert env.run(until=ev) == "finished"
    assert env.now == 7.0


def test_run_until_never_fired_event_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_peek_and_step():
    env = Environment()
    env.timeout(4)
    assert env.peek() == 4.0
    env.step()
    assert env.now == 4.0
    assert env.peek() == float("inf")
    with pytest.raises(SimulationError):
        env.step()
