"""Unit tests for interconnect, cache-contention, and file-system models."""

import pytest

from repro.machine import (
    CacheContentionModel,
    CacheProfile,
    GeminiInterconnect,
    InfinibandInterconnect,
    LustreModel,
)
from repro.util import KiB, MiB


# ---------------------------------------------------------------------------
# Interconnect
# ---------------------------------------------------------------------------

def test_gemini_static_faster_than_dynamic_everywhere():
    ic = GeminiInterconnect()
    for size in [1 * KiB, 64 * KiB, 1 * MiB, 16 * MiB]:
        static = ic.get_bandwidth(size, static_buffers=True)
        dynamic = ic.get_bandwidth(size, static_buffers=False)
        assert static > dynamic


def test_gemini_dynamic_gap_narrows_at_large_sizes():
    """Figure 4's shape: the relative registration penalty shrinks as the
    transfer itself starts to dominate."""
    ic = GeminiInterconnect()
    ratio_small = ic.get_bandwidth(64 * KiB, static_buffers=False) / ic.get_bandwidth(
        64 * KiB, static_buffers=True
    )
    ratio_large = ic.get_bandwidth(16 * MiB, static_buffers=False) / ic.get_bandwidth(
        16 * MiB, static_buffers=True
    )
    assert ratio_small < ratio_large < 1.0


def test_gemini_peak_bandwidth_plausible():
    """Static large-message Get should approach the Gemini BTE peak."""
    ic = GeminiInterconnect()
    bw = ic.get_bandwidth(16 * MiB, static_buffers=True)
    assert 4e9 < bw < 6.5e9


def test_infiniband_slower_than_gemini():
    ib, gem = InfinibandInterconnect(), GeminiInterconnect()
    assert ib.get_bandwidth(1 * MiB, static_buffers=True) < gem.get_bandwidth(
        1 * MiB, static_buffers=True
    )


def test_small_put_threshold_enforced():
    ic = GeminiInterconnect()
    ic.small_put_time(4 * KiB)  # at threshold: fine
    with pytest.raises(ValueError):
        ic.small_put_time(4 * KiB + 1)


def test_registration_time_scales_with_pages():
    ic = GeminiInterconnect()
    assert ic.registration_time(1 * MiB) > ic.registration_time(4 * KiB)
    # Per-page linearity.
    d1 = ic.registration_time(8 * KiB) - ic.registration_time(4 * KiB)
    d2 = ic.registration_time(12 * KiB) - ic.registration_time(8 * KiB)
    assert d1 == pytest.approx(d2)


def test_effective_bw_shares_injection():
    ic = GeminiInterconnect()
    one = ic.effective_bw(1)
    four = ic.effective_bw(4)
    assert four == pytest.approx(one / 4, rel=0.3)
    with pytest.raises(ValueError):
        ic.effective_bw(0)


def test_bulk_transfer_slower_under_contention():
    ic = GeminiInterconnect()
    assert ic.bulk_transfer_time(16 * MiB, concurrent_flows=8) > ic.bulk_transfer_time(
        16 * MiB, concurrent_flows=1
    )


# ---------------------------------------------------------------------------
# Cache contention
# ---------------------------------------------------------------------------

GTS_LIKE = CacheProfile(
    name="gts",
    working_set_bytes=8 * MiB,
    intensity=10.0,
    base_miss_per_kinst=6.0,
    cpi=1.3,
    miss_penalty_cycles=20.0,
)
ANALYTICS_LIKE = CacheProfile(
    name="analytics",
    working_set_bytes=4 * MiB,
    intensity=5.0,
    base_miss_per_kinst=8.0,
    cpi=1.1,
    miss_penalty_cycles=20.0,
)


def test_solo_miss_rate_is_base():
    model = CacheContentionModel()
    rates = model.shared_miss_rates([GTS_LIKE], l3_bytes=2 * MiB)
    assert rates[0] == pytest.approx(GTS_LIKE.base_miss_per_kinst)


def test_corunning_inflates_misses():
    model = CacheContentionModel()
    shared = model.shared_miss_rates([GTS_LIKE, ANALYTICS_LIKE], l3_bytes=2 * MiB)
    assert shared[0] > GTS_LIKE.base_miss_per_kinst
    assert shared[1] > ANALYTICS_LIKE.base_miss_per_kinst


def test_allocation_conserves_capacity():
    model = CacheContentionModel()
    allocs = model.allocations([GTS_LIKE, ANALYTICS_LIKE], l3_bytes=2 * MiB)
    assert sum(allocs) == pytest.approx(2 * MiB)


def test_allocation_redistributes_surplus():
    """A tiny-working-set co-runner cannot hog capacity it cannot use."""
    tiny = CacheProfile("tiny", working_set_bytes=64 * KiB, intensity=100.0,
                        base_miss_per_kinst=0.5, cpi=1.0, miss_penalty_cycles=20.0)
    model = CacheContentionModel()
    allocs = model.allocations([GTS_LIKE, tiny], l3_bytes=2 * MiB)
    assert allocs[1] == pytest.approx(64 * KiB)
    assert allocs[0] == pytest.approx(2 * MiB - 64 * KiB)


def test_slowdown_zero_without_extra_misses():
    model = CacheContentionModel()
    assert model.slowdown(GTS_LIKE, GTS_LIKE.base_miss_per_kinst) == 0.0
    assert model.slowdown(GTS_LIKE, GTS_LIKE.base_miss_per_kinst - 1) == 0.0


def test_slowdown_increases_with_misses():
    model = CacheContentionModel()
    s1 = model.slowdown(GTS_LIKE, 8.0)
    s2 = model.slowdown(GTS_LIKE, 10.0)
    assert 0 < s1 < s2


def test_bigger_cache_less_interference():
    model = CacheContentionModel()
    small = model.shared_miss_rates([GTS_LIKE, ANALYTICS_LIKE], l3_bytes=2 * MiB)[0]
    big = model.shared_miss_rates([GTS_LIKE, ANALYTICS_LIKE], l3_bytes=8 * MiB)[0]
    assert big < small


def test_corun_returns_pairs():
    model = CacheContentionModel()
    out = model.corun([GTS_LIKE, ANALYTICS_LIKE], l3_bytes=2 * MiB)
    assert len(out) == 2
    for miss, slow in out:
        assert miss > 0 and slow >= 0


def test_profile_validation():
    with pytest.raises(ValueError):
        CacheProfile("bad", 0, 1, 1, 1, 1)
    with pytest.raises(ValueError):
        CacheProfile("bad", 1, 0, 1, 1, 1)
    with pytest.raises(ValueError):
        CacheProfile("bad", 1, 1, -1, 1, 1)
    with pytest.raises(ValueError):
        CacheProfile("bad", 1, 1, 1, 0, 1)
    with pytest.raises(ValueError):
        CacheContentionModel(beta=0)


# ---------------------------------------------------------------------------
# File system
# ---------------------------------------------------------------------------

def test_lustre_efficiency_decays():
    fs = LustreModel()
    assert fs.efficiency(1) > fs.efficiency(1024) > fs.efficiency(16384)


def test_lustre_aggregate_bw_saturates():
    fs = LustreModel(num_osts=8, ost_bw=400 * MiB, stripe_count=4)
    few = fs.aggregate_bw(1)
    many = fs.aggregate_bw(64)
    # 64 clients cannot exceed 8 OSTs' worth (times efficiency).
    assert many <= 8 * 400 * MiB
    assert few <= fs.client_bw


def test_lustre_write_time_monotone_in_bytes():
    fs = LustreModel()
    assert fs.write_time(2 * MiB, 4) > fs.write_time(1 * MiB, 4)


def test_lustre_metadata_cost_charged():
    fs = LustreModel()
    assert fs.write_time(0, 4) == pytest.approx(fs.metadata_op_time)
    assert fs.write_time(0, 4, num_files=10) == pytest.approx(10 * fs.metadata_op_time)


def test_lustre_weak_scaling_inefficiency():
    """Per-client time grows when every client brings its own data (weak
    scaling) — the effect that penalizes inline file I/O at scale."""
    fs = LustreModel(num_osts=16)
    per_client_bytes = 100 * MiB
    t_small = fs.write_time(per_client_bytes * 16, 16)
    t_big = fs.write_time(per_client_bytes * 4096, 4096)
    assert t_big > t_small


def test_lustre_validation():
    with pytest.raises(ValueError):
        LustreModel(num_osts=0)
    fs = LustreModel()
    with pytest.raises(ValueError):
        fs.write_time(-1, 4)
    with pytest.raises(ValueError):
        fs.efficiency(0)
