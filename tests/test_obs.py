"""Tests for the observability layer: tracing, metrics, export, analysis."""

import json

import numpy as np
import pytest

from repro.core.monitoring import PerfMonitor, TraceRecord
from repro.obs import (
    Histogram,
    MetricsRegistry,
    NOOP_SPAN,
    Tracer,
    build_traces,
    critical_path,
    find_bottleneck,
    is_span_record,
    stage_breakdown,
    to_perfetto,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def tick(self, dt):
        self.t += dt
        return self.t


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------

def test_span_nesting_shares_trace_and_links_parent():
    clock = FakeClock()
    mon = PerfMonitor(clock=clock, tracing=True)
    with mon.span("write", "s") as outer:
        clock.tick(1.0)
        with mon.span("transport", "s") as inner:
            clock.tick(0.5)
    assert inner.trace_id == outer.trace_id
    assert inner.parent_id == outer.span_id
    spans = [dict(r.extra) for r in mon.trace if "trace_id" in dict(r.extra)]
    assert len(spans) == 2
    by_id = {s["span_id"]: s for s in spans}
    assert by_id[inner.span_id]["parent_id"] == outer.span_id
    assert by_id[outer.span_id]["parent_id"] == ""


def test_disabled_tracing_is_noop_and_adds_no_records():
    mon = PerfMonitor(tracing=False)
    before = len(mon.trace)
    with mon.span("write", "s") as sp:
        sp.set_attr("k", 1)
        sp.add_bytes(10)
    assert sp is NOOP_SPAN
    assert mon.begin_span("write", "s") is NOOP_SPAN
    assert len(mon.trace) == before
    assert not mon.tracing_enabled


def test_explicit_context_parent_crosses_monitors():
    # Writer and reader sides have distinct monitors in the real system;
    # the SpanContext carried with a published step stitches them.
    clock = FakeClock()
    mon = PerfMonitor(clock=clock, tracing=True)
    with mon.span("write", "s") as w:
        clock.tick(1.0)
        ctx = w.context
    with mon.span("read", "s", parent=ctx) as r:
        clock.tick(0.2)
    assert r.trace_id == w.trace_id
    assert r.parent_id == w.span_id


def test_sampling_suppresses_whole_trace():
    clock = FakeClock()
    mon = PerfMonitor(clock=clock, tracing=True, sample_rate=0.5)
    kept = 0
    for _ in range(10):
        with mon.span("write", "s") as root:
            with mon.span("transport", "s") as child:
                clock.tick(0.1)
            # A sampled-out root must suppress its descendants too —
            # no orphan traces.
            assert child.recording == root.recording
        kept += 1 if root.recording else 0
    assert kept == 5
    spans = [dict(r.extra) for r in mon.trace if "trace_id" in dict(r.extra)]
    assert len(spans) == 2 * kept


def test_stream_pipeline_spans_share_one_trace_per_step():
    from repro.adios import BoundingBox, RankContext
    from repro.core import FlexIO

    cfg = """
    <adios-config>
      <adios-group name="g">
        <var name="phi" type="float64" dimensions="8,8"/>
      </adios-group>
      <method group="g" method="FLEXPATH">trace=true</method>
    </adios-config>
    """
    flexio = FlexIO.from_xml(cfg)
    writers = [
        flexio.open_write("g", "obs.pipe", RankContext(r, 2)) for r in range(2)
    ]
    for r, w in enumerate(writers):
        w.write("phi", np.ones((4, 8)) * r,
                box=BoundingBox((r * 4, 0), (4, 8)), global_shape=(8, 8))
        w.end_step()
    for w in writers:
        w.close()
    reader = flexio.open_read("g", "obs.pipe", RankContext(0, 1))
    out = reader.read("phi")
    assert out.shape == (8, 8)
    mon = reader.monitor
    assert mon is writers[0].monitor  # one stream, one monitor
    spans = [dict(r.extra) | {"category": r.category}
             for r in mon.trace if "trace_id" in dict(r.extra)]
    trace_ids = {s["trace_id"] for s in spans}
    assert len(trace_ids) == 1
    cats = {s["category"] for s in spans}
    assert {"write", "read", "redistribute", "transport"} <= cats


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

def test_histogram_percentiles_match_numpy():
    rng = np.random.default_rng(42)
    samples = rng.lognormal(mean=-6.0, sigma=1.5, size=5000)
    h = Histogram("lat")
    for s in samples:
        h.observe(float(s))
    for q in (50, 95, 99):
        want = float(np.quantile(samples, q / 100))
        got = h.percentile(q)
        assert got == pytest.approx(want, rel=0.15)
    assert h.percentile(0) == pytest.approx(samples.min())
    assert h.percentile(100) == pytest.approx(samples.max())
    assert h.mean == pytest.approx(samples.mean())


def test_registry_merge_counters_gauges_histograms():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("c").inc(3)
    b.counter("c").inc(4)
    b.counter("only_b").inc(1)
    a.gauge("g").set(5)
    b.gauge("g").set(2)
    a.histogram("h").observe(1.0)
    b.histogram("h").observe(2.0)
    a.merge_from(b)
    snap = a.snapshot()
    assert snap["counters"]["c"] == 7
    assert snap["counters"]["only_b"] == 1
    assert snap["gauges"]["g"]["value"] == 5  # gauges keep the running max
    assert a.histogram("h").count == 2


def test_labeled_series_are_distinct_and_key_stably():
    from repro.obs.metrics import label_key

    reg = MetricsRegistry()
    plain = reg.counter("steps")
    s1 = reg.counter("steps", labels={"stream": "s1"})
    s2 = reg.counter("steps", labels={"tenant": "t", "stream": "s2"})
    plain.inc(1)
    s1.inc(2)
    s2.inc(3)
    assert reg.counter("steps") is plain
    assert reg.counter("steps", labels={"stream": "s1"}) is s1
    snap = reg.snapshot()
    assert snap["counters"]["steps"] == 1
    assert snap["counters"]['steps{stream="s1"}'] == 2
    # Label order is canonical (sorted), so key construction is stable.
    assert label_key("steps", {"tenant": "t", "stream": "s2"}) == \
        'steps{stream="s2",tenant="t"}'
    assert snap["counters"][label_key("steps", {"stream": "s2", "tenant": "t"})] == 3


def test_merge_from_is_label_aware():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("c", labels={"stream": "s1"}).inc(1)
    b.counter("c", labels={"stream": "s1"}).inc(2)
    b.counter("c").inc(10)                       # unlabeled sibling
    b.gauge("g", labels={"stream": "s1"}).set(4)
    a.gauge("g", labels={"stream": "s1"}).set(9)
    b.histogram("h", labels={"stream": "s1"}).observe(1.0)
    a.merge_from(b)
    snap = a.snapshot()
    assert snap["counters"]['c{stream="s1"}'] == 3   # same labels fold
    assert snap["counters"]["c"] == 10               # never into the sibling
    assert snap["gauges"]['g{stream="s1"}']["value"] == 9
    merged = a.histogram("h", labels={"stream": "s1"})
    assert merged.count == 1 and merged.labels == {"stream": "s1"}


def test_transport_stats_flow_into_monitor_report():
    from repro.transport.shm import ShmChannel

    mon = PerfMonitor()
    chan = ShmChannel(monitor=mon)
    chan.send(b"x" * 100)
    assert chan.recv() == b"x" * 100
    chan.close()
    report = mon.report()
    assert "shm.queue.enqueued" in report
    assert "shm.bytes_sent" in report


def test_rdma_channel_records_transport_and_regcache():
    from repro.machine import smoky
    from repro.transport.rdma import NntiFabric, RdmaChannel

    mon = PerfMonitor()
    fabric = NntiFabric(smoky(4).interconnect)
    a, b = fabric.endpoint(0, "a"), fabric.endpoint(1, "b")
    conn = fabric.connect(a, b)
    chan = RdmaChannel(conn, a, monitor=mon)
    t = chan.send(b"y" * 100_000)
    assert t > 0
    assert chan.recv() == b"y" * 100_000
    chan.emit_stats()
    assert mon.aggregate("transport").count == 1
    report = mon.report()
    assert "rdma.bytes_sent" in report
    assert "rdma.regcache.a.hits" in report


# ---------------------------------------------------------------------------
# Record round-trip + merge
# ---------------------------------------------------------------------------

def test_as_dict_namespaces_colliding_extras_and_round_trips():
    rec = TraceRecord(
        category="c", name="n", start=1.0, duration=2.0, bytes=3,
        extra=(("name", "evil"), ("x.name", "evil2"), ("ok", 7)),
    )
    d = rec.as_dict()
    assert d["name"] == "n"  # core field wins
    assert d["x.name"] == "evil"
    assert d["x.x.name"] == "evil2"
    assert d["ok"] == 7
    back = TraceRecord.from_dict(d)
    assert dict(back.extra) == dict(rec.extra)  # extras come back sorted
    assert (back.category, back.name, back.start, back.duration, back.bytes) == \
        ("c", "n", 1.0, 2.0, 3)
    # A second round-trip is exactly stable.
    assert TraceRecord.from_dict(back.as_dict()) == back


def test_merge_from_folds_memory_counters():
    a, b = PerfMonitor(), PerfMonitor()
    a.alloc(100)
    b.alloc(300)
    b.free(50)
    a.merge_from(b)
    assert a.current_alloc_bytes == 350
    assert a.peak_alloc_bytes == 350


# ---------------------------------------------------------------------------
# Export + analysis
# ---------------------------------------------------------------------------

def _synthetic_records():
    """One trace: write [0,4] with transport child [1,3]; plus a flat rec."""
    def span(cat, name, start, dur, sid, parent, nbytes=0):
        return {"category": cat, "name": name, "start": start, "duration": dur,
                "bytes": nbytes, "trace_id": "t1", "span_id": sid,
                "parent_id": parent}
    return [
        span("write", "w", 0.0, 4.0, "s1", ""),
        span("transport", "x", 1.0, 2.0, "s2", "s1", nbytes=1000),
        {"category": "flat", "name": "f", "start": 0.0, "duration": 1.0, "bytes": 0},
    ]


def test_perfetto_export_schema(tmp_path):
    mon = PerfMonitor(tracing=True)
    with mon.span("write", "w"):
        pass
    path = tmp_path / "trace.json"
    n = mon.export_perfetto(str(path))
    doc = json.loads(path.read_text())
    assert isinstance(doc["traceEvents"], list)
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == 1 and n == len(doc["traceEvents"])
    ev = xs[0]
    for key in ("name", "cat", "ts", "dur", "pid", "tid", "args"):
        assert key in ev
    assert any(e["ph"] == "M" for e in doc["traceEvents"])


def test_is_span_record_and_build_traces():
    recs = _synthetic_records()
    assert [is_span_record(r) for r in recs] == [True, True, False]
    traces = build_traces(recs)
    assert set(traces) == {"t1"}
    (root,) = traces["t1"]
    assert root.name == "w" and len(root.children) == 1
    assert root.exclusive == pytest.approx(2.0)


def test_stage_breakdown_and_bottleneck():
    stats = {s.stage: s for s in stage_breakdown(_synthetic_records())}
    assert stats["write"].exclusive_time == pytest.approx(2.0)
    assert stats["transport"].exclusive_time == pytest.approx(2.0)
    assert stats["transport"].total_bytes == 1000
    hint = find_bottleneck(_synthetic_records())
    assert hint is not None
    assert hint.stage in ("write", "transport")
    assert 0 < hint.share <= 1
    assert "bottleneck" in str(hint)


def test_critical_path_follows_children_that_outlast_parent():
    def span(cat, start, dur, sid, parent):
        return {"category": cat, "name": cat, "start": start, "duration": dur,
                "bytes": 0, "trace_id": "t1", "span_id": sid, "parent_id": parent}
    recs = [
        span("write", 0.0, 1.0, "s1", ""),
        span("read", 2.0, 3.0, "s2", "s1"),       # outlasts the root
        span("transport", 2.5, 1.0, "s3", "s2"),
        span("read", 2.2, 0.1, "s4", "s1"),       # concurrent with s2, off-path
    ]
    (root,) = build_traces(recs)["t1"]
    path = [h.node.span_id for h in critical_path(root)]
    assert path == ["s1", "s2", "s3"]


def test_find_bottleneck_none_without_spans():
    assert find_bottleneck([{"category": "flat", "name": "f",
                             "start": 0.0, "duration": 1.0}]) is None


def test_to_perfetto_on_plain_dicts():
    doc = to_perfetto(_synthetic_records())
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == 3  # flat records are shown too, on their own track
    span_events = [e for e in xs if "span_id" in e["args"]]
    assert len(span_events) == 2
    assert all(e["ts"] >= 0 for e in xs)


def test_to_perfetto_empty_records_is_valid():
    doc = to_perfetto([])
    json.dumps(doc)  # serializable
    assert [e["ph"] for e in doc["traceEvents"]] == ["M"]  # just process meta


def test_to_perfetto_open_span_renders_zero_length_and_tagged():
    rec = {"trace_id": "t1", "span_id": "s1", "name": "w", "category": "write",
           "start": 1.0, "duration": None}
    doc = to_perfetto([rec])
    (ev,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert ev["dur"] == 0.0
    assert ev["args"]["open"] is True
    json.dumps(doc)


def test_to_perfetto_merge_duplicate_span_emitted_once():
    rec = {"trace_id": "t1", "span_id": "s1", "name": "w", "category": "write",
           "start": 1.0, "duration": 2.0}
    # The same record folded in twice via merge_from.
    doc = to_perfetto([rec, dict(rec)])
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == 1


def test_to_perfetto_colliding_span_ids_stay_unique():
    a = {"trace_id": "t1", "span_id": "s1", "name": "w", "category": "write",
         "start": 1.0, "duration": 2.0}
    b = dict(a, name="other", start=5.0)  # different span, same id
    doc = to_perfetto([a, b])
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    ids = [e["args"]["span_id"] for e in xs]
    assert len(set(ids)) == 2
    assert ids[0] == "s1" and ids[1] == "s1~2"
    assert xs[1]["args"]["span_id_collision"] == "s1"


# ---------------------------------------------------------------------------
# Prometheus exposition + live server
# ---------------------------------------------------------------------------

def _labeled_registry():
    reg = MetricsRegistry()
    reg.counter("dataplane.drain.steps_committed").inc(5)
    reg.gauge("dataplane.drain.queue_depth").set(2)
    reg.histogram("latency.writer_visible").observe(0.25)
    reg.gauge("health.verdict", labels={"stream": "s1"}).set(1)
    return reg


def test_render_prometheus_valid_and_label_injected():
    from repro.obs.live import render_prometheus, validate_exposition

    text = render_prometheus({"s1": _labeled_registry()})
    assert validate_exposition(text) == []
    assert '# TYPE flexio_dataplane_drain_steps_committed counter' in text
    assert 'flexio_dataplane_drain_steps_committed{stream="s1"} 5' in text
    # Histogram renders as a summary with quantiles + _sum/_count.
    assert 'quantile="0.99"' in text
    assert 'flexio_latency_writer_visible_count{stream="s1"} 1' in text
    # Instrument labels merge with the injected stream label.
    assert 'flexio_health_verdict{stream="s1"} 1' in text


def test_render_prometheus_one_type_line_across_streams():
    from repro.obs.live import render_prometheus, validate_exposition

    regs = {"s1": _labeled_registry(), "s2": _labeled_registry(), "": _labeled_registry()}
    text = render_prometheus(regs)
    assert validate_exposition(text) == []
    type_lines = [l for l in text.splitlines()
                  if l.startswith("# TYPE flexio_dataplane_drain_steps_committed ")]
    assert len(type_lines) == 1
    # The "" registry's samples carry no stream label.
    assert "\nflexio_dataplane_drain_steps_committed 5\n" in text


def test_validate_exposition_catches_violations():
    from repro.obs.live import validate_exposition

    bad = (
        "# TYPE m counter\n"
        "# TYPE m counter\n"          # duplicate TYPE
        "m 1\n"
        "untyped_sample 2\n"          # no TYPE declaration
        "malformed{ 3\n"              # bad sample shape
        "# TYPE x bogus_kind\n"       # unknown type
    )
    problems = validate_exposition(bad)
    assert len(problems) == 4
    assert validate_exposition("# TYPE ok gauge\nok 1\nok_sum 2\n") == []


class _FakeState:
    def __init__(self, reg, closed=False, error=None):
        self.monitor = type("M", (), {"metrics": reg})()
        self.closed = closed
        self.error = error
        self.active_transport = "shm"


def test_live_server_serves_all_endpoints_over_http():
    import urllib.request

    from repro.obs import recorder
    from repro.obs.events import EV_STEP_COMMIT
    from repro.obs.live import LiveTelemetryServer, validate_exposition

    recorder.reset()
    recorder.record(EV_STEP_COMMIT, stream="s1", step=0)
    states = {"s1": _FakeState(_labeled_registry()),
              "s2": _FakeState(MetricsRegistry(), error="boom")}
    server = LiveTelemetryServer(states=lambda: states)
    try:
        host, port = server.start()
        assert port != 0

        def get(path):
            with urllib.request.urlopen(f"{server.url}{path}", timeout=5) as r:
                return r.read().decode()

        assert validate_exposition(get("/metrics")) == []
        events = [json.loads(l) for l in get("/events?stream=s1").splitlines()]
        assert events and events[-1]["code"] == EV_STEP_COMMIT
        health = json.loads(get("/health"))
        assert set(health) == {"s1", "s2"}
        rows = {r["stream"]: r for r in json.loads(get("/streams"))["streams"]}
        assert rows["s1"]["state"] == "open"
        assert rows["s2"]["state"] == "failed"
        assert rows["s1"]["transport"] == "shm"
        index = json.loads(get("/"))
        assert "/metrics" in index["endpoints"]
        with pytest.raises(urllib.error.HTTPError) as exc:
            get("/nope")
        assert exc.value.code == 404
        assert server.requests >= 6
    finally:
        server.stop()
        recorder.reset()


def test_live_server_rejects_non_get():
    import urllib.error
    import urllib.request

    from repro.obs.live import LiveTelemetryServer

    server = LiveTelemetryServer(states=lambda: {})
    try:
        server.start()
        req = urllib.request.Request(
            f"{server.url}/metrics", data=b"x", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=5)
        assert exc.value.code == 405
    finally:
        server.stop()


# ---------------------------------------------------------------------------
# Hint consumers + event bracketing
# ---------------------------------------------------------------------------

def test_policy_from_hint_adjusts_budget():
    from repro.core.adaptive import AdaptivePolicy, policy_from_hint
    from repro.obs import BottleneckHint

    base = AdaptivePolicy()
    plugin_bound = policy_from_hint(
        BottleneckHint("dc_plugin", 0.6, 1.0, ""), base)
    assert plugin_bound.writer_cpu_budget == pytest.approx(base.writer_cpu_budget / 2)
    write_bound = policy_from_hint(BottleneckHint("write", 0.6, 1.0, ""), base)
    assert write_bound.writer_cpu_budget > base.writer_cpu_budget
    assert write_bound.reducer_ratio >= base.reducer_ratio
    neutral = policy_from_hint(BottleneckHint("redistribute", 0.6, 1.0, ""), base)
    assert neutral == base


def test_scheduler_apply_hint_raises_bound_when_transport_bound():
    from repro.core.adaptive import AdaptiveGetScheduler
    from repro.obs import BottleneckHint

    sched = AdaptiveGetScheduler(initial=4, max_bound=16)
    sched.apply_hint(BottleneckHint("transport", 0.7, 1.0, ""))
    assert 4 < sched.max_concurrent <= 16
    before = AdaptiveGetScheduler(initial=4).max_concurrent
    sched2 = AdaptiveGetScheduler(initial=4)
    sched2.apply_hint(BottleneckHint("write", 0.7, 1.0, ""))
    assert sched2.max_concurrent == before


def test_simcore_trace_event_brackets_event_lifetime():
    from repro.simcore import Environment
    from repro.simcore.events import trace_event

    env = Environment()
    mon = PerfMonitor(clock=lambda: env.now, tracing=True)
    ev = env.timeout(5.0)
    trace_event(ev, mon, "transport", "bulk_get", flow=1)
    env.run()
    spans = [r for r in mon.trace if "trace_id" in dict(r.extra)]
    assert len(spans) == 1
    assert spans[0].duration == pytest.approx(5.0)
    assert ("flow", 1) in spans[0].extra


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_trace_cli_reports_breakdown_and_bottleneck(tmp_path, capsys):
    import io

    from repro.tools.trace import main as trace_main

    clock = FakeClock()
    mon = PerfMonitor(clock=clock, tracing=True)
    with mon.span("write", "w"):
        clock.tick(1.0)
        with mon.span("transport", "w", nbytes=4096):
            clock.tick(3.0)
    dump = tmp_path / "dump.jsonl"
    mon.dump(str(dump))
    out = io.StringIO()
    rc = trace_main([str(dump), "--perfetto", str(tmp_path / "p.json")], out=out)
    text = out.getvalue()
    assert rc == 0
    assert "2 spans" in text
    assert "transport" in text
    assert "critical path" in text
    assert "bottleneck: transport" in text
    doc = json.loads((tmp_path / "p.json").read_text())
    assert doc["traceEvents"]


def test_trace_cli_complains_without_spans(tmp_path):
    import io

    mon = PerfMonitor()
    mon.record("x", "y", start=0.0, duration=1.0)
    dump = tmp_path / "dump.jsonl"
    mon.dump(str(dump))
    from repro.tools.trace import main as trace_main
    out = io.StringIO()
    assert trace_main([str(dump)], out=out) == 1
    assert "no span records" in out.getvalue()


# ---------------------------------------------------------------------------
# Central metric-name registry (repro.obs.names)
# ---------------------------------------------------------------------------

def test_metric_registry_static_names_are_validated():
    from repro.obs import names

    assert names.validate_metric("transport.copies") == "transport.copies"
    # Extending a registered family root is valid by construction.
    assert names.validate_metric("faults.injected.torn_frame")
    with pytest.raises(names.UnknownMetricError) as exc:
        names.validate_metric("transport.copiez")
    # The error suggests the nearest registered name.
    assert "transport.copies" in str(exc.value)


def test_metric_name_builds_family_members():
    from repro.obs import names

    assert (
        names.metric_name(names.F_FAULTS_INJECTED, "torn_frame")
        == "faults.injected.torn_frame"
    )
    assert (
        names.metric_name(names.F_SHM_QUEUE, "depth") == "shm.queue.depth"
    )
    # Extended roots (per-endpoint regcache prefixes) are accepted too.
    assert (
        names.metric_name("rdma.regcache.nodeA", "hits")
        == "rdma.regcache.nodeA.hits"
    )


def test_metric_name_rejects_unregistered_family():
    from repro.obs import names

    with pytest.raises(names.UnknownMetricError):
        names.metric_name("totally.adhoc", "x")
    # register_family is the escape hatch for new subsystems.
    names.register_family("totally.adhoc", "test-only family")
    try:
        assert names.metric_name("totally.adhoc", "x") == "totally.adhoc.x"
    finally:
        names.FAMILIES.pop("totally.adhoc", None)


def test_metric_registry_matches_linted_vocabulary():
    """The FXL013 vocabulary and the runtime registry are the same
    object: a name the linter accepts is a name the registry knows."""
    from repro.analysis.flexlint import LintConfig
    from repro.obs import names

    cfg = LintConfig()
    assert cfg.metric_names is None  # linter defaults to the registry
    assert "transport.copies" in names.METRIC_NAMES
    assert all(root in names.FAMILIES for root in names.FAMILY_ROOTS)
