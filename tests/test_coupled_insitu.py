"""Tests for combined functional+timed in-situ runs."""

import numpy as np
import pytest

from repro.core import PluginSide, stream_registry
from repro.core.plugins import sampling_plugin
from repro.coupled.insitu import InSituRun
from repro.machine import smoky

CONFIG = """
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="float64" dimensions="n,4"/>
  </adios-group>
  <method group="particles" method="FLEXPATH">caching=ALL</method>
</adios-config>
"""


@pytest.fixture(autouse=True)
def fresh_registry():
    stream_registry.reset()
    yield
    stream_registry.reset()


def make_run(
    stream="insitu.test",
    writer_cores=(0, 1, 2, 3),
    reader_cores=(4, 5),
    n=2000,
    steps=3,
    compute=5.0,
):
    def generator(rank, step):
        rng = np.random.default_rng(100 * rank + step)
        return {"zion": rng.normal(size=(n, 4))}

    def analytics(record, step):
        return float(record["zion"].mean())

    return InSituRun(
        machine=smoky(4),
        config_xml=CONFIG,
        group="particles",
        stream_name=stream,
        generator=generator,
        analytics=analytics,
        writer_cores=list(writer_cores),
        reader_cores=list(reader_cores),
        compute_time_per_step=compute,
        analytics_time_per_byte=1e-8,
        num_steps=steps,
    )


def test_real_results_and_simulated_time():
    run = make_run()
    result = run.run()
    # Real analytics outputs: one per (step, writer).
    assert len(result.analytics_outputs) == 3 * 4
    for mean in result.analytics_outputs:
        assert abs(mean) < 0.2  # real statistics of the real data
    # Simulated time: at least the serial compute phases.
    assert result.simulated_time >= 3 * 5.0
    assert result.movement_time > 0
    assert result.analytics_time > 0
    assert result.steps == 3


def test_movement_locality_split():
    """Writers on node 0 feeding readers on node 0 move intra-node; a
    remote reader pays inter-node."""
    local = make_run(stream="local", writer_cores=(0, 1, 2, 3), reader_cores=(4, 5)).run()
    assert local.inter_node_bytes == 0
    assert local.intra_node_bytes > 0
    remote = make_run(stream="remote", writer_cores=(0, 1, 2, 3),
                      reader_cores=(16, 17)).run()
    assert remote.inter_node_bytes > 0


def test_staging_run_slower_than_helper_run():
    helper = make_run(stream="h", reader_cores=(4, 5)).run()
    staging = make_run(stream="s", reader_cores=(16, 17)).run()
    assert staging.movement_time > helper.movement_time
    assert staging.simulated_time >= helper.simulated_time


def test_writer_side_codelet_cuts_the_movement_bill():
    """The headline integration: a sampling codelet deployed writer-side
    reduces the *simulated* movement charge because charges derive from
    the actually-conditioned byte counts."""
    plain = make_run(stream="plain").run()

    from repro.adios import RankContext

    sampled_run = make_run(stream="sampled")
    # Deploy before any step flows.
    state = stream_registry.create("sampled", RankContext(0, 4))
    state.plugins.deploy(sampling_plugin(4), PluginSide.WRITER)
    sampled = sampled_run.run()

    total_plain = plain.intra_node_bytes + plain.inter_node_bytes
    total_sampled = sampled.intra_node_bytes + sampled.inter_node_bytes
    assert total_sampled == pytest.approx(total_plain / 4, rel=0.05)
    assert sampled.movement_time < plain.movement_time
    # And the analytics really saw 4x fewer particles.
    assert len(sampled.analytics_outputs) == len(plain.analytics_outputs)


def test_validation():
    with pytest.raises(ValueError):
        make_run(steps=0).run if False else InSituRun(
            machine=smoky(2), config_xml=CONFIG, group="particles",
            stream_name="x", generator=lambda r, s: {}, analytics=lambda r, s: None,
            writer_cores=[0], reader_cores=[1], compute_time_per_step=1.0,
            num_steps=0,
        )
    with pytest.raises(ValueError):
        InSituRun(
            machine=smoky(2), config_xml=CONFIG, group="particles",
            stream_name="x", generator=lambda r, s: {}, analytics=lambda r, s: None,
            writer_cores=[], reader_cores=[1], compute_time_per_step=1.0,
        )
