"""Tests for bounding-box algebra and block decompositions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adios import BoundingBox, block_decompose, intersect
from repro.adios.selection import assemble, choose_grid


# ---------------------------------------------------------------------------
# BoundingBox
# ---------------------------------------------------------------------------

def test_box_basics():
    b = BoundingBox((2, 3), (4, 5))
    assert b.ndim == 2
    assert b.end == (6, 8)
    assert b.size == 20
    assert not b.is_empty


def test_box_validation():
    with pytest.raises(ValueError):
        BoundingBox((0,), (1, 1))
    with pytest.raises(ValueError):
        BoundingBox((-1,), (1,))
    with pytest.raises(ValueError):
        BoundingBox((0,), (-1,))


def test_box_empty():
    assert BoundingBox((0, 0), (0, 5)).is_empty


def test_box_contains():
    outer = BoundingBox((0, 0), (10, 10))
    inner = BoundingBox((2, 3), (4, 5))
    assert outer.contains(inner)
    assert not inner.contains(outer)
    assert outer.contains(outer)


def test_box_slices_global_and_relative():
    b = BoundingBox((2, 3), (4, 5))
    assert b.slices() == (slice(2, 6), slice(3, 8))
    container = BoundingBox((2, 0), (8, 8))
    assert b.slices(relative_to=container) == (slice(0, 4), slice(3, 8))


def test_box_slices_relative_requires_containment():
    b = BoundingBox((0, 0), (4, 4))
    other = BoundingBox((2, 2), (4, 4))
    with pytest.raises(ValueError):
        b.slices(relative_to=other)


# ---------------------------------------------------------------------------
# intersect
# ---------------------------------------------------------------------------

def test_intersect_overlapping():
    a = BoundingBox((0, 0), (5, 5))
    b = BoundingBox((3, 2), (5, 5))
    ov = intersect(a, b)
    assert ov == BoundingBox((3, 2), (2, 3))


def test_intersect_disjoint():
    a = BoundingBox((0,), (5,))
    b = BoundingBox((5,), (3,))  # touching, not overlapping
    assert intersect(a, b) is None


def test_intersect_contained():
    a = BoundingBox((0, 0), (10, 10))
    b = BoundingBox((4, 4), (2, 2))
    assert intersect(a, b) == b


def test_intersect_dim_mismatch():
    with pytest.raises(ValueError):
        intersect(BoundingBox((0,), (1,)), BoundingBox((0, 0), (1, 1)))


@settings(max_examples=60, deadline=None)
@given(
    sa=st.tuples(st.integers(0, 50), st.integers(0, 50)),
    ca=st.tuples(st.integers(1, 20), st.integers(1, 20)),
    sb=st.tuples(st.integers(0, 50), st.integers(0, 50)),
    cb=st.tuples(st.integers(1, 20), st.integers(1, 20)),
)
def test_property_intersection_commutes_and_is_contained(sa, ca, sb, cb):
    a, b = BoundingBox(sa, ca), BoundingBox(sb, cb)
    ab, ba = intersect(a, b), intersect(b, a)
    assert ab == ba
    if ab is not None:
        assert a.contains(ab) and b.contains(ab)
        assert ab.size <= min(a.size, b.size)


# ---------------------------------------------------------------------------
# block_decompose
# ---------------------------------------------------------------------------

def test_decompose_even():
    boxes = block_decompose((8, 6), (2, 3))
    assert len(boxes) == 6
    assert boxes[0] == BoundingBox((0, 0), (4, 2))
    assert boxes[-1] == BoundingBox((4, 4), (4, 2))


def test_decompose_remainder_spread_leading():
    boxes = block_decompose((7,), (3,))
    assert [b.count[0] for b in boxes] == [3, 2, 2]
    assert [b.start[0] for b in boxes] == [0, 3, 5]


def test_decompose_covers_exactly():
    boxes = block_decompose((9, 9), (3, 3))
    total = sum(b.size for b in boxes)
    assert total == 81
    # Disjointness: pairwise intersections are empty.
    for i, a in enumerate(boxes):
        for b in boxes[i + 1 :]:
            assert intersect(a, b) is None


def test_decompose_row_major_order():
    boxes = block_decompose((4, 4), (2, 2))
    starts = [b.start for b in boxes]
    assert starts == [(0, 0), (0, 2), (2, 0), (2, 2)]


def test_decompose_validation():
    with pytest.raises(ValueError):
        block_decompose((4,), (2, 2))
    with pytest.raises(ValueError):
        block_decompose((4, 4), (0, 2))
    with pytest.raises(ValueError):
        block_decompose((-4,), (2,))


@settings(max_examples=50, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 40), st.integers(1, 40)),
    grid=st.tuples(st.integers(1, 5), st.integers(1, 5)),
)
def test_property_decompose_partition(shape, grid):
    """Blocks tile the global array exactly: full coverage, no overlap."""
    boxes = block_decompose(shape, grid)
    cover = np.zeros(shape, dtype=int)
    for b in boxes:
        cover[b.slices()] += 1
    assert (cover == 1).all()


# ---------------------------------------------------------------------------
# choose_grid
# ---------------------------------------------------------------------------

def test_choose_grid_products():
    for n in (1, 2, 6, 12, 64, 100, 128):
        for d in (1, 2, 3):
            g = choose_grid(n, d)
            assert len(g) == d
            prod = 1
            for f in g:
                prod *= f
            assert prod == n


def test_choose_grid_near_cubic():
    g = choose_grid(64, 3)
    assert sorted(g) == [4, 4, 4]
    g2 = choose_grid(16, 2)
    assert sorted(g2) == [4, 4]


def test_choose_grid_validation():
    with pytest.raises(ValueError):
        choose_grid(0, 2)
    with pytest.raises(ValueError):
        choose_grid(4, 0)


# ---------------------------------------------------------------------------
# assemble
# ---------------------------------------------------------------------------

def test_assemble_from_blocks():
    global_shape = (6, 6)
    grid = (2, 2)
    boxes = block_decompose(global_shape, grid)
    full = np.arange(36.0).reshape(global_shape)
    blocks = [(b, full[b.slices()].copy()) for b in boxes]
    target = BoundingBox((1, 1), (4, 4))
    out = assemble(target, iter(blocks))
    np.testing.assert_array_equal(out, full[1:5, 1:5])


def test_assemble_partial_coverage_leaves_fill():
    target = BoundingBox((0,), (4,))
    blocks = [(BoundingBox((0,), (2,)), np.ones(2))]
    out = assemble(target, iter(blocks), fill=-1)
    np.testing.assert_array_equal(out, [1, 1, -1, -1])


def test_assemble_shape_mismatch_rejected():
    target = BoundingBox((0,), (4,))
    with pytest.raises(ValueError):
        assemble(target, iter([(BoundingBox((0,), (2,)), np.ones(3))]))
