"""Tests for XML-hint-driven stream behaviour (caching/batching/buffering)."""

import numpy as np
import pytest

from repro.adios import Adios, RankContext, block_decompose
from repro.adios.config import MethodSpec
from repro.core import CachingOption, stream_registry
from repro.core.stream import StreamError, StreamHints

CONFIG_TMPL = """
<adios-config>
  <adios-group name="fields">
    <var name="temp" type="float64" dimensions="8,8"/>
    <var name="pressure" type="float64" dimensions="8,8"/>
  </adios-group>
  <method group="fields" method="FLEXPATH">{params}</method>
</adios-config>
"""


@pytest.fixture(autouse=True)
def fresh_registry():
    stream_registry.reset()
    yield
    stream_registry.reset()


def run_stream(params, steps=3, vars_per_step=("temp",), name="hints.test"):
    """Write `steps` steps of global arrays and read them back; returns
    (handshake message records, stream state)."""
    ad = Adios.from_xml(CONFIG_TMPL.format(params=params))
    shape = (8, 8)
    boxes = block_decompose(shape, (2, 2))
    writers = [ad.open_write("fields", name, RankContext(r, 4)) for r in range(4)]
    full = np.arange(64.0).reshape(shape)
    for _ in range(steps):
        for r, w in enumerate(writers):
            for var in vars_per_step:
                w.write(var, full[boxes[r].slices()].copy(), box=boxes[r], global_shape=shape)
        for w in writers:
            w.end_step()
    for w in writers:
        w.close()

    reader = ad.open_read("fields", name, RankContext(0, 1))
    state = stream_registry._states[name]
    for s in range(steps):
        for var in vars_per_step:
            np.testing.assert_array_equal(reader.read(var), full)
        if s < steps - 1:
            reader._advance()
    msgs = [
        dict(rec.extra)["messages"]
        for rec in state.monitor.trace
        if rec.category == "handshake"
    ]
    return msgs, state


# ---------------------------------------------------------------------------
# Hint parsing
# ---------------------------------------------------------------------------

def test_hints_from_spec_defaults():
    h = StreamHints.from_spec(MethodSpec("g", "FLEXPATH", {}))
    assert h.caching is CachingOption.NO_CACHING
    assert not h.batching and not h.sync and not h.xpmem
    assert h.buffer_steps == 4


def test_hints_from_spec_full():
    spec = MethodSpec(
        "g", "FLEXPATH",
        {"caching": "ALL", "batching": "true", "sync": "yes",
         "xpmem": "1", "buffer_steps": "9"},
    )
    h = StreamHints.from_spec(spec)
    assert h.caching is CachingOption.CACHING_ALL
    assert h.batching and h.sync and h.xpmem
    assert h.buffer_steps == 9


def test_hints_bad_caching_rejected():
    with pytest.raises(StreamError):
        StreamHints.from_spec(MethodSpec("g", "FLEXPATH", {"caching": "sometimes"}))


# ---------------------------------------------------------------------------
# Handshake accounting behaviour
# ---------------------------------------------------------------------------

def test_no_caching_pays_every_step():
    msgs, _ = run_stream("caching=NONE", steps=3)
    assert len(msgs) == 3
    assert msgs[0] == msgs[1] == msgs[2] > 0


def test_caching_all_free_after_first_step():
    msgs, _ = run_stream("caching=ALL", steps=3)
    assert msgs[0] > 0
    assert msgs[1] == msgs[2] == 0


def test_caching_local_cheaper_than_none():
    none_msgs, _ = run_stream("caching=NONE", steps=2, name="a")
    stream_registry.reset()
    local_msgs, _ = run_stream("caching=LOCAL", steps=2, name="b")
    assert local_msgs[1] < none_msgs[1]
    assert local_msgs[1] > 0


def test_batching_one_round_per_step():
    unbatched, _ = run_stream("caching=NONE;batching=false",
                              vars_per_step=("temp", "pressure"), name="u")
    stream_registry.reset()
    batched, _ = run_stream("caching=NONE;batching=true",
                            vars_per_step=("temp", "pressure"), name="b")
    # Two variables: unbatched pays two rounds per step, batched one.
    assert len(unbatched) == 2 * len(batched)


def test_changed_distribution_invalidates_caches():
    """Particle-movement scenario: writer block shapes change mid-stream."""
    stream_registry.reset()
    ad = Adios.from_xml(CONFIG_TMPL.format(params="caching=ALL"))
    name = "drift.test"
    shape = (8, 8)
    w = ad.open_write("fields", name, RankContext(0, 1))
    from repro.adios import BoundingBox

    w.write("temp", np.zeros((8, 8)), box=BoundingBox((0, 0), (8, 8)), global_shape=shape)
    w.end_step()
    w.write("temp", np.zeros((8, 8)), box=BoundingBox((0, 0), (8, 8)), global_shape=shape)
    w.end_step()
    # Step 3 arrives with a different (split) distribution.
    w2 = ad.open_write("fields", name, RankContext(0, 1))
    del w2  # same writer set; just vary the box below
    w.write("temp", np.zeros((4, 8)), box=BoundingBox((0, 0), (4, 8)), global_shape=shape)
    w.write("temp2_pad", np.zeros(1))  # noqa - fills nothing
    w.end_step()
    w.close()

    reader = ad.open_read("fields", name, RankContext(0, 1))
    state = stream_registry._states[name]
    reader.read("temp")
    reader._advance()
    reader.read("temp")  # cached: free
    reader._advance()
    reader.read("temp", start=(0, 0), count=(4, 8))  # new distribution
    msgs = [
        dict(rec.extra)["messages"]
        for rec in state.monitor.trace
        if rec.category == "handshake"
    ]
    assert msgs[0] > 0 and msgs[1] == 0 and msgs[2] > 0


def test_backpressure_counter():
    _, state = run_stream("buffer_steps=1", steps=4)
    assert state.backpressure_events > 0
    _, state2 = run_stream("buffer_steps=64", steps=4, name="deep")
    assert state2.backpressure_events == 0


def test_peak_buffered_bytes_tracked():
    _, state = run_stream("caching=NONE", steps=3)
    assert state.peak_buffered_bytes >= 3 * 64 * 8
