"""Unit tests for processes: chaining, interrupts, error propagation."""

import pytest

from repro.simcore import Environment, Interrupt, SimulationError


def test_process_is_awaitable_event():
    env = Environment()

    def child(env):
        yield env.timeout(2)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return f"got {result} at {env.now}"

    assert env.run(env.process(parent(env))) == "got child-result at 2.0"


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_process_must_yield_events():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(TypeError):
        env.run()


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def failing(env):
        yield env.timeout(1)
        raise ValueError("inner failure")

    def parent(env):
        try:
            yield env.process(failing(env))
        except ValueError as exc:
            return f"handled: {exc}"

    assert env.run(env.process(parent(env))) == "handled: inner failure"


def test_unwaited_process_exception_aborts_run():
    env = Environment()

    def failing(env):
        yield env.timeout(1)
        raise ValueError("nobody listens")

    env.process(failing(env))
    with pytest.raises(SimulationError):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append((env.now, intr.cause))
            return "interrupted"
        return "slept"

    def interrupter(env, victim):
        yield env.timeout(5)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    assert env.run(victim) == "interrupted"
    assert log == [(5.0, "wake up")]


def test_interrupt_then_continue_waiting():
    env = Environment()

    def sleeper(env):
        deadline = env.timeout(10)
        try:
            yield deadline
        except Interrupt:
            pass
        # Original timeout still fires at its original time.
        yield deadline
        return env.now

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    assert env.run(victim) == 10.0


def test_interrupt_terminated_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()

    def proc(env):
        with pytest.raises(RuntimeError):
            env.active_process.interrupt()
        yield env.timeout(0)

    env.run(env.process(proc(env)))


def test_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_yield_already_processed_event():
    env = Environment()
    t = env.timeout(1, value="early")
    env.run()

    def proc(env):
        v = yield t  # processed long ago; resumes at the current instant
        return (env.now, v)

    assert env.run(env.process(proc(env))) == (1.0, "early")


def test_many_processes_deterministic():
    """Two identical runs produce identical event orderings."""

    def run_once():
        env = Environment()
        trace = []

        def worker(env, i):
            for step in range(3):
                yield env.timeout(1 + (i % 3) * 0.5)
                trace.append((round(env.now, 3), i, step))

        for i in range(20):
            env.process(worker(env, i))
        env.run()
        return trace

    assert run_once() == run_once()


def test_process_names():
    env = Environment()

    def named_worker(env):
        yield env.timeout(1)

    p = env.process(named_worker(env), name="rank-0")
    assert p.name == "rank-0"
    q = env.process(named_worker(env))
    assert "process" in q.name or "named_worker" in q.name
    env.run()
