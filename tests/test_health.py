"""Snapshot deltas + stream health SLO verdicts + adaptive coupling."""

import pytest

from repro.obs.health import (
    DEGRADATIONS,
    LOSS_RATE_GAUGE,
    P99_GAUGE,
    QUEUE_DEPTH,
    RETRIES,
    STEPS_COMMITTED,
    STEPS_LOST,
    VERDICT_CODES,
    VERDICT_GAUGE,
    WRITER_LATENCY,
    HealthBoard,
    SLOPolicy,
    StreamHealthModel,
    Verdict,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import SnapshotCollector


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def tick(self, dt=1.0):
        self.t += dt
        return self.t


# ---------------------------------------------------------------------------
# SnapshotCollector
# ---------------------------------------------------------------------------

def test_collector_reports_deltas_and_rates():
    clock = FakeClock()
    reg = MetricsRegistry()
    col = SnapshotCollector(reg, clock=clock)
    reg.counter("c").inc(10)
    clock.tick(2.0)
    snap = col.collect()
    assert snap.interval == pytest.approx(2.0)
    assert snap.counter("c") == 10
    assert snap.delta("c") == 10
    assert snap.rate("c") == pytest.approx(5.0)
    # Second window only sees the new increments.
    reg.counter("c").inc(4)
    clock.tick(4.0)
    snap2 = col.collect()
    assert snap2.counter("c") == 14
    assert snap2.delta("c") == 4
    assert snap2.rate("c") == pytest.approx(1.0)
    assert col.collections == 2


def test_collector_exposes_gauges_and_histogram_percentiles():
    clock = FakeClock()
    reg = MetricsRegistry()
    col = SnapshotCollector(reg, clock=clock)
    reg.gauge("depth").set(7)
    for v in (0.01, 0.02, 0.5):
        reg.histogram("lat").observe(v)
    clock.tick()
    snap = col.collect()
    assert snap.gauge_value("depth") == 7
    assert snap.percentile("lat", "p99") == pytest.approx(0.5, rel=0.1)
    assert snap.gauge_value("missing", default=-1) == -1
    assert snap.percentile("missing") == 0.0
    assert snap.as_dict()["counters"] == {}


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------

def _model(policy=None):
    clock = FakeClock()
    reg = MetricsRegistry()
    model = StreamHealthModel("s", reg, policy=policy, clock=clock)
    return clock, reg, model


def test_healthy_stream_stays_healthy():
    clock, reg, model = _model()
    reg.counter(STEPS_COMMITTED).inc(10)
    clock.tick()
    report = model.evaluate()
    assert report.verdict is Verdict.HEALTHY
    assert report.steps_per_s == pytest.approx(10.0)
    assert report.reasons == ()


def test_loss_beyond_slo_is_unhealthy():
    clock, reg, model = _model()
    reg.counter(STEPS_COMMITTED).inc(8)
    reg.counter(STEPS_LOST).inc(2)
    clock.tick()
    report = model.evaluate()
    assert report.verdict is Verdict.UNHEALTHY
    assert report.loss_rate == pytest.approx(0.2)
    assert any("loss rate" in r for r in report.reasons)


def test_loss_within_relaxed_slo_is_not_unhealthy():
    clock, reg, model = _model(SLOPolicy(max_loss_rate=0.5))
    reg.counter(STEPS_COMMITTED).inc(8)
    reg.counter(STEPS_LOST).inc(2)
    clock.tick()
    assert model.evaluate().verdict is Verdict.HEALTHY


def test_p99_retries_and_degradations_degrade():
    clock, reg, model = _model(SLOPolicy(max_p99_latency=0.1))
    reg.counter(STEPS_COMMITTED).inc(5)
    reg.histogram(WRITER_LATENCY).observe(2.0)
    clock.tick()
    report = model.evaluate()
    assert report.verdict is Verdict.DEGRADED
    assert any("p99" in r for r in report.reasons)

    clock2, reg2, model2 = _model()
    reg2.counter(STEPS_COMMITTED).inc(5)
    reg2.counter(RETRIES).inc(3)
    reg2.counter(DEGRADATIONS).inc(1)
    clock2.tick()
    report2 = model2.evaluate()
    assert report2.verdict is Verdict.DEGRADED
    assert report2.retries == 3
    assert len(report2.reasons) == 2


def test_stall_detection_requires_queued_work_and_no_progress():
    clock, reg, model = _model(SLOPolicy(stall_window=5.0))
    reg.counter(STEPS_COMMITTED).inc(1)
    reg.gauge(QUEUE_DEPTH).set(3)
    clock.tick(1.0)
    assert model.evaluate().verdict is Verdict.HEALTHY  # progress this window
    clock.tick(3.0)
    assert model.evaluate().verdict is Verdict.HEALTHY  # not stalled yet
    clock.tick(3.0)
    report = model.evaluate()  # 6s > stall_window with depth 3, no commits
    assert report.verdict is Verdict.STALLED
    assert any("queued" in r for r in report.reasons)
    # Progress resets the stall clock.
    reg.counter(STEPS_COMMITTED).inc(1)
    clock.tick(1.0)
    assert model.evaluate().verdict is Verdict.HEALTHY


def test_empty_queue_never_stalls():
    clock, reg, model = _model(SLOPolicy(stall_window=1.0))
    clock.tick(100.0)
    assert model.evaluate().verdict is Verdict.HEALTHY


def test_slo_policy_validation():
    with pytest.raises(ValueError):
        SLOPolicy(max_p99_latency=0)
    with pytest.raises(ValueError):
        SLOPolicy(max_loss_rate=1.5)
    with pytest.raises(ValueError):
        SLOPolicy(stall_window=-1)


# ---------------------------------------------------------------------------
# Publication: labeled gauges + flight events
# ---------------------------------------------------------------------------

def test_verdict_published_as_labeled_gauges():
    clock, reg, model = _model()
    reg.counter(STEPS_COMMITTED).inc(6)
    reg.counter(STEPS_LOST).inc(6)
    clock.tick()
    report = model.evaluate()
    labels = {"stream": "s"}
    assert reg.gauge(VERDICT_GAUGE, labels).value == VERDICT_CODES[Verdict.UNHEALTHY]
    assert reg.gauge(LOSS_RATE_GAUGE, labels).value == pytest.approx(0.5)
    assert reg.gauge(P99_GAUGE, labels).value == report.p99_latency
    # The labeled series is distinct from an unlabeled sibling.
    assert reg.gauge(VERDICT_GAUGE).value == 0.0


def test_verdict_change_lands_in_flight_recorder():
    from repro.obs import recorder
    from repro.obs.events import EV_HEALTH

    rec = recorder.reset()
    clock, reg, model = _model()
    reg.counter(STEPS_COMMITTED).inc(1)
    clock.tick()
    model.evaluate()                      # HEALTHY: first report records
    clock.tick()
    model.evaluate()                      # still HEALTHY: no new event
    reg.counter(STEPS_LOST).inc(5)
    clock.tick()
    model.evaluate()                      # UNHEALTHY: change records
    events = rec.events(code=EV_HEALTH, stream="s")
    assert [dict(e.attrs)["verdict"] for e in events] == [
        "healthy", "unhealthy"
    ]
    recorder.reset()


def test_health_board_samples_duck_typed_states():
    class FakeState:
        def __init__(self, reg):
            self.monitor = type("M", (), {"metrics": reg})()

    clock = FakeClock()
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter(STEPS_COMMITTED).inc(2)
    b.counter(STEPS_LOST).inc(2)
    board = HealthBoard(clock=clock)
    clock.tick()
    reports = board.sample({"a": FakeState(a), "b": FakeState(b)})
    assert reports["a"].verdict is Verdict.HEALTHY
    assert reports["b"].verdict is Verdict.UNHEALTHY
    # Models persist across samples (deltas, not totals).
    clock.tick()
    again = board.sample({"a": FakeState(a), "b": FakeState(b)})
    assert again["b"].verdict is Verdict.HEALTHY  # no NEW losses


# ---------------------------------------------------------------------------
# Adaptive coupling
# ---------------------------------------------------------------------------

def test_scheduler_observe_health_backs_off():
    from repro.core.adaptive import AdaptiveGetScheduler

    clock, reg, model = _model()
    sched = AdaptiveGetScheduler(initial=8, max_bound=16)

    reg.counter(STEPS_COMMITTED).inc(4)
    clock.tick()
    sched.observe_health(model.evaluate())
    assert sched.max_concurrent == 8  # healthy: no change

    reg.counter(RETRIES).inc(1)
    clock.tick()
    sched.observe_health(model.evaluate())
    assert sched.max_concurrent == 7  # degraded: decrement

    reg.counter(STEPS_LOST).inc(9)
    clock.tick()
    sched.observe_health(model.evaluate())
    assert sched.max_concurrent == 3  # unhealthy: halve

    bound = sched.max_concurrent
    for _ in range(8):
        reg.counter(STEPS_LOST).inc(1)
        clock.tick()
        bound = sched.observe_health(model.evaluate())
    assert bound >= sched.min_bound  # floor holds
