"""Network plane tests: frame protocol fuzz, the daemon as a real OS
process, tenancy admission control, and typed transport faults.

Three tiers:

* pure protocol — encode/decode round-trips plus hypothesis fuzz over
  records and over corrupted byte streams (decode never crashes with
  anything but :class:`ProtocolError`);
* in-process daemon — :class:`DirectoryDaemon` started on ephemeral
  ports inside this process: auth failures, quota rejections and the
  reader/writer step exchange, all through real sockets;
* cross-process smoke — ``python -m repro.net.server`` as a separate
  OS process, clients in this one (the two-process acceptance shape).
"""

import os
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.adios import BoundingBox, EndOfStream, StepStatus
from repro.core.directory import (
    AdmissionError,
    AdmissionKind,
    AuthFailure,
    QuotaExceeded,
    TenantSpec,
    UnknownTenant,
)
from repro.core.resilience import RetryPolicy
from repro.net.client import (
    NetError,
    RemoteClient,
    RetryAfter,
    connect,
    parse_flexio_uri,
    raise_wire_error,
)
from repro.net.protocol import (
    HEADER,
    MAGIC,
    PROTOCOL_VERSION,
    MsgType,
    ProtocolError,
    decode_frame,
    decode_var,
    encode_frame,
    encode_var,
)
from repro.net.server import DirectoryDaemon, HostedStream
from repro.transport.faults import PeerDisconnected, SessionLost, TransportFault
from repro.transport.tcp import TcpChannel

REPO = os.path.join(os.path.dirname(__file__), os.pardir)
SRC = os.path.join(REPO, "src")


# ---------------------------------------------------------------------------
# Protocol round-trips + fuzz
# ---------------------------------------------------------------------------

ROUND_TRIP_CASES = [
    (MsgType.HELLO, {"tenant": "acme", "token": "s3cret", "client": "gts",
                     "resume": ""}),
    (MsgType.WELCOME, {"session": "s-1", "server": "1.0.0", "data_port": 7701,
                       "resume": "deadbeef", "resumed": False}),
    (MsgType.ERROR, {"kind": "streams", "message": "at max_streams=2"}),
    (MsgType.OK, {"detail": ""}),
    (MsgType.OPEN, {"stream": "gts.out", "mode": "w", "program": "writer",
                    "rank": 0, "num_ranks": 4, "lease": 0.5}),
    (MsgType.PUBLISH, {"step": 3, "count": 2, "eos": False, "seq": 4}),
    (MsgType.FETCH, {"step": 0}),
    (MsgType.NOT_READY, {"step": 9}),
    (MsgType.EOS, {"step": 4}),
    (MsgType.RETRY_AFTER, {"delay": 0.25, "reason": "draining"}),
]


@pytest.mark.parametrize("msg_type,record", ROUND_TRIP_CASES,
                         ids=[c[0].name for c in ROUND_TRIP_CASES])
def test_frame_round_trip(msg_type, record):
    frame = decode_frame(encode_frame(msg_type, record))
    assert frame.version == PROTOCOL_VERSION
    assert frame.msg_type is msg_type
    assert frame.record == record


def test_var_round_trip_preserves_dtype_and_shape():
    data = np.arange(24, dtype=np.float32).reshape(4, 6)
    rec = {"name": "temp", "writer_rank": 2, "start": [4, 0],
           "shape": [4, 6], "gshape": [8, 6],
           "vmin": 0.0, "vmax": 23.0, "has_stats": True, "data": data}
    wb = encode_var(rec)
    got, nxt = decode_var(wb, 0)
    assert nxt == wb.nbytes
    assert got["name"] == "temp" and got["writer_rank"] == 2
    assert got["vmin"] == 0.0 and got["vmax"] == 23.0 and got["has_stats"]
    assert got["data"].dtype == np.float32 and got["data"].shape == (4, 6)
    np.testing.assert_array_equal(got["data"], data)


def test_multipart_publish_frame_walks_by_consumed_offsets():
    head = encode_frame(
        MsgType.PUBLISH, {"step": 0, "count": 2, "eos": True, "seq": 1}
    )
    v1 = encode_var({"name": "a", "writer_rank": 0, "start": [], "shape": [3],
                     "gshape": [], "vmin": 1.0, "vmax": 1.0,
                     "has_stats": True, "data": np.ones(3)})
    v2 = encode_var({"name": "b", "writer_rank": 1, "start": [0], "shape": [2],
                     "gshape": [4], "vmin": 0.0, "vmax": 0.0,
                     "has_stats": True, "data": np.zeros(2, dtype=np.int64)})
    blob = np.concatenate([w.as_array() for w in (head, v1, v2)])
    frame = decode_frame(blob)
    assert frame.record["count"] == 2 and frame.record["eos"] is True
    rec1, off = decode_var(blob, frame.consumed)
    rec2, end = decode_var(blob, off)
    assert [rec1["name"], rec2["name"]] == ["a", "b"]
    assert end == blob.nbytes


@settings(max_examples=50, deadline=None)
@given(
    tenant=st.text(max_size=64),
    token=st.text(max_size=64),
    client=st.text(max_size=64),
    resume=st.text(max_size=32),
)
def test_fuzz_hello_record_round_trip(tenant, token, client, resume):
    rec = {"tenant": tenant, "token": token, "client": client, "resume": resume}
    assert decode_frame(encode_frame(MsgType.HELLO, rec)).record == rec


@settings(max_examples=50, deadline=None)
@given(
    step=st.integers(min_value=-2**62, max_value=2**62),
    count=st.integers(min_value=0, max_value=2**31),
    eos=st.booleans(),
    seq=st.integers(min_value=0, max_value=2**31),
)
def test_fuzz_publish_record_round_trip(step, count, eos, seq):
    rec = {"step": step, "count": count, "eos": eos, "seq": seq}
    assert decode_frame(encode_frame(MsgType.PUBLISH, rec)).record == rec


@settings(max_examples=100, deadline=None)
@given(
    payload=st.binary(max_size=256),
    flips=st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)),
                   max_size=4),
)
def test_fuzz_corrupted_frames_fail_typed_never_crash(payload, flips):
    """Arbitrary bytes — raw, truncated, or a valid frame with flipped
    bytes — either decode or raise ProtocolError/MarshalError; nothing
    else escapes."""
    base = bytearray(encode_frame(
        MsgType.OPEN,
        {"stream": "s", "mode": "w", "program": "writer",
         "rank": 0, "num_ranks": 1, "lease": 0.0},
    ).as_array().tobytes())
    base[len(base):] = payload
    for pos, val in flips:
        base[pos % len(base)] ^= val
    try:
        decode_frame(bytes(base))
    except ProtocolError:
        pass  # the typed outcome for malformed input
    try:
        decode_frame(payload)
    except ProtocolError:
        pass


def test_version_skew_and_bad_magic_are_protocol_errors():
    good = bytearray(encode_frame(MsgType.OK, {"detail": ""}).as_array().tobytes())
    skew = bytearray(good)
    skew[4] = PROTOCOL_VERSION + 1
    with pytest.raises(ProtocolError, match="version skew"):
        decode_frame(bytes(skew))
    bad_magic = bytearray(good)
    bad_magic[0] ^= 0xFF
    with pytest.raises(ProtocolError, match="magic"):
        decode_frame(bytes(bad_magic))
    with pytest.raises(ProtocolError, match="truncated"):
        decode_frame(good[: HEADER.size - 1])
    assert MAGIC == 0xF1EC0107  # wire constant: changing it is a protocol bump


def test_parse_flexio_uri():
    u = parse_flexio_uri("flexio://127.0.0.1:7700/acme")
    assert (u.scheme, u.host, u.port, u.tenant) == ("flexio", "127.0.0.1", 7700, "acme")
    assert parse_flexio_uri("flexio://h:1").tenant == "public"
    assert parse_flexio_uri("local://").scheme == "local"
    with pytest.raises(ValueError):
        parse_flexio_uri("http://h:1/t")
    with pytest.raises(ValueError):
        parse_flexio_uri("flexio://hostonly/t")


# ---------------------------------------------------------------------------
# In-process daemon: admission control + step exchange over real sockets
# ---------------------------------------------------------------------------

@pytest.fixture()
def daemon():
    d = DirectoryDaemon(
        tenants=[
            TenantSpec("acme", token="s3cret", max_streams=2),
            TenantSpec("public"),
        ],
        telemetry=False,
        lease_interval=0.05,
    )
    d.start()
    yield d
    d.stop()


def uri(d, tenant="acme"):
    return f"flexio://{d.host}:{d.control_port}/{tenant}"


def test_auth_failure_is_typed(daemon):
    with pytest.raises(AuthFailure):
        connect(uri(daemon), token="wrong")
    with pytest.raises(AuthFailure):
        connect(uri(daemon))  # token required but missing
    with pytest.raises(UnknownTenant):
        connect(uri(daemon, tenant="nobody"), token="s3cret")


def test_quota_rejection_third_stream(daemon):
    with connect(uri(daemon), token="s3cret") as c:
        w1 = c.open("a", "w")
        w2 = c.open("b", "w")
        with pytest.raises(QuotaExceeded, match="max_streams=2") as exc_info:
            c.open("c", "w")
        assert isinstance(exc_info.value, AdmissionError)
        w1.close()
        w2.close()


def test_step_exchange_and_eos_in_process(daemon):
    with connect(uri(daemon), token="s3cret") as c:
        w = c.open("gts.net", "w")
        r = c.open("gts.net", "r", timeout=2.0)
        for step in range(3):
            w.begin_step()
            w.write("zion", np.full((4, 7), float(step)))
            w.end_step()
            assert r.begin_step(timeout=2.0) is StepStatus.OK
            np.testing.assert_array_equal(
                r.read_block("zion", 0), np.full((4, 7), float(step))
            )
            r.end_step()
        w.close()
        assert r.begin_step(timeout=2.0) is StepStatus.EndOfStream
        r.close()


def test_per_tenant_metrics_labels(daemon):
    with connect(uri(daemon), token="s3cret") as c:
        w = c.open("labeled", "w")
        w.close()
    from repro.obs.live import render_prometheus

    text = render_prometheus({"": daemon.metrics})
    assert 'tenant="acme"' in text


# ---------------------------------------------------------------------------
# Typed transport faults on the TcpChannel rung
# ---------------------------------------------------------------------------

def test_tcp_disconnect_is_typed_transport_fault():
    srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    srv.bind(("127.0.0.1", 0))
    srv.listen(1)
    host, port = srv.getsockname()

    def accept_and_drop():
        conn, _ = srv.accept()
        conn.close()

    t = threading.Thread(target=accept_and_drop, daemon=True)
    t.start()
    ch = TcpChannel.connect(host, port, timeout=2.0)
    with pytest.raises(PeerDisconnected) as exc_info:
        ch.recv(timeout=2.0)
    assert isinstance(exc_info.value, TransportFault)
    ch.close()
    with pytest.raises(PeerDisconnected):
        ch.recv(timeout=0.1)  # closed channel: still the typed fault
    t.join(timeout=2.0)
    srv.close()


# ---------------------------------------------------------------------------
# Two real OS processes: the daemon via `python -m repro.net.server`
# ---------------------------------------------------------------------------

@pytest.fixture()
def daemon_process():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.net.server",
         "--tenant", "acme,token=s3cret,max_streams=2", "--no-telemetry"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO,
    )
    try:
        line = proc.stdout.readline()
        assert line.startswith("FLEXIO-DAEMON READY"), line
        fields = dict(f.split("=", 1) for f in line.split()[2:])
        host, port = fields["control"].rsplit(":", 1)
        yield proc, host, int(port)
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def test_two_process_smoke(daemon_process):
    """Writer and reader in this process, the daemon in its own OS
    process: multi-step exchange, quota enforcement, typed EOS."""
    proc, host, port = daemon_process
    full = np.arange(64.0).reshape(8, 8)
    with connect(f"flexio://{host}:{port}/acme", token="s3cret") as c:
        assert isinstance(c, RemoteClient)
        w = c.open("gts.2proc", "w")
        r = c.open("gts.2proc", "r", timeout=2.0)
        for step in range(2):
            w.begin_step()
            w.write("temp", full + step,
                    box=BoundingBox((0, 0), (8, 8)), global_shape=(8, 8))
            w.end_step()
            assert r.begin_step(timeout=2.0) is StepStatus.OK
            np.testing.assert_array_equal(r.read("temp"), full + step)
            sub = r.read("temp", start=(2, 1), count=(3, 4))
            np.testing.assert_array_equal(sub, (full + step)[2:5, 1:5])
            r.end_step()
        # Second stream fits the quota; a third does not.
        w2 = c.open("aux.2proc", "w")
        with pytest.raises(QuotaExceeded):
            c.open("overflow.2proc", "w")
        w2.close()
        w.close()
        assert r.begin_step(timeout=2.0) is StepStatus.EndOfStream
        r.close()
    assert proc.poll() is None  # daemon survived the whole session


def test_two_process_daemon_death_surfaces_as_typed_fault(daemon_process):
    proc, host, port = daemon_process
    c = connect(f"flexio://{host}:{port}/acme", token="s3cret")
    w = c.open("doomed", "w")
    proc.terminate()
    proc.wait(timeout=5)
    w.begin_step()
    w.write("x", np.zeros(4))
    with pytest.raises(TransportFault):
        w.end_step()
    with pytest.raises((TransportFault, OSError)):
        c.open("another", "w")


def test_top_level_connect_reexport():
    assert repro.connect is not None
    with pytest.raises(ValueError):
        repro.connect("ftp://nope")


# ---------------------------------------------------------------------------
# URI hardening: rejections are always ValueError, never parsing artifacts
# ---------------------------------------------------------------------------

def test_parse_flexio_uri_hardening():
    # Userinfo is refused: authentication travels in the HELLO token.
    with pytest.raises(ValueError, match="token"):
        parse_flexio_uri("flexio://user:pw@h:1/t")
    with pytest.raises(ValueError, match="token"):
        parse_flexio_uri("flexio://user@h:1/t")
    # Non-numeric / out-of-range ports report the offending URI.
    with pytest.raises(ValueError, match="port"):
        parse_flexio_uri("flexio://h:notaport/t")
    with pytest.raises(ValueError):
        parse_flexio_uri("flexio://h:99999999/t")
    # Trailing slash after the tenant is tolerated.
    assert parse_flexio_uri("flexio://h:1/t/").tenant == "t"
    assert parse_flexio_uri("flexio://h:1/").tenant == "public"
    # Multi-segment tenants are refused.
    with pytest.raises(ValueError, match="segment"):
        parse_flexio_uri("flexio://h:1/a/b")
    # local:// ignores host/params entirely.
    assert parse_flexio_uri("local://?fanout=2").scheme == "local"
    assert parse_flexio_uri("local://anything/x").scheme == "local"


@settings(max_examples=60, deadline=None)
@given(
    host=st.sampled_from(["h", "127.0.0.1", "daemon.example.org"]),
    port=st.integers(1, 65535),
    tenant=st.text(alphabet="abcdefgh0123456789", max_size=12),
    slash=st.booleans(),
)
def test_fuzz_parse_flexio_uri_round_trip(host, port, tenant, slash):
    uri = f"flexio://{host}:{port}/{tenant}" + ("/" if slash else "")
    u = parse_flexio_uri(uri)
    assert (u.scheme, u.host, u.port) == ("flexio", host, port)
    assert u.tenant == (tenant or "public")


# ---------------------------------------------------------------------------
# Wire-error round-trip: every AdmissionKind survives the ERROR frame hop
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kind", list(AdmissionKind))
def test_raise_wire_error_round_trips_every_admission_kind(kind):
    frame = decode_frame(encode_frame(
        MsgType.ERROR, {"kind": kind.value, "message": f"denied: {kind.value}"}
    ))
    with pytest.raises(AdmissionError) as exc_info:
        raise_wire_error(frame)
    assert exc_info.value.kind is kind
    assert kind.value in str(exc_info.value)


def test_raise_wire_error_non_admission_kinds():
    frame = decode_frame(encode_frame(
        MsgType.ERROR, {"kind": "protocol", "message": "bad frame"}
    ))
    with pytest.raises(ProtocolError, match="bad frame"):
        raise_wire_error(frame)
    frame = decode_frame(encode_frame(
        MsgType.ERROR, {"kind": "weird", "message": "novel failure"}
    ))
    with pytest.raises(NetError) as exc_info:
        raise_wire_error(frame)
    assert exc_info.value.error_kind == "weird"
    frame = decode_frame(encode_frame(
        MsgType.RETRY_AFTER, {"delay": 0.5, "reason": "draining"}
    ))
    with pytest.raises(RetryAfter) as exc_info:
        raise_wire_error(frame)
    assert exc_info.value.delay == 0.5
    assert exc_info.value.reason == "draining"


# ---------------------------------------------------------------------------
# Fault tolerance: resume, dedup, drain, checkpoint/restore, heartbeats
# ---------------------------------------------------------------------------

def test_session_resumes_across_control_socket_loss(daemon):
    with connect(uri(daemon), token="s3cret") as c:
        sid, rtok = c.session_id, c.resume_token
        assert rtok and not c.resumed
        # Tear the control socket out from under the client: the next
        # RPC must reconnect, re-HELLO with the resume token, and land
        # in the SAME server-side session (stream quota state intact).
        c._sock.close()
        w = c.open("after-loss", "w")
        assert c.session_id == sid
        assert c.resumed
        assert c.monitor.metrics.counter("net.reconnects").value >= 1
        assert c.monitor.metrics.counter("net.resume").value >= 1
        w.begin_step()
        w.write("v", np.ones((2, 2)))
        w.end_step()
        w.close()


def test_duplicate_publish_suppressed_by_sequence():
    hs = HostedStream("acme", "dup")
    assert hs.publish(0, 1, b"payload", False, seq=1) is True
    # A republished frame (lost ack) with the same seq is acknowledged
    # but not re-applied.
    assert hs.publish(0, 1, b"payload", False, seq=1) is False
    assert hs.publish(1, 1, b"payload2", False, seq=2) is True
    assert hs.publish(1, 1, b"payload2", False, seq=1) is False
    assert hs.last_step == 1
    assert hs.last_seq == 2


def test_drain_refuses_new_sessions_with_retry_after(daemon):
    daemon.drain(0.01)
    fast = RetryPolicy(max_retries=1, timeout=0.01)
    with pytest.raises(SessionLost, match="draining"):
        connect(uri(daemon), token="s3cret", retry=fast)


def test_checkpoint_restore_round_trip(daemon, tmp_path):
    blocks = [np.full((3, 3), float(s)) for s in range(3)]
    with connect(uri(daemon), token="s3cret") as c:
        w = c.open("ckpt.gts", "w")
        for s, block in enumerate(blocks):
            w.begin_step()
            w.write("v", block)
            w.end_step()
        path = daemon.checkpoint(str(tmp_path / "daemon.ckpt"))

    d2 = DirectoryDaemon(
        tenants=[TenantSpec("acme", token="s3cret", max_streams=2)],
        telemetry=False, lease_interval=0.05,
    )
    d2.restore(path)
    d2.start()
    try:
        with connect(uri(d2), token="s3cret") as c2:
            r = c2.open("ckpt.gts", "r", timeout=2.0)
            for block in blocks:
                assert r.begin_step(timeout=2.0) is StepStatus.OK
                np.testing.assert_array_equal(r.read_block("v", 0), block)
                r.end_step()
            # No EOS was published before the checkpoint: the restored
            # stream is still open, not ended.
            assert r.begin_step(timeout=0.2) is StepStatus.NotReady
            r.close()
    finally:
        d2.stop()


def test_heartbeat_tick_counts_open_streams(daemon):
    with connect(uri(daemon), token="s3cret") as c:
        assert c.heartbeat_tick() == 0  # nothing open yet
        w = c.open("hb.w", "w")
        r = c.open("hb.w", "r", timeout=2.0)
        assert c.heartbeat_tick() == 1  # writer+reader share one name
        assert c.monitor.metrics.counter("net.heartbeats").value == 1
        w.close()
        r.close()
        assert c.heartbeat_tick() == 0  # close() deregisters the beat


def test_heartbeat_thread_lifecycle(daemon):
    c = connect(uri(daemon), token="s3cret", heartbeat_interval=0.02)
    try:
        w = c.open("hb.bg", "w", lease=5.0)
        deadline = time.monotonic() + 2.0
        while (c.monitor.metrics.counter("net.heartbeats").value == 0
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert c.monitor.metrics.counter("net.heartbeats").value >= 1
        w.close()
    finally:
        c.close()
    assert c._hb_thread is None  # joined on close


# ---------------------------------------------------------------------------
# Regressions surfaced by FlexLint v2 (FXL010 / FXL012)
# ---------------------------------------------------------------------------

def test_checkpoint_async_runs_off_loop_and_round_trips(daemon, tmp_path):
    """The coroutine checkpoint path (blob on the loop, file I/O on the
    one-thread executor) must produce the same restorable file as the
    sync path."""
    import asyncio as _asyncio

    block = np.full((2, 2), 7.0)
    with connect(uri(daemon), token="s3cret") as c:
        w = c.open("async.ckpt", "w")
        w.begin_step()
        w.write("v", block)
        w.end_step()
        target = str(tmp_path / "async.ckpt")
        fut = _asyncio.run_coroutine_threadsafe(
            daemon.checkpoint_async(target), daemon._loop
        )
        assert fut.result(timeout=5.0) == target
        w.close()
    assert daemon.metrics.counter("net.checkpoints").value >= 1

    d2 = DirectoryDaemon(
        tenants=[TenantSpec("acme", token="s3cret", max_streams=2)],
        telemetry=False, lease_interval=0.05,
    )
    d2.restore(target)
    d2.start()
    try:
        with connect(uri(d2), token="s3cret") as c2:
            r = c2.open("async.ckpt", "r", timeout=2.0)
            assert r.begin_step(timeout=2.0) is StepStatus.OK
            np.testing.assert_array_equal(r.read_block("v", 0), block)
            r.end_step()
            r.close()
    finally:
        d2.stop()


def test_checkpoint_sync_publish_acks_after_durable_write(tmp_path):
    """checkpoint_sync=True acks a PUBLISH only after the checkpoint
    lands — via the async path, so other sessions are not stalled."""
    path = str(tmp_path / "sync.ckpt")
    d = DirectoryDaemon(
        tenants=[TenantSpec("public")], telemetry=False,
        lease_interval=0.05, checkpoint_path=path, checkpoint_sync=True,
    )
    d.start()
    try:
        with connect(uri(d, tenant="public")) as c:
            w = c.open("durable", "w")
            w.begin_step()
            w.write("v", np.ones((2, 2)))
            w.end_step()  # ack implies the checkpoint file exists
            assert os.path.exists(path)
            w.close()
    finally:
        d.stop()


def test_attach_failure_closes_fresh_data_channel(daemon, monkeypatch):
    """A half-attached data socket must be closed, not leaked, when the
    ATTACH exchange dies mid-flight (the pre-fix code left it open)."""
    from repro.net import client as client_mod

    with connect(uri(daemon), token="s3cret") as c:
        class StubChannel:
            def __init__(self):
                self.closed = False

            def sendv(self, frames, timeout=None):
                raise TransportFault("injected mid-attach failure")

            def close(self):
                self.closed = True

        stub = StubChannel()

        class StubFactory:
            @staticmethod
            def connect(*args, **kwargs):
                return stub

        monkeypatch.setattr(client_mod, "TcpChannel", StubFactory)
        with pytest.raises(TransportFault):
            c._attach("nonexistent-stream", "w")
        assert stub.closed


def test_tcp_connect_closes_socket_when_setsockopt_fails(monkeypatch):
    """TcpChannel.connect must not leak the descriptor if the fresh
    socket dies between connect() and setsockopt()."""
    closed = []

    class FakeSock:
        def setsockopt(self, *args):
            raise OSError("connection reset during setup")

        def close(self):
            closed.append(True)

    monkeypatch.setattr(
        socket, "create_connection", lambda *a, **k: FakeSock()
    )
    with pytest.raises(PeerDisconnected):
        TcpChannel.connect("127.0.0.1", 1)
    assert closed == [True]
