"""Network plane tests: frame protocol fuzz, the daemon as a real OS
process, tenancy admission control, and typed transport faults.

Three tiers:

* pure protocol — encode/decode round-trips plus hypothesis fuzz over
  records and over corrupted byte streams (decode never crashes with
  anything but :class:`ProtocolError`);
* in-process daemon — :class:`DirectoryDaemon` started on ephemeral
  ports inside this process: auth failures, quota rejections and the
  reader/writer step exchange, all through real sockets;
* cross-process smoke — ``python -m repro.net.server`` as a separate
  OS process, clients in this one (the two-process acceptance shape).
"""

import os
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.adios import BoundingBox, EndOfStream, StepStatus
from repro.core.directory import (
    AdmissionError,
    AuthFailure,
    QuotaExceeded,
    TenantSpec,
    UnknownTenant,
)
from repro.net.client import RemoteClient, connect, parse_flexio_uri
from repro.net.protocol import (
    HEADER,
    MAGIC,
    PROTOCOL_VERSION,
    MsgType,
    ProtocolError,
    decode_frame,
    decode_var,
    encode_frame,
    encode_var,
)
from repro.net.server import DirectoryDaemon
from repro.transport.faults import PeerDisconnected, TransportFault
from repro.transport.tcp import TcpChannel

REPO = os.path.join(os.path.dirname(__file__), os.pardir)
SRC = os.path.join(REPO, "src")


# ---------------------------------------------------------------------------
# Protocol round-trips + fuzz
# ---------------------------------------------------------------------------

ROUND_TRIP_CASES = [
    (MsgType.HELLO, {"tenant": "acme", "token": "s3cret", "client": "gts"}),
    (MsgType.WELCOME, {"session": "s-1", "server": "1.0.0", "data_port": 7701}),
    (MsgType.ERROR, {"kind": "streams", "message": "at max_streams=2"}),
    (MsgType.OK, {"detail": ""}),
    (MsgType.OPEN, {"stream": "gts.out", "mode": "w", "program": "writer",
                    "rank": 0, "num_ranks": 4, "lease": 0.5}),
    (MsgType.PUBLISH, {"step": 3, "count": 2, "eos": False}),
    (MsgType.FETCH, {"step": 0}),
    (MsgType.NOT_READY, {"step": 9}),
    (MsgType.EOS, {"step": 4}),
]


@pytest.mark.parametrize("msg_type,record", ROUND_TRIP_CASES,
                         ids=[c[0].name for c in ROUND_TRIP_CASES])
def test_frame_round_trip(msg_type, record):
    frame = decode_frame(encode_frame(msg_type, record))
    assert frame.version == PROTOCOL_VERSION
    assert frame.msg_type is msg_type
    assert frame.record == record


def test_var_round_trip_preserves_dtype_and_shape():
    data = np.arange(24, dtype=np.float32).reshape(4, 6)
    rec = {"name": "temp", "writer_rank": 2, "start": [4, 0],
           "shape": [4, 6], "gshape": [8, 6], "data": data}
    wb = encode_var(rec)
    got, nxt = decode_var(wb, 0)
    assert nxt == wb.nbytes
    assert got["name"] == "temp" and got["writer_rank"] == 2
    assert got["data"].dtype == np.float32 and got["data"].shape == (4, 6)
    np.testing.assert_array_equal(got["data"], data)


def test_multipart_publish_frame_walks_by_consumed_offsets():
    head = encode_frame(MsgType.PUBLISH, {"step": 0, "count": 2, "eos": True})
    v1 = encode_var({"name": "a", "writer_rank": 0, "start": [], "shape": [3],
                     "gshape": [], "data": np.ones(3)})
    v2 = encode_var({"name": "b", "writer_rank": 1, "start": [0], "shape": [2],
                     "gshape": [4], "data": np.zeros(2, dtype=np.int64)})
    blob = np.concatenate([w.as_array() for w in (head, v1, v2)])
    frame = decode_frame(blob)
    assert frame.record["count"] == 2 and frame.record["eos"] is True
    rec1, off = decode_var(blob, frame.consumed)
    rec2, end = decode_var(blob, off)
    assert [rec1["name"], rec2["name"]] == ["a", "b"]
    assert end == blob.nbytes


@settings(max_examples=50, deadline=None)
@given(
    tenant=st.text(max_size=64),
    token=st.text(max_size=64),
    client=st.text(max_size=64),
)
def test_fuzz_hello_record_round_trip(tenant, token, client):
    rec = {"tenant": tenant, "token": token, "client": client}
    assert decode_frame(encode_frame(MsgType.HELLO, rec)).record == rec


@settings(max_examples=50, deadline=None)
@given(
    step=st.integers(min_value=-2**62, max_value=2**62),
    count=st.integers(min_value=0, max_value=2**31),
    eos=st.booleans(),
)
def test_fuzz_publish_record_round_trip(step, count, eos):
    rec = {"step": step, "count": count, "eos": eos}
    assert decode_frame(encode_frame(MsgType.PUBLISH, rec)).record == rec


@settings(max_examples=100, deadline=None)
@given(
    payload=st.binary(max_size=256),
    flips=st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)),
                   max_size=4),
)
def test_fuzz_corrupted_frames_fail_typed_never_crash(payload, flips):
    """Arbitrary bytes — raw, truncated, or a valid frame with flipped
    bytes — either decode or raise ProtocolError/MarshalError; nothing
    else escapes."""
    base = bytearray(encode_frame(
        MsgType.OPEN,
        {"stream": "s", "mode": "w", "program": "writer",
         "rank": 0, "num_ranks": 1, "lease": 0.0},
    ).as_array().tobytes())
    base[len(base):] = payload
    for pos, val in flips:
        base[pos % len(base)] ^= val
    try:
        decode_frame(bytes(base))
    except ProtocolError:
        pass  # the typed outcome for malformed input
    try:
        decode_frame(payload)
    except ProtocolError:
        pass


def test_version_skew_and_bad_magic_are_protocol_errors():
    good = bytearray(encode_frame(MsgType.OK, {"detail": ""}).as_array().tobytes())
    skew = bytearray(good)
    skew[4] = PROTOCOL_VERSION + 1
    with pytest.raises(ProtocolError, match="version skew"):
        decode_frame(bytes(skew))
    bad_magic = bytearray(good)
    bad_magic[0] ^= 0xFF
    with pytest.raises(ProtocolError, match="magic"):
        decode_frame(bytes(bad_magic))
    with pytest.raises(ProtocolError, match="truncated"):
        decode_frame(good[: HEADER.size - 1])
    assert MAGIC == 0xF1EC0107  # wire constant: changing it is a protocol bump


def test_parse_flexio_uri():
    u = parse_flexio_uri("flexio://127.0.0.1:7700/acme")
    assert (u.scheme, u.host, u.port, u.tenant) == ("flexio", "127.0.0.1", 7700, "acme")
    assert parse_flexio_uri("flexio://h:1").tenant == "public"
    assert parse_flexio_uri("local://").scheme == "local"
    with pytest.raises(ValueError):
        parse_flexio_uri("http://h:1/t")
    with pytest.raises(ValueError):
        parse_flexio_uri("flexio://hostonly/t")


# ---------------------------------------------------------------------------
# In-process daemon: admission control + step exchange over real sockets
# ---------------------------------------------------------------------------

@pytest.fixture()
def daemon():
    d = DirectoryDaemon(
        tenants=[
            TenantSpec("acme", token="s3cret", max_streams=2),
            TenantSpec("public"),
        ],
        telemetry=False,
        lease_interval=0.05,
    )
    d.start()
    yield d
    d.stop()


def uri(d, tenant="acme"):
    return f"flexio://{d.host}:{d.control_port}/{tenant}"


def test_auth_failure_is_typed(daemon):
    with pytest.raises(AuthFailure):
        connect(uri(daemon), token="wrong")
    with pytest.raises(AuthFailure):
        connect(uri(daemon))  # token required but missing
    with pytest.raises(UnknownTenant):
        connect(uri(daemon, tenant="nobody"), token="s3cret")


def test_quota_rejection_third_stream(daemon):
    with connect(uri(daemon), token="s3cret") as c:
        w1 = c.open("a", "w")
        w2 = c.open("b", "w")
        with pytest.raises(QuotaExceeded, match="max_streams=2") as exc_info:
            c.open("c", "w")
        assert isinstance(exc_info.value, AdmissionError)
        w1.close()
        w2.close()


def test_step_exchange_and_eos_in_process(daemon):
    with connect(uri(daemon), token="s3cret") as c:
        w = c.open("gts.net", "w")
        r = c.open("gts.net", "r", timeout=2.0)
        for step in range(3):
            w.begin_step()
            w.write("zion", np.full((4, 7), float(step)))
            w.end_step()
            assert r.begin_step(timeout=2.0) is StepStatus.OK
            np.testing.assert_array_equal(
                r.read_block("zion", 0), np.full((4, 7), float(step))
            )
            r.end_step()
        w.close()
        assert r.begin_step(timeout=2.0) is StepStatus.EndOfStream
        r.close()


def test_per_tenant_metrics_labels(daemon):
    with connect(uri(daemon), token="s3cret") as c:
        w = c.open("labeled", "w")
        w.close()
    from repro.obs.live import render_prometheus

    text = render_prometheus({"": daemon.metrics})
    assert 'tenant="acme"' in text


# ---------------------------------------------------------------------------
# Typed transport faults on the TcpChannel rung
# ---------------------------------------------------------------------------

def test_tcp_disconnect_is_typed_transport_fault():
    srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    srv.bind(("127.0.0.1", 0))
    srv.listen(1)
    host, port = srv.getsockname()

    def accept_and_drop():
        conn, _ = srv.accept()
        conn.close()

    t = threading.Thread(target=accept_and_drop, daemon=True)
    t.start()
    ch = TcpChannel.connect(host, port, timeout=2.0)
    with pytest.raises(PeerDisconnected) as exc_info:
        ch.recv(timeout=2.0)
    assert isinstance(exc_info.value, TransportFault)
    ch.close()
    with pytest.raises(PeerDisconnected):
        ch.recv(timeout=0.1)  # closed channel: still the typed fault
    t.join(timeout=2.0)
    srv.close()


# ---------------------------------------------------------------------------
# Two real OS processes: the daemon via `python -m repro.net.server`
# ---------------------------------------------------------------------------

@pytest.fixture()
def daemon_process():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.net.server",
         "--tenant", "acme,token=s3cret,max_streams=2", "--no-telemetry"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO,
    )
    try:
        line = proc.stdout.readline()
        assert line.startswith("FLEXIO-DAEMON READY"), line
        fields = dict(f.split("=", 1) for f in line.split()[2:])
        host, port = fields["control"].rsplit(":", 1)
        yield proc, host, int(port)
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def test_two_process_smoke(daemon_process):
    """Writer and reader in this process, the daemon in its own OS
    process: multi-step exchange, quota enforcement, typed EOS."""
    proc, host, port = daemon_process
    full = np.arange(64.0).reshape(8, 8)
    with connect(f"flexio://{host}:{port}/acme", token="s3cret") as c:
        assert isinstance(c, RemoteClient)
        w = c.open("gts.2proc", "w")
        r = c.open("gts.2proc", "r", timeout=2.0)
        for step in range(2):
            w.begin_step()
            w.write("temp", full + step,
                    box=BoundingBox((0, 0), (8, 8)), global_shape=(8, 8))
            w.end_step()
            assert r.begin_step(timeout=2.0) is StepStatus.OK
            np.testing.assert_array_equal(r.read("temp"), full + step)
            sub = r.read("temp", start=(2, 1), count=(3, 4))
            np.testing.assert_array_equal(sub, (full + step)[2:5, 1:5])
            r.end_step()
        # Second stream fits the quota; a third does not.
        w2 = c.open("aux.2proc", "w")
        with pytest.raises(QuotaExceeded):
            c.open("overflow.2proc", "w")
        w2.close()
        w.close()
        assert r.begin_step(timeout=2.0) is StepStatus.EndOfStream
        r.close()
    assert proc.poll() is None  # daemon survived the whole session


def test_two_process_daemon_death_surfaces_as_typed_fault(daemon_process):
    proc, host, port = daemon_process
    c = connect(f"flexio://{host}:{port}/acme", token="s3cret")
    w = c.open("doomed", "w")
    proc.terminate()
    proc.wait(timeout=5)
    w.begin_step()
    w.write("x", np.zeros(4))
    with pytest.raises(TransportFault):
        w.end_step()
    with pytest.raises((TransportFault, OSError)):
        c.open("another", "w")


def test_top_level_connect_reexport():
    assert repro.connect is not None
    with pytest.raises(ValueError):
        repro.connect("ftp://nope")
