"""Tests for performance monitoring."""

import pytest

from repro.core import PerfMonitor


def test_record_and_aggregate():
    mon = PerfMonitor()
    mon.record("data_movement", "zion", start=0.0, duration=2.0, nbytes=100)
    mon.record("data_movement", "zion", start=2.0, duration=4.0, nbytes=300)
    agg = mon.aggregate("data_movement")
    assert agg.count == 2
    assert agg.total_time == 6.0
    assert agg.total_bytes == 400
    assert agg.mean_duration == 3.0
    assert agg.max_duration == 4.0
    assert agg.throughput == pytest.approx(400 / 6.0)


def test_measure_context_manager_uses_clock():
    t = [0.0]

    def clock():
        return t[0]

    mon = PerfMonitor(clock=clock)
    with mon.measure("handshake", "step0", nbytes=64):
        t[0] = 1.5
    rec = mon.trace[0]
    assert rec.start == 0.0
    assert rec.duration == 1.5
    assert rec.bytes == 64


def test_measure_add_bytes():
    mon = PerfMonitor(clock=lambda: 0.0)
    with mon.measure("x", "y") as m:
        m.add_bytes(10)
        m.add_bytes(5)
    assert mon.trace[0].bytes == 15


def test_extra_fields_survive_round_trip(tmp_path):
    mon = PerfMonitor(clock=lambda: 0.0)
    mon.record("dc_plugin", "sampler", 0.0, 0.1, nbytes=7, side="writer")
    path = str(tmp_path / "trace.jsonl")
    n = mon.dump(path)
    assert n == 1
    loaded = PerfMonitor.load(path)
    assert loaded[0]["side"] == "writer"
    assert loaded[0]["category"] == "dc_plugin"


def test_trace_disabled_still_aggregates():
    mon = PerfMonitor(keep_trace=False)
    mon.record("c", "n", 0.0, 1.0, nbytes=10)
    assert mon.trace == []
    assert mon.aggregate("c").count == 1


def test_memory_instrumentation():
    mon = PerfMonitor()
    mon.alloc(100)
    mon.alloc(200)
    assert mon.current_alloc_bytes == 300
    assert mon.peak_alloc_bytes == 300
    mon.free(250)
    assert mon.current_alloc_bytes == 50
    assert mon.peak_alloc_bytes == 300
    with pytest.raises(ValueError):
        mon.free(100)


def test_merge_from_remote_monitor():
    """Simulation-side monitoring gathered to the analytics side."""
    sim = PerfMonitor()
    sim.record("data_movement", "a", 0.0, 1.0, nbytes=10)
    ana = PerfMonitor()
    ana.record("data_movement", "b", 0.0, 2.0, nbytes=20)
    ana.merge_from(sim)
    agg = ana.aggregate("data_movement")
    assert agg.count == 2
    assert agg.total_bytes == 30
    assert agg.max_duration == 2.0


def test_summary_and_categories():
    mon = PerfMonitor()
    mon.record("b_cat", "x", 0.0, 1.0)
    mon.record("a_cat", "y", 0.0, 2.0, nbytes=4)
    assert mon.categories() == ["a_cat", "b_cat"]
    s = mon.summary()
    assert s["a_cat"]["total_bytes"] == 4
    assert s["b_cat"]["count"] == 1


def test_empty_aggregate_is_safe():
    mon = PerfMonitor()
    agg = mon.aggregate("never_seen")
    assert agg.count == 0
    assert agg.mean_duration == 0.0
    assert agg.throughput == 0.0
