"""Tests for the GTS workload model and its analytics chain."""

import numpy as np
import pytest

from repro.apps import (
    GtsAnalytics,
    GtsConfig,
    GtsRank,
    gts_analytics_profile,
    gts_sim_profile,
    histogram1d,
    histogram2d,
    particle_distribution,
    range_query,
)
from repro.apps.analytics import quantile_range
from repro.apps.gts import NUM_ATTRS
from repro.util import MiB


def small_config(**kw):
    defaults = dict(num_ranks=4, particles_per_rank=5000)
    defaults.update(kw)
    return GtsConfig(**defaults)


# ---------------------------------------------------------------------------
# Config / output shapes
# ---------------------------------------------------------------------------

def test_production_output_size_is_about_110mb():
    """Paper: 'particle data output size of 110MB per process'."""
    cfg = GtsConfig(num_ranks=128)
    assert cfg.bytes_per_rank == pytest.approx(110 * MiB, rel=0.08)


def test_output_arrays_shape_and_determinism():
    cfg = small_config()
    r = GtsRank(cfg, rank=1)
    out = r.output(step=0)
    assert set(out) == {"zion", "electron"}
    n = out["zion"].shape[0]
    assert out["zion"].shape == (n, NUM_ATTRS)
    assert out["electron"].shape[1] == NUM_ATTRS
    out2 = GtsRank(cfg, rank=1).output(step=0)
    np.testing.assert_array_equal(out["zion"], out2["zion"])


def test_particle_count_drifts_between_steps():
    cfg = small_config(count_jitter=0.05)
    r = GtsRank(cfg, rank=0)
    counts = {r.particle_count(s) for s in range(10)}
    assert len(counts) > 1
    for c in counts:
        assert abs(c - cfg.particles_per_rank) <= 0.05 * cfg.particles_per_rank


def test_particle_ids_unique_across_species_and_steps():
    cfg = small_config()
    r = GtsRank(cfg, rank=0)
    ids = np.concatenate([
        r.output(0)["zion"][:, 6], r.output(0)["electron"][:, 6], r.output(1)["zion"][:, 6]
    ])
    assert len(np.unique(ids)) == len(ids)


def test_thread_scaling_matches_paper():
    """Taking 1 of 4 cores slows GTS by ~2.7 % (paper Figure 7)."""
    cfg = GtsConfig(num_ranks=4)
    slowdown = cfg.cycle_time(3) / cfg.cycle_time(4) - 1.0
    assert slowdown == pytest.approx(0.027, abs=0.004)


def test_cycle_time_monotone_in_threads():
    cfg = GtsConfig(num_ranks=4)
    assert cfg.cycle_time(1) > cfg.cycle_time(2) > cfg.cycle_time(4) > cfg.cycle_time(8)
    with pytest.raises(ValueError):
        cfg.cycle_time(0)


def test_grid_covers_ranks():
    for n in (4, 6, 16, 128):
        g = GtsConfig(num_ranks=n).grid()
        assert g[0] * g[1] == n


def test_config_validation():
    with pytest.raises(ValueError):
        GtsConfig(num_ranks=0)
    with pytest.raises(ValueError):
        GtsConfig(num_ranks=1, omp_threads=0)
    with pytest.raises(ValueError):
        GtsConfig(num_ranks=1, count_jitter=1.5)
    with pytest.raises(ValueError):
        GtsRank(GtsConfig(num_ranks=2), rank=2)


# ---------------------------------------------------------------------------
# Analytics primitives
# ---------------------------------------------------------------------------

def particles(n=20000, seed=0):
    return GtsRank(small_config(particles_per_rank=n, seed=seed), 0).output(0)["zion"]


def test_distribution_integrates_to_one():
    p = particles()
    edges, density = particle_distribution(p, bins=64)
    widths = np.diff(edges)
    assert float((density * widths).sum()) == pytest.approx(1.0, abs=1e-6)


def test_range_query_selects_correctly():
    p = particles()
    out = range_query(p, -0.5, 0.5)
    assert ((out[:, 3] >= -0.5) & (out[:, 3] <= 0.5)).all()
    assert 0 < len(out) < len(p)


def test_range_query_unknown_column():
    with pytest.raises(KeyError):
        range_query(particles(), 0, 1, column="spin")


def test_quantile_range_hits_target_selectivity():
    p = particles(n=50000)
    lo, hi = quantile_range(p, selectivity=0.2)
    frac = len(range_query(p, lo, hi)) / len(p)
    assert frac == pytest.approx(0.2, abs=0.02)


def test_histograms_conserve_weight():
    p = particles()
    _, h1 = histogram1d(p, column="v_perp", bins=40)
    # v_perp is non-negative with unbounded top; histogram auto-range
    # covers all samples, so total weight is conserved.
    assert h1.sum() == pytest.approx(p[:, 5].sum(), rel=1e-9)
    _, _, h2 = histogram2d(p, bins=20)
    assert h2.sum() == pytest.approx(p[:, 5].sum(), rel=1e-9)


def test_bad_particle_shape_rejected():
    with pytest.raises(ValueError):
        particle_distribution(np.zeros((5, 3)))


# ---------------------------------------------------------------------------
# The full chain
# ---------------------------------------------------------------------------

def test_chain_selectivity_about_20_percent():
    """Paper: 'the query result is ~20% of the original output particles'."""
    chain = GtsAnalytics(selectivity=0.2)
    record = GtsRank(small_config(particles_per_rank=30000), 0).output(0)
    result = chain.process(record)
    assert result.selectivity == pytest.approx(0.2, abs=0.03)
    assert chain.reduction_ratio == pytest.approx(0.2, abs=0.03)


def test_chain_products_shape():
    chain = GtsAnalytics(bins=32)
    result = chain.process(particles_record())
    assert len(result.distribution[1]) == 32
    assert len(result.hist1d[1]) == 32
    assert result.hist2d[2].shape == (32, 32)
    assert result.total_particles > result.selected_particles > 0


def particles_record():
    return GtsRank(small_config(), 0).output(0)


def test_chain_save_and_reload(tmp_path):
    chain = GtsAnalytics()
    result = chain.process(particles_record(), step=3)
    path = str(tmp_path / "hist.npz")
    GtsAnalytics.save(result, path)
    loaded = np.load(path)
    assert loaded["meta"][0] == 3
    np.testing.assert_array_equal(loaded["h1"], result.hist1d[1])


def test_chain_missing_species_rejected():
    with pytest.raises(KeyError):
        GtsAnalytics().process({"other": np.zeros((3, 7))})


def test_chain_validation():
    with pytest.raises(ValueError):
        GtsAnalytics(selectivity=0.0)


# ---------------------------------------------------------------------------
# Profiles
# ---------------------------------------------------------------------------

def test_sim_profile_fields():
    cfg = GtsConfig(num_ranks=16, omp_threads=3)
    prof = gts_sim_profile(cfg)
    assert prof.num_ranks == 16
    assert prof.threads_per_rank == 3
    assert prof.bytes_per_rank == cfg.bytes_per_rank
    assert prof.io_interval == pytest.approx(2 * cfg.cycle_time(3))


def test_analytics_profile_inline_fraction():
    """One analytics process on one rank's data costs ~23.6 % of the
    interval, so N ranks' data costs N times that on one process."""
    cfg = GtsConfig(num_ranks=16)
    prof = gts_analytics_profile(cfg)
    assert prof.time_single == pytest.approx(0.236 * cfg.io_interval * 16, rel=1e-6)
