"""Unit + property tests for the FFS/PBIO-like marshaling layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.marshal import (
    Field,
    FieldKind,
    Format,
    FormatRegistry,
    MarshalError,
    decode_message,
    encode_message,
)


def particle_format():
    return Format(
        "particles",
        (
            Field("timestep", FieldKind.INT64),
            Field("rank", FieldKind.INT64),
            Field("label", FieldKind.STRING),
            Field("weights", FieldKind.ARRAY),
            Field("offsets", FieldKind.LIST_INT64),
            Field("final", FieldKind.BOOL),
        ),
    )


# ---------------------------------------------------------------------------
# Format / registry
# ---------------------------------------------------------------------------

def test_format_id_stable_across_instances():
    assert particle_format().format_id == particle_format().format_id


def test_format_id_sensitive_to_schema():
    a = Format("x", (Field("a", FieldKind.INT64),))
    b = Format("x", (Field("a", FieldKind.FLOAT64),))
    c = Format("y", (Field("a", FieldKind.INT64),))
    assert len({a.format_id, b.format_id, c.format_id}) == 3


def test_format_rejects_duplicate_fields():
    with pytest.raises(ValueError):
        Format("bad", (Field("a", FieldKind.INT64), Field("a", FieldKind.INT64)))


def test_format_rejects_empty_name():
    with pytest.raises(ValueError):
        Format("", ())


def test_field_validation():
    with pytest.raises(ValueError):
        Field("", FieldKind.INT64)
    with pytest.raises(TypeError):
        Field("x", 1)


def test_self_description_round_trip():
    fmt = particle_format()
    desc = fmt.self_description()
    parsed, consumed = Format.from_self_description(desc + b"trailing")
    assert consumed == len(desc)
    assert parsed == fmt
    assert parsed.format_id == fmt.format_id


def test_registry_define_and_lookup():
    reg = FormatRegistry()
    fmt = reg.define("msg", [("a", FieldKind.INT64), ("b", FieldKind.STRING)])
    assert reg.by_name("msg") is fmt
    assert reg.by_id(fmt.format_id) is fmt
    assert reg.knows(fmt)
    assert len(reg) == 1


def test_registry_rejects_conflicting_redefinition():
    reg = FormatRegistry()
    reg.define("msg", [("a", FieldKind.INT64)])
    with pytest.raises(ValueError):
        reg.define("msg", [("a", FieldKind.FLOAT64)])


def test_registry_idempotent_reregistration():
    reg = FormatRegistry()
    reg.define("msg", [("a", FieldKind.INT64)])
    reg.define("msg", [("a", FieldKind.INT64)])
    assert len(reg) == 1


# ---------------------------------------------------------------------------
# Encode / decode
# ---------------------------------------------------------------------------

def test_round_trip_all_kinds():
    fmt = particle_format()
    record = {
        "timestep": 42,
        "rank": -3,
        "label": "zions-π",  # non-ascii
        "weights": np.arange(12, dtype=np.float64).reshape(3, 4),
        "offsets": [0, 7, 19],
        "final": True,
    }
    wire = encode_message(fmt, record)
    reg = FormatRegistry()
    out_fmt, out = decode_message(wire, reg)
    assert out_fmt == fmt
    assert out["timestep"] == 42
    assert out["rank"] == -3
    assert out["label"] == "zions-π"
    np.testing.assert_array_equal(out["weights"], record["weights"])
    assert out["offsets"] == [0, 7, 19]
    assert out["final"] is True


def test_schema_inlined_only_on_first_contact():
    fmt = particle_format()
    record = {
        "timestep": 1, "rank": 0, "label": "x",
        "weights": np.zeros(2), "offsets": [], "final": False,
    }
    peer = FormatRegistry()
    first = encode_message(fmt, record, peer_registry=peer)
    # Decode teaches the peer the schema.
    decode_message(first, peer)
    second = encode_message(fmt, record, peer_registry=peer)
    assert len(second) < len(first)
    # And the peer can still decode the id-only message.
    _, out = decode_message(second, peer)
    assert out["timestep"] == 1


def test_decode_unknown_id_without_schema_fails():
    fmt = particle_format()
    record = {
        "timestep": 1, "rank": 0, "label": "x",
        "weights": np.zeros(1), "offsets": [], "final": False,
    }
    peer = FormatRegistry()
    peer.register(fmt)  # sender believes peer knows it
    wire = encode_message(fmt, record, peer_registry=peer)
    fresh = FormatRegistry()  # but this decoder does not
    with pytest.raises(MarshalError):
        decode_message(wire, fresh)


def test_missing_field_rejected():
    fmt = particle_format()
    with pytest.raises(MarshalError):
        encode_message(fmt, {"timestep": 1})


def test_bad_magic_rejected():
    with pytest.raises(MarshalError):
        decode_message(b"\x00" * 32, FormatRegistry())


def test_truncated_message_rejected():
    with pytest.raises(MarshalError):
        decode_message(b"\x01\x02", FormatRegistry())


def test_unpackable_value_rejected():
    fmt = Format("m", (Field("a", FieldKind.INT64),))
    with pytest.raises(MarshalError):
        encode_message(fmt, {"a": "not an int"})


def test_array_preserves_dtype_and_order():
    fmt = Format("m", (Field("a", FieldKind.ARRAY),))
    arr = np.asfortranarray(np.arange(6, dtype=np.int32).reshape(2, 3))
    wire = encode_message(fmt, {"a": arr})
    _, out = decode_message(wire, FormatRegistry())
    assert out["a"].dtype == np.int32
    np.testing.assert_array_equal(out["a"], arr)


def test_empty_array_round_trip():
    fmt = Format("m", (Field("a", FieldKind.ARRAY),))
    wire = encode_message(fmt, {"a": np.zeros((0, 5))})
    _, out = decode_message(wire, FormatRegistry())
    assert out["a"].shape == (0, 5)


# ---------------------------------------------------------------------------
# Property-based round trips
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    ts=st.integers(min_value=-(2**62), max_value=2**62),
    label=st.text(max_size=40),
    offsets=st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=20),
    flag=st.booleans(),
)
def test_property_scalar_round_trip(ts, label, offsets, flag):
    fmt = Format(
        "prop",
        (
            Field("ts", FieldKind.INT64),
            Field("label", FieldKind.STRING),
            Field("offsets", FieldKind.LIST_INT64),
            Field("flag", FieldKind.BOOL),
        ),
    )
    wire = encode_message(fmt, {"ts": ts, "label": label, "offsets": offsets, "flag": flag})
    _, out = decode_message(wire, FormatRegistry())
    assert out == {"ts": ts, "label": label, "offsets": offsets, "flag": flag}


@settings(max_examples=40, deadline=None)
@given(
    arr=hnp.arrays(
        dtype=st.sampled_from([np.float64, np.int64, np.float32, np.uint8]),
        shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=8),
    )
)
def test_property_array_round_trip(arr):
    fmt = Format("arr", (Field("a", FieldKind.ARRAY),))
    wire = encode_message(fmt, {"a": arr})
    _, out = decode_message(wire, FormatRegistry())
    np.testing.assert_array_equal(out["a"], arr)
    assert out["a"].dtype == arr.dtype


@settings(max_examples=40, deadline=None)
@given(data=st.binary(max_size=200))
def test_property_bytes_round_trip(data):
    fmt = Format("b", (Field("payload", FieldKind.BYTES),))
    wire = encode_message(fmt, {"payload": data})
    _, out = decode_message(wire, FormatRegistry())
    assert out["payload"] == data


@settings(max_examples=30, deadline=None)
@given(
    names=st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
            min_size=1,
            max_size=12,
        ),
        min_size=1,
        max_size=8,
        unique=True,
    ),
    kinds=st.lists(st.sampled_from(list(FieldKind)), min_size=8, max_size=8),
)
def test_property_schema_self_description_round_trip(names, kinds):
    fields = tuple(Field(n, k) for n, k in zip(names, kinds))
    fmt = Format("schema", fields)
    parsed, _ = Format.from_self_description(fmt.self_description())
    assert parsed == fmt
