"""Tests for concatenated-message decoding (decode_stream) and format
registry interactions the BP index depends on."""

import numpy as np
import pytest

from repro.marshal import (
    Field,
    FieldKind,
    Format,
    FormatRegistry,
    MarshalError,
    decode_stream,
    encode_message,
)


def fmt_a():
    return Format("a", (Field("x", FieldKind.INT64),))


def fmt_b():
    return Format("b", (Field("y", FieldKind.STRING), Field("z", FieldKind.ARRAY)))


def test_decode_stream_reports_consumed_bytes():
    wire = encode_message(fmt_a(), {"x": 7})
    fmt, rec, consumed = decode_stream(wire + b"garbage-after", FormatRegistry())
    assert consumed == len(wire)
    assert rec == {"x": 7}


def test_concatenated_heterogeneous_messages():
    """A byte stream of mixed formats decodes message by message."""
    reg_sender = FormatRegistry()
    messages = [
        (fmt_a(), {"x": 1}),
        (fmt_b(), {"y": "hello", "z": np.arange(3.0)}),
        (fmt_a(), {"x": 2}),
        (fmt_b(), {"y": "again", "z": np.zeros(0)}),
    ]
    blob = b"".join(
        encode_message(f, r, peer_registry=reg_sender) or b""
        for f, r in messages
    )
    # Sender assumed a peer registry; rebuild the blob tracking knowledge.
    reg_sender = FormatRegistry()
    parts = []
    for f, r in messages:
        parts.append(encode_message(f, r, peer_registry=reg_sender))
        reg_sender.register(f)  # peer learns after first contact
    blob = b"".join(parts)

    reg = FormatRegistry()
    pos = 0
    out = []
    while pos < len(blob):
        fmt, rec, consumed = decode_stream(blob[pos:], reg)
        out.append((fmt.name, rec))
        pos += consumed
    assert [name for name, _ in out] == ["a", "b", "a", "b"]
    assert out[0][1]["x"] == 1
    assert out[3][1]["y"] == "again"
    # Schemas were inlined only once each.
    assert len(reg) == 2


def test_decode_stream_mid_message_boundary_fails_cleanly():
    wire = encode_message(fmt_a(), {"x": 9})
    with pytest.raises(Exception):
        decode_stream(wire[: len(wire) // 2], FormatRegistry())


def test_registry_knowledge_shrinks_second_message():
    reg = FormatRegistry()
    first = encode_message(fmt_b(), {"y": "s", "z": np.zeros(2)}, peer_registry=reg)
    reg.register(fmt_b())
    second = encode_message(fmt_b(), {"y": "s", "z": np.zeros(2)}, peer_registry=reg)
    assert len(second) < len(first)
    saved = len(first) - len(second)
    assert saved == len(fmt_b().self_description())
