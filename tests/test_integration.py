"""Cross-layer integration tests: full pipelines through many subsystems."""

import io
import os

import numpy as np
import pytest

from repro.adios import (
    Adios,
    EndOfStream,
    RankContext,
    Range,
    block_decompose,
    run_query,
)
from repro.adios.bp import BpReader
from repro.apps import (
    GtsAnalytics,
    GtsConfig,
    GtsRank,
    S3dConfig,
    S3dRank,
    composite_over,
    read_ppm,
    volume_render,
    write_ppm,
)
from repro.core import FlexIO, PluginSide, stream_registry
from repro.core.adaptive import AdaptivePolicy, DCPlacementController
from repro.core.plugins import sampling_plugin
from repro.core.resilience import FaultInjector, TransactionalStreamWriter


@pytest.fixture(autouse=True)
def fresh_registry():
    stream_registry.reset()
    yield
    stream_registry.reset()


GTS_CONFIG = """
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="float64" dimensions="n,7"/>
    <var name="electron" type="float64" dimensions="n,7"/>
  </adios-group>
  <method group="particles" method="FLEXPATH">caching=ALL;batching=true</method>
</adios-config>
"""

S3D_CONFIG_TMPL = """
<adios-config>
  <adios-group name="species">
    <var name="OH" type="float64" dimensions="n,n,n"/>
  </adios-group>
  <method group="species" method="{method}">{params}</method>
</adios-config>
"""


# ---------------------------------------------------------------------------
# GTS: stream + DC plug-ins + adaptive controller + analytics + monitoring
# ---------------------------------------------------------------------------

def test_gts_pipeline_with_adaptive_plugin_placement():
    """The controller observes the sampler reducing data and migrates it
    from the reader into the writer mid-run; the analytics keep working
    and later steps buffer 4x less."""
    flexio = FlexIO.from_xml(GTS_CONFIG)
    cfg = GtsConfig(num_ranks=2, particles_per_rank=5000)
    writers = [
        flexio.open_write("particles", "gts.adaptive", RankContext(r, 2))
        for r in range(2)
    ]
    sampler = writers[0].plugins.deploy(sampling_plugin(4), PluginSide.READER)
    controller = DCPlacementController(
        writers[0].plugins, AdaptivePolicy(hysteresis=2)
    )
    reader = flexio.open_read("particles", "gts.adaptive", RankContext(0, 1))
    chain = GtsAnalytics()
    ranks = [GtsRank(cfg, r) for r in range(2)]

    step_bytes = []
    migrated_at = None
    for step in range(5):
        for r, w in zip(ranks, writers):
            out = r.output(step)
            w.write("zion", out["zion"])
            w.write("electron", out["electron"])
        for w in writers:
            w.end_step()
        state = stream_registry._states["gts.adaptive"]
        step_bytes.append(state.published[step].nbytes)
        if step > 0:
            reader._advance()  # the step just published is now available
        # Analytics consume the step (runs reader-side codelets if any).
        for wr in range(2):
            record = {
                "zion": reader.read_block("zion", wr),
                "electron": reader.read_block("electron", wr),
            }
            chain.process(record, step=step)
        # Runtime management: feed simulation-side monitoring.
        events = controller.observe_step(writer_busy_fraction=0.6, sim_step_time=10.0)
        if events and migrated_at is None:
            migrated_at = step
    for w in writers:
        w.close()

    assert migrated_at is not None, "controller never migrated the sampler"
    assert sampler.side is PluginSide.WRITER
    # Steps published after migration are ~4x smaller.
    assert step_bytes[-1] < 0.3 * step_bytes[0]
    assert chain.steps_processed == 10


# ---------------------------------------------------------------------------
# S3D: aggregated file output -> bpls -> query -> offline rendering
# ---------------------------------------------------------------------------

def test_s3d_offline_pipeline_through_aggregated_files(tmp_path):
    """S3D writes via MPI_AGGREGATE; offline tools then inspect (bpls),
    query (index pruning), and volume-render from the subfiles."""
    cfg = S3dConfig(num_ranks=8, local_edge=6)
    path = str(tmp_path / "s3d.bp")
    ad = Adios.from_xml(
        S3D_CONFIG_TMPL.format(method="MPI_AGGREGATE", params="aggregators=2")
    )
    gshape = cfg.global_shape
    boxes = cfg.boxes()
    writers = [
        ad.open_write("species", path, RankContext(r, 8)) for r in range(8)
    ]
    for r, w in enumerate(writers):
        w.write("OH", S3dRank(cfg, r).species_field(0, "OH"), box=boxes[r],
                global_shape=gshape)
        w.end_step()
        w.close()

    # bpls over a subfile.
    from repro.tools.bpls import list_file

    out = io.StringIO()
    assert list_file(os.path.join(path + ".dir", "data.0.bp"), out=out) == 0
    assert "OH" in out.getvalue()

    # Query high-concentration cells (relative to this subfile's own max)
    # with index pruning.
    with BpReader(os.path.join(path + ".dir", "data.0.bp")) as r:
        threshold = 0.5 * r.var_meta("OH").max_value
        res = run_query(r, Range("OH", lo=threshold))
        assert res.count > 0
        assert res.blocks_pruned + res.blocks_scanned == 4  # ranks 0-3

    # Offline read + render.
    reader = ad.open_read("species", path, RankContext(0, 1))
    field = reader.read("OH")
    assert field.shape == gshape
    img = volume_render(field, axis=0)
    ppm = tmp_path / "oh.ppm"
    write_ppm(ppm, img)
    back = read_ppm(ppm)
    assert back.shape == (gshape[1], gshape[2], 3)
    assert back.max() > 0  # the kernel is visible
    reader.close()


# ---------------------------------------------------------------------------
# Three-way method switch: identical application code and results
# ---------------------------------------------------------------------------

def _s3d_roundtrip(method, params, name):
    ad = Adios.from_xml(S3D_CONFIG_TMPL.format(method=method, params=params))
    cfg = S3dConfig(num_ranks=4, local_edge=5)
    gshape = cfg.global_shape
    boxes = cfg.boxes()
    writers = [ad.open_write("species", name, RankContext(r, 4)) for r in range(4)]
    for r, w in enumerate(writers):
        w.write("OH", S3dRank(cfg, r).species_field(0, "OH"), box=boxes[r],
                global_shape=gshape)
        w.end_step()
        w.close()
    reader = ad.open_read("species", name, RankContext(0, 1))
    out = reader.read("OH")
    reader.close()
    return out


def test_three_way_method_switch(tmp_path):
    stream = _s3d_roundtrip("FLEXPATH", "caching=ALL", "switch3.stream")
    bp = _s3d_roundtrip("BP", "", str(tmp_path / "switch3.bp"))
    agg = _s3d_roundtrip("MPI_AGGREGATE", "aggregators=2", str(tmp_path / "switch3agg.bp"))
    np.testing.assert_array_equal(stream, bp)
    np.testing.assert_array_equal(stream, agg)


# ---------------------------------------------------------------------------
# Transactions + faults + analytics correctness
# ---------------------------------------------------------------------------

def test_transactional_gts_run_with_faults_yields_clean_analytics():
    """Injected prepare failures abort-and-retry entire steps; the
    analytics downstream see only complete, ordered steps."""
    flexio = FlexIO.from_xml(GTS_CONFIG)
    cfg = GtsConfig(num_ranks=2, particles_per_rank=2000)
    handles = [
        flexio.open_write("particles", "gts.tx", RankContext(r, 2)) for r in range(2)
    ]
    injector = FaultInjector(fail_ops=[1, 4])  # two transient prepare faults
    tx = TransactionalStreamWriter(handles, injector=injector, max_step_retries=3)
    ranks = [GtsRank(cfg, r) for r in range(2)]
    for step in range(3):
        for r, rank in enumerate(ranks):
            out = rank.output(step)
            tx.write(r, "zion", out["zion"])
            tx.write(r, "electron", out["electron"])
        assert tx.commit_step() == step
    tx.close()

    reader = flexio.open_read("particles", "gts.tx", RankContext(0, 1))
    chain = GtsAnalytics()
    steps_seen = 0
    while True:
        for wr in range(2):
            record = {
                "zion": reader.read_block("zion", wr),
                "electron": reader.read_block("electron", wr),
            }
            result = chain.process(record, step=steps_seen)
            assert result.total_particles > 0
        steps_seen += 1
        try:
            reader._advance()
        except EndOfStream:
            break
    assert steps_seen == 3
    assert injector.faults_injected == 2


# ---------------------------------------------------------------------------
# Stream-mode MxN + parallel rendering equals serial ground truth
# ---------------------------------------------------------------------------

def test_stream_mxn_parallel_render_matches_serial():
    cfg = S3dConfig(num_ranks=8, local_edge=6)
    gshape = cfg.global_shape
    flexio = FlexIO.from_xml(
        S3D_CONFIG_TMPL.format(method="FLEXPATH", params="caching=ALL")
    )
    boxes = cfg.boxes()
    writers = [
        flexio.open_write("species", "render.stream", RankContext(r, 8))
        for r in range(8)
    ]
    blocks = [S3dRank(cfg, r).species_field(0, "OH") for r in range(8)]
    for r, w in enumerate(writers):
        w.write("OH", blocks[r], box=boxes[r], global_shape=gshape)
        w.end_step()
        w.close()

    full = np.zeros(gshape)
    for b, blk in zip(boxes, blocks):
        full[b.slices()] = blk
    vr = (float(full.min()), float(full.max()))

    viz_boxes = block_decompose(gshape, (2, 1, 1))
    readers = [
        flexio.open_read("species", "render.stream", RankContext(v, 2))
        for v in range(2)
    ]
    slabs = [
        readers[v].read("OH", start=viz_boxes[v].start, count=viz_boxes[v].count)
        for v in range(2)
    ]
    parallel = composite_over([volume_render(s, axis=0, vrange=vr) for s in slabs])
    serial = volume_render(full, axis=0, vrange=vr)
    np.testing.assert_allclose(parallel, serial, atol=1e-8)
