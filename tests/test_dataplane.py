"""Tests for the cached, pipelined data plane and the step-oriented API.

Covers the plan cache (compile-once, replay slice assignments), the
async publication drainer with back-pressure, the begin_step/end_step +
StepStatus surface on both stream and file methods, Selection-object
reads, the unified VariableNotFound error, and the counter-backed
handshake accounting.
"""

import os
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adios import (
    Adios,
    AdiosError,
    BoundingBox,
    BoxSelection,
    EndOfStream,
    FullSelection,
    RankContext,
    StepStatus,
    VariableNotFound,
    block_decompose,
)
from repro.adios.selection import assemble, resolve_selection
from repro.core import StepState, StreamStalled, stream_registry
from repro.core.redistribution import (
    CachingOption,
    CompiledPlan,
    PlanCache,
    RedistributionEngine,
    compute_plan,
    global_plan_cache,
)

STREAM_CONFIG = """
<adios-config>
  <adios-group name="fields">
    <var name="temp" type="float64" dimensions="16,16"/>
    <var name="rho" type="float64" dimensions="16,16"/>
  </adios-group>
  <method group="fields" method="FLEXPATH">{params}</method>
</adios-config>
"""

SHAPE = (16, 16)


@pytest.fixture(autouse=True)
def fresh_state():
    stream_registry.reset()
    global_plan_cache.clear()
    yield
    stream_registry.reset()
    global_plan_cache.clear()


def make_adios(params=""):
    return Adios.from_xml(STREAM_CONFIG.format(params=params))


def write_steps(adios, name, num_steps, num_writers=4, vars_=("temp",), scale=1.0):
    boxes = block_decompose(SHAPE, (2, 2))
    handles = [
        adios.open_write("fields", name, RankContext(r, num_writers))
        for r in range(num_writers)
    ]
    for step in range(num_steps):
        for r, h in enumerate(handles):
            for i, v in enumerate(vars_):
                data = (
                    np.arange(boxes[r].size, dtype=np.float64).reshape(boxes[r].count)
                    * scale
                    + step * 100
                    + r * 10
                    + i
                )
                h.write(v, data, box=boxes[r], global_shape=SHAPE)
        for h in handles:
            h.end_step()
    for h in handles:
        h.close()
    return boxes


# ---------------------------------------------------------------------------
# CompiledPlan / PlanCache
# ---------------------------------------------------------------------------

def test_compiled_plan_matches_assemble():
    gshape = (12, 10)
    wboxes = block_decompose(gshape, (3, 2))
    rboxes = block_decompose(gshape, (2, 1))
    blocks = [
        np.random.default_rng(i).normal(size=b.count) for i, b in enumerate(wboxes)
    ]
    cp = CompiledPlan(compute_plan(wboxes, rboxes))
    got = cp.execute(blocks)
    for rbox, out in zip(rboxes, got):
        ref = assemble(rbox, zip(wboxes, blocks), dtype=blocks[0].dtype)
        assert out.tobytes() == ref.tobytes()
    # Full decompositions cover every reader box.
    assert all(cp.covered)


def test_compiled_plan_uncovered_uses_fill():
    wboxes = [BoundingBox((0, 0), (4, 4))]
    rboxes = [BoundingBox((2, 2), (4, 4))]  # half sticks out of coverage
    cp = CompiledPlan(compute_plan(wboxes, rboxes))
    assert cp.covered == [False]
    blocks = [np.ones((4, 4))]
    out = cp.execute(blocks, fill=-5.0)[0]
    ref = assemble(rboxes[0], zip(wboxes, blocks), dtype=np.float64, fill=-5.0)
    assert out.tobytes() == ref.tobytes()
    assert out[-1, -1] == -5.0


def test_compiled_plan_validates_blocks():
    wboxes = block_decompose((8, 8), (2, 1))
    cp = CompiledPlan(compute_plan(wboxes, [BoundingBox((0, 0), (8, 8))]))
    with pytest.raises(ValueError, match="expected 2 writer blocks"):
        cp.execute([np.zeros((4, 8))])
    with pytest.raises(ValueError, match="shape"):
        cp.execute([np.zeros((4, 8)), np.zeros((3, 8))])


def test_plan_cache_hit_miss_and_eviction():
    cache = PlanCache(maxsize=2)
    gshape = (8, 8)
    w1 = block_decompose(gshape, (2, 1))
    w2 = block_decompose(gshape, (1, 2))
    w3 = block_decompose(gshape, (2, 2))
    r = [BoundingBox((0, 0), gshape)]
    _, hit = cache.get(w1, r, gshape)
    assert not hit
    _, hit = cache.get(w1, r, gshape)
    assert hit
    cache.get(w2, r, gshape)
    cache.get(w3, r, gshape)  # evicts w1 (LRU)
    assert len(cache) == 2
    _, hit = cache.get(w1, r, gshape)
    assert not hit
    assert cache.stats.hits == 1
    assert cache.stats.misses == 4
    assert cache.stats.evictions >= 1


def test_plan_cache_invalidate():
    cache = PlanCache()
    w = block_decompose((8, 8), (2, 1))
    r = [BoundingBox((0, 0), (8, 8))]
    cache.get(w, r)
    assert cache.invalidate(w, r)
    assert not cache.invalidate(w, r)  # already gone
    _, hit = cache.get(w, r)
    assert not hit


def test_engine_with_plan_cache_recompiles_on_update():
    gshape = (8, 8)
    cache = PlanCache()
    w1 = block_decompose(gshape, (2, 1))
    w2 = block_decompose(gshape, (1, 2))
    rbox = [BoundingBox((0, 0), gshape)]
    eng = RedistributionEngine(w1, rbox, plan_cache=cache)
    blocks1 = [np.full(b.count, i, dtype=np.float64) for i, b in enumerate(w1)]
    out1 = eng.move(blocks1)[0]
    eng.update_writer_boxes(w2)
    blocks2 = [np.full(b.count, i + 7, dtype=np.float64) for i, b in enumerate(w2)]
    out2 = eng.move(blocks2)[0]
    ref1 = assemble(rbox[0], zip(w1, blocks1), dtype=np.float64)
    ref2 = assemble(rbox[0], zip(w2, blocks2), dtype=np.float64)
    assert out1.tobytes() == ref1.tobytes()
    assert out2.tobytes() == ref2.tobytes()


# ---------------------------------------------------------------------------
# Property test: cached execute() == seed assemble(), all caching options,
# including a mid-stream distribution change.
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    dims=st.tuples(st.integers(4, 20), st.integers(4, 20)),
    grid1=st.tuples(st.integers(1, 3), st.integers(1, 3)),
    grid2=st.tuples(st.integers(1, 3), st.integers(1, 3)),
    sel_frac=st.tuples(
        st.floats(0.0, 0.6), st.floats(0.0, 0.6),
        st.floats(0.2, 1.0), st.floats(0.2, 1.0),
    ),
    caching=st.sampled_from(list(CachingOption)),
    seed=st.integers(0, 10_000),
)
def test_property_cached_execute_matches_assemble(
    dims, grid1, grid2, sel_frac, caching, seed
):
    gshape = dims
    rng = np.random.default_rng(seed)
    # Random read selection inside the global array.
    start = (int(sel_frac[0] * gshape[0]), int(sel_frac[1] * gshape[1]))
    count = (
        max(1, int(sel_frac[2] * (gshape[0] - start[0]))),
        max(1, int(sel_frac[3] * (gshape[1] - start[1]))),
    )
    target = BoundingBox(start, count)

    cache = {
        CachingOption.NO_CACHING: None,
        CachingOption.CACHING_LOCAL: PlanCache(maxsize=16),
        CachingOption.CACHING_ALL: global_plan_cache,
    }[caching]

    for grid in (grid1, grid2):  # second grid = mid-stream redistribution
        wboxes = block_decompose(gshape, grid)
        for _ in range(2):  # second pass exercises the cache-hit replay
            blocks = [rng.normal(size=b.count) for b in wboxes]
            ref = assemble(
                target,
                ((b, d) for b, d in zip(wboxes, blocks)),
                dtype=np.float64,
            )
            if cache is None:
                cp = CompiledPlan(compute_plan(wboxes, [target]))
            else:
                cp, _ = cache.get(wboxes, [target], gshape)
            got = cp.execute(blocks, dtype=np.float64)[0]
            assert got.tobytes() == ref.tobytes()


# ---------------------------------------------------------------------------
# Stream reads through the plan cache
# ---------------------------------------------------------------------------

def read_all_steps(adios, name, selection=None):
    reader = adios.open_read("fields", name, RankContext(0, 1))
    outs = []
    while reader.begin_step() is StepStatus.OK:
        outs.append(reader.read("temp", selection=selection))
        reader.end_step()
    return outs


@pytest.mark.parametrize("params", ["", "caching=LOCAL", "caching=ALL"])
def test_stream_read_identical_across_caching_options(params):
    adios = make_adios(params)
    name = f"dp.caching.{params or 'none'}"
    write_steps(adios, name, num_steps=3)
    outs = read_all_steps(adios, name, BoxSelection((3, 2), (9, 11)))
    ref_adios = make_adios("")
    ref_name = name + ".ref"
    write_steps(ref_adios, ref_name, num_steps=3)
    refs = read_all_steps(ref_adios, ref_name, BoxSelection((3, 2), (9, 11)))
    assert len(outs) == 3
    for got, ref in zip(outs, refs):
        assert got.tobytes() == ref.tobytes()


def test_caching_all_uses_global_plan_cache():
    adios = make_adios("caching=ALL")
    write_steps(adios, "dp.global", num_steps=3)
    assert len(global_plan_cache) == 0
    outs = read_all_steps(adios, "dp.global")
    assert len(outs) == 3
    state = stream_registry._states["dp.global"]
    hits = state.monitor.metrics.counter("dataplane.plan_cache.hits").value
    misses = state.monitor.metrics.counter("dataplane.plan_cache.misses").value
    # First read compiles (miss), the steady-state steps replay (hits).
    assert misses >= 1
    assert hits >= 2
    assert len(global_plan_cache) >= 1


def test_no_caching_never_touches_plan_cache():
    adios = make_adios("")
    write_steps(adios, "dp.none", num_steps=2)
    read_all_steps(adios, "dp.none")
    state = stream_registry._states["dp.none"]
    assert state.monitor.metrics.counter("dataplane.plan_cache.hits").value == 0
    assert state.monitor.metrics.counter("dataplane.plan_cache.misses").value == 0
    assert len(global_plan_cache) == 0


def test_distribution_change_mid_stream_stays_correct():
    adios = make_adios("caching=ALL")
    name = "dp.redist"
    num_writers = 4
    handles = [
        adios.open_write("fields", name, RankContext(r, num_writers))
        for r in range(num_writers)
    ]
    grids = [(2, 2), (2, 2), (4, 1), (4, 1)]  # change at step 2
    per_step = []
    for step, grid in enumerate(grids):
        boxes = block_decompose(SHAPE, grid)
        blocks = []
        for r, h in enumerate(handles):
            data = np.random.default_rng(step * 10 + r).normal(size=boxes[r].count)
            blocks.append((boxes[r], data))
            h.write("temp", data, box=boxes[r], global_shape=SHAPE)
        per_step.append(blocks)
        for h in handles:
            h.end_step()
    for h in handles:
        h.close()
    reader = adios.open_read("fields", name, RankContext(0, 1))
    target = BoundingBox((0, 0), SHAPE)
    step = 0
    while reader.begin_step() is StepStatus.OK:
        got = reader.read("temp")
        ref = assemble(target, iter(per_step[step]), dtype=np.float64)
        assert got.tobytes() == ref.tobytes()
        reader.end_step()
        step += 1
    assert step == 4


# ---------------------------------------------------------------------------
# begin_step / end_step / StepStatus
# ---------------------------------------------------------------------------

def test_begin_step_not_ready_then_ok():
    adios = make_adios()
    name = "dp.steps"
    writer = adios.open_write("fields", name, RankContext(0, 1))
    reader = adios.open_read("fields", name, RankContext(0, 1))
    # Nothing published yet: non-blocking NotReady, no exception.
    assert reader.begin_step() is StepStatus.NotReady
    writer.begin_step()
    writer.write("temp", np.ones(SHAPE), box=BoundingBox((0, 0), SHAPE),
                 global_shape=SHAPE)
    writer.end_step()
    assert reader.begin_step() is StepStatus.OK
    assert reader.read("temp").shape == SHAPE
    reader.end_step()
    # Writer behind again.
    assert reader.begin_step() is StepStatus.NotReady
    writer.close()
    assert reader.begin_step() is StepStatus.EndOfStream


def test_begin_step_timeout_polls_until_ready():
    adios = make_adios()
    name = "dp.timeout"
    writer = adios.open_write("fields", name, RankContext(0, 1))
    reader = adios.open_read("fields", name, RankContext(0, 1))

    def delayed_write():
        time.sleep(0.05)
        writer.write("temp", np.ones(SHAPE), box=BoundingBox((0, 0), SHAPE),
                     global_shape=SHAPE)
        writer.end_step()

    t = threading.Thread(target=delayed_write)
    t.start()
    try:
        assert reader.begin_step(timeout=5.0) is StepStatus.OK
    finally:
        t.join()
    writer.close()


def test_begin_step_misuse_raises():
    adios = make_adios()
    name = "dp.misuse"
    writer = adios.open_write("fields", name, RankContext(0, 1))
    reader = adios.open_read("fields", name, RankContext(0, 1))
    writer.begin_step()
    with pytest.raises(AdiosError, match="begin_step"):
        writer.begin_step()
    writer.write("temp", np.ones(SHAPE), box=BoundingBox((0, 0), SHAPE),
                 global_shape=SHAPE)
    writer.end_step()
    with pytest.raises(AdiosError, match="end_step"):
        reader.end_step()
    assert reader.begin_step() is StepStatus.OK
    with pytest.raises(AdiosError, match="begin_step"):
        reader.begin_step()
    reader.end_step()
    writer.close()


def test_advance_alias_is_gone():
    # The pre-redesign public alias was removed: end_step() is the only
    # step seal, and the positional selection spelling is rejected.
    adios = make_adios()
    name = "dp.alias"
    writer = adios.open_write("fields", name, RankContext(0, 1))
    reader = adios.open_read("fields", name, RankContext(0, 1))
    writer.write("temp", np.ones(SHAPE), box=BoundingBox((0, 0), SHAPE),
                 global_shape=SHAPE)
    assert not hasattr(writer, "advance")
    assert not hasattr(reader, "advance")
    writer.end_step()
    assert reader.read("temp").shape == SHAPE
    with pytest.raises(TypeError):
        reader.read("temp", BoxSelection((0, 0), (4, 4)))  # positional: rejected
    with pytest.raises(AdiosError, match="selection= keyword"):
        reader.read("temp", start=BoxSelection((0, 0), (4, 4)))
    with pytest.raises(AdiosError, match="not both"):
        reader.read("temp", start=(0, 0), count=(4, 4),
                    selection=BoxSelection((0, 0), (4, 4)))
    writer.close()


def test_bp_handles_support_step_api(tmp_path):
    path = str(tmp_path / "steps.bp")
    config = STREAM_CONFIG.format(params="").replace("FLEXPATH", "BP")
    adios = Adios.from_xml(config)
    writer = adios.open_write("fields", path, RankContext(0, 1))
    for step in range(3):
        writer.begin_step()
        writer.write("temp", np.full(SHAPE, step), box=BoundingBox((0, 0), SHAPE),
                     global_shape=SHAPE)
        writer.end_step()
    writer.close()
    reader = adios.open_read("fields", path, RankContext(0, 1))
    seen = []
    while reader.begin_step() is StepStatus.OK:
        seen.append(float(reader.read("temp")[0, 0]))
        reader.end_step()
    assert seen == [0.0, 1.0, 2.0]
    reader.close()


# ---------------------------------------------------------------------------
# Selection objects + unified errors
# ---------------------------------------------------------------------------

def test_selection_objects_on_stream_reads():
    adios = make_adios()
    write_steps(adios, "dp.sel", num_steps=1)
    reader = adios.open_read("fields", "dp.sel", RankContext(0, 1))
    by_tuple = reader.read("temp", start=(4, 4), count=(8, 8))
    by_box = reader.read("temp", selection=BoxSelection((4, 4), (8, 8)))
    by_bbox = reader.read("temp", selection=BoundingBox((4, 4), (8, 8)))
    assert by_tuple.tobytes() == by_box.tobytes() == by_bbox.tobytes()
    full = reader.read("temp", selection=FullSelection())
    assert full.shape == SHAPE
    assert full.tobytes() == reader.read("temp").tobytes()


def test_selection_objects_on_bp_reads(tmp_path):
    path = str(tmp_path / "sel.bp")
    config = STREAM_CONFIG.format(params="").replace("FLEXPATH", "BP")
    adios = Adios.from_xml(config)
    writer = adios.open_write("fields", path, RankContext(0, 1))
    writer.write("temp", np.arange(256, dtype=np.float64).reshape(SHAPE),
                 box=BoundingBox((0, 0), SHAPE), global_shape=SHAPE)
    writer.end_step()
    writer.close()
    reader = adios.open_read("fields", path, RankContext(0, 1))
    by_tuple = reader.read("temp", start=(2, 3), count=(5, 6))
    by_box = reader.read("temp", selection=BoxSelection((2, 3), (5, 6)))
    assert by_tuple.tobytes() == by_box.tobytes()
    assert reader.read("temp", selection=FullSelection()).shape == SHAPE
    reader.close()


def test_selection_with_count_rejected():
    with pytest.raises(ValueError, match="count must be None"):
        resolve_selection(BoxSelection((0, 0), (2, 2)), (1, 1), (8, 8))


def test_variable_not_found_unified():
    adios = make_adios()
    write_steps(adios, "dp.missing", num_steps=1)
    reader = adios.open_read("fields", "dp.missing", RankContext(0, 1))
    with pytest.raises(VariableNotFound):
        reader.read("nope")
    with pytest.raises(VariableNotFound):
        reader.read_block("nope", 0)
    # Back-compat: VariableNotFound is both AdiosError and KeyError.
    with pytest.raises(KeyError):
        reader.read("nope")
    with pytest.raises(AdiosError):
        reader.read("nope")


def test_variable_not_found_on_bp(tmp_path):
    path = str(tmp_path / "missing.bp")
    config = STREAM_CONFIG.format(params="").replace("FLEXPATH", "BP")
    adios = Adios.from_xml(config)
    writer = adios.open_write("fields", path, RankContext(0, 1))
    writer.write("temp", np.ones(SHAPE), box=BoundingBox((0, 0), SHAPE),
                 global_shape=SHAPE)
    writer.end_step()
    writer.close()
    reader = adios.open_read("fields", path, RankContext(0, 1))
    with pytest.raises(VariableNotFound):
        reader.read("nope")
    with pytest.raises(VariableNotFound):
        reader.read_block("nope", 0)
    with pytest.raises(KeyError):
        reader.read("nope")
    reader.close()


def test_variable_not_found_str_is_clean():
    err = VariableNotFound("no variable 'x' at step 0")
    assert str(err) == "no variable 'x' at step 0"


# ---------------------------------------------------------------------------
# handshake_messages: counter-backed, no trace scan
# ---------------------------------------------------------------------------

def test_handshake_messages_counter_matches_trace():
    adios = make_adios("caching=ALL")
    write_steps(adios, "dp.hs", num_steps=3)
    reader = adios.open_read("fields", "dp.hs", RankContext(0, 1))
    while reader.begin_step() is StepStatus.OK:
        reader.read("temp")
        reader.end_step()
    mon = stream_registry._states["dp.hs"].monitor
    from_trace = sum(
        dict(rec.extra).get("messages", 0)
        for rec in mon.trace
        if rec.category == "handshake"
    )
    assert reader.handshake_messages() == from_trace
    assert reader.handshake_messages() > 0


def test_handshake_messages_zero_before_reads():
    adios = make_adios()
    write_steps(adios, "dp.hs0", num_steps=1)
    reader = adios.open_read("fields", "dp.hs0", RankContext(0, 1))
    assert reader.handshake_messages() == 0


# ---------------------------------------------------------------------------
# read_all: batched multi-variable moves
# ---------------------------------------------------------------------------

def test_read_all_batching_single_round_per_step():
    adios = make_adios("batching=true")
    write_steps(adios, "dp.batch", num_steps=2, vars_=("temp", "rho"))
    reader = adios.open_read("fields", "dp.batch", RankContext(0, 1))
    steps = 0
    while reader.begin_step() is StepStatus.OK:
        out = reader.read_all()
        assert set(out) == {"temp", "rho"}
        reader.end_step()
        steps += 1
    assert steps == 2
    mon = stream_registry._states["dp.batch"].monitor
    rounds = [r for r in mon.trace if r.category == "handshake"]
    # One aggregated handshake round per step despite two variables.
    assert len(rounds) == 2


def test_read_all_matches_individual_reads():
    adios = make_adios()
    write_steps(adios, "dp.all", num_steps=1, vars_=("temp", "rho"))
    reader = adios.open_read("fields", "dp.all", RankContext(0, 1))
    batched = reader.read_all(["temp", "rho"])
    assert batched["temp"].tobytes() == reader.read("temp").tobytes()
    assert batched["rho"].tobytes() == reader.read("rho").tobytes()


# ---------------------------------------------------------------------------
# Async publication pipeline
# ---------------------------------------------------------------------------

def test_writer_visible_span_is_measured():
    adios = make_adios()
    write_steps(adios, "dp.vis", num_steps=3)
    mon = stream_registry._states["dp.vis"].monitor
    agg = mon.aggregate("writer_visible")
    assert agg.count == 3
    assert agg.total_time >= 0.0
    drains = mon.aggregate("drain")
    assert drains.count == 3


def test_sync_advance_commits_before_returning():
    adios = make_adios("sync=true")
    name = "dp.sync"
    writer = adios.open_write("fields", name, RankContext(0, 1))
    state = stream_registry._states[name]
    for step in range(2):
        writer.begin_step()
        writer.write("temp", np.ones(SHAPE), box=BoundingBox((0, 0), SHAPE),
                     global_shape=SHAPE)
        writer.end_step()
        # No quiesce needed: sync publish drained before returning.
        assert len(state._published) == step + 1
    writer.close()


def test_end_step_sync_override():
    adios = make_adios()  # async by default
    name = "dp.sync-override"
    writer = adios.open_write("fields", name, RankContext(0, 1))
    state = stream_registry._states[name]
    writer.begin_step()
    writer.write("temp", np.ones(SHAPE), box=BoundingBox((0, 0), SHAPE),
                 global_shape=SHAPE)
    writer.end_step(sync=True)
    assert len(state._published) == 1
    writer.close()


def test_async_backpressure_on_slow_channel():
    adios = make_adios("queue_depth=1")
    name = "dp.bp"
    writer = adios.open_write("fields", name, RankContext(0, 1))
    state = stream_registry._states[name]

    class SlowChannel:
        def sendv(self, parts, timeout=None):
            time.sleep(0.02)

        def recv(self, timeout=None):
            return b""

    state._ensure_pipeline()
    state._channel = SlowChannel()
    for _ in range(4):
        writer.write("temp", np.ones(SHAPE), box=BoundingBox((0, 0), SHAPE),
                     global_shape=SHAPE)
        writer.end_step()
    writer.close()
    assert state.backpressure_waits > 0
    assert (
        state.monitor.metrics.counter("dataplane.backpressure_waits").value
        == state.backpressure_waits
    )
    # Every step still committed, in order.
    assert [s.step for s in state.published] == [0, 1, 2, 3]
    assert all(s.status is StepState.COMMITTED for s in state.published)


def test_drain_error_marks_step_lost_not_committed():
    """Regression: a faulted drain must NOT commit the step as readable.

    The old pipeline committed every step in a ``finally`` even when the
    transport push failed — readers got a step whose payload never moved.
    Now the step is published as a typed LOST gap instead.
    """
    adios = make_adios()
    name = "dp.fault"
    writer = adios.open_write("fields", name, RankContext(0, 1))
    state = stream_registry._states[name]

    class BrokenChannel:
        def sendv(self, parts, timeout=None):
            raise IOError("wire fell out")

        def recv(self, timeout=None):
            return b""

    state._ensure_pipeline()
    state._channel = BrokenChannel()
    writer.write("temp", np.ones(SHAPE), box=BoundingBox((0, 0), SHAPE),
                 global_shape=SHAPE)
    writer.end_step()
    writer.close()
    reader = adios.open_read("fields", name, RankContext(0, 1))
    # The reader sees a typed gap (OtherError), never the undelivered data.
    assert reader.begin_step() is StepStatus.OtherError
    assert reader.begin_step() is StepStatus.EndOfStream
    assert state._published[0].status is StepState.LOST
    assert state._published[0].groups == {}  # payload discarded, not torn
    assert state.monitor.metrics.counter("dataplane.drain.errors").value == 1
    assert state.monitor.metrics.counter("dataplane.drain.steps_lost").value == 1


def test_rdma_transport_hint_smoke():
    adios = make_adios("transport=rdma")
    write_steps(adios, "dp.rdma", num_steps=2)
    reader = adios.open_read("fields", "dp.rdma", RankContext(0, 1))
    steps = 0
    while reader.begin_step() is StepStatus.OK:
        assert reader.read("temp").shape == SHAPE
        reader.end_step()
        steps += 1
    assert steps == 2
    mon = stream_registry._states["dp.rdma"].monitor
    assert mon.metrics.counter("rdma.bytes_sent").value > 0


def test_shm_channel_carries_step_payload():
    adios = make_adios()
    write_steps(adios, "dp.shm", num_steps=2)
    mon = stream_registry._states["dp.shm"].monitor
    # 4 writers x 8x8 float64 blocks x 2 steps through the drain channel.
    assert mon.metrics.counter("shm.bytes_sent").value == 2 * 16 * 16 * 8


def test_bad_hints_rejected():
    from repro.core.stream import StreamError

    with pytest.raises(StreamError, match="transport"):
        make_adios("transport=carrier-pigeon").open_write(
            "fields", "dp.bad", RankContext(0, 1)
        )


def test_gauge_inc_dec():
    from repro.obs.metrics import Gauge

    g = Gauge("g")
    g.inc()
    g.inc(2)
    assert g.value == 3
    g.dec()
    assert g.value == 2
    assert g.max_value == 3
