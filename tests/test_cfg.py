"""CFG builder + forward dataflow engine coverage.

Deterministic shape tests pin the lowering of each compound statement
(branch joins, loop back-edges, try/finally routing, with markers), a
toy gen/kill analysis exercises the worklist engine, and a hypothesis
property generates arbitrary small function bodies and checks the
structural invariants every client rule relies on: one synthetic exit,
every surviving block reachable from the entry, and every surviving
block able to reach the exit.
"""

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import (
    Analysis,
    Block,
    WithEnter,
    WithExit,
    block_states,
    build_cfg,
    contains_await,
    run_forward,
    stmt_is_risky,
)


def cfg_of(code):
    tree = ast.parse(textwrap.dedent(code))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def labels(cfg):
    return {b.label for b in cfg.blocks if b.label}


def edge_kinds(cfg):
    return {(src.label or src.id, dst.label or dst.id, kind)
            for src in cfg.blocks for dst, kind in src.succs}


def reaches_exit(cfg):
    """Ids of blocks from which the synthetic exit is reachable."""
    preds = cfg.preds()
    seen = {cfg.exit.id}
    stack = [cfg.exit]
    while stack:
        block = stack.pop()
        for pred, _kind in preds.get(block.id, ()):  # noqa: B007
            if pred.id not in seen:
                seen.add(pred.id)
                stack.append(pred)
    return seen


# ---------------------------------------------------------------------------
# Shapes
# ---------------------------------------------------------------------------

def test_straight_line_single_exit():
    cfg = cfg_of("""
    def f():
        x = 1
        y = x + 1
        return y
    """)
    assert cfg.exit.succs == []
    assert sum(1 for b in cfg.blocks if b.label == "exit") == 1
    assert {b.id for b in cfg.blocks} == cfg.reachable() | {cfg.exit.id}


def test_risky_stmt_splits_block_with_exc_edge():
    cfg = cfg_of("""
    def f():
        x = 1
        g(x)
        y = 2
    """)
    call_block = next(
        b for b in cfg.blocks
        if any(isinstance(s, ast.Expr) for s in b.stmts)
    )
    kinds = {kind for _dst, kind in call_block.succs}
    assert kinds == {"flow", "exc"}
    assert any(dst is cfg.exit and k == "exc" for dst, k in call_block.succs)


def test_if_else_joins():
    cfg = cfg_of("""
    def f(c):
        if c:
            x = 1
        else:
            x = 2
        return x
    """)
    assert {"if.then", "if.else", "if.join"} <= labels(cfg)
    join = next(b for b in cfg.blocks if b.label == "if.join")
    assert len(cfg.preds()[join.id]) == 2


def test_while_loop_back_edge_and_exit():
    cfg = cfg_of("""
    def f(n):
        while n > 0:
            n -= 1
        return n
    """)
    header = next(b for b in cfg.blocks if b.label == "while.header")
    after = next(b for b in cfg.blocks if b.label == "while.after")
    # Header branches into the body and out past the loop.
    succ_labels = {dst.label for dst, _k in header.succs}
    assert succ_labels == {"while.body", "while.after"}
    # The body loops back to the header.
    body = next(b for b in cfg.blocks if b.label == "while.body")
    assert any(dst is header for dst, _k in body.succs)
    assert after.id in cfg.reachable()


def test_while_true_has_no_false_exit():
    cfg = cfg_of("""
    def f(q):
        while True:
            item = q.get()
            if item is None:
                break
    """)
    header = next(b for b in cfg.blocks if b.label == "while.header")
    # No header -> after edge: the only ways out are the break and the
    # exception edges of the risky call.
    assert all(dst.label != "while.after" for dst, _k in header.succs)
    after = next(b for b in cfg.blocks if b.label == "while.after")
    assert after.id in cfg.reachable()  # via the break


def test_break_and_continue_edges():
    cfg = cfg_of("""
    def f(xs):
        for x in xs:
            if x < 0:
                continue
            if x > 10:
                break
        return 1
    """)
    header = next(b for b in cfg.blocks if b.label == "for.header")
    after = next(b for b in cfg.blocks if b.label == "for.after")
    preds = cfg.preds()
    # continue adds a second edge into the header (beyond loop entry and
    # the normal body back-edge); break adds one into `after`.
    assert len(preds[header.id]) >= 3
    assert len(preds[after.id]) >= 2


def test_return_routed_through_finally():
    cfg = cfg_of("""
    def f(lease):
        try:
            return work(lease)
        finally:
            lease.release()
    """)
    fin = next(b for b in cfg.blocks if b.label == "finally")
    # The return edge lands in the finally, not directly on exit.
    ret_block = next(
        b for b in cfg.blocks
        if any(isinstance(s, ast.Return) for s in b.stmts)
    )
    assert any(dst is fin for dst, _k in ret_block.succs)
    assert not any(dst is cfg.exit for dst, _k in ret_block.succs)
    # The finally body still reaches the exit (propagation path).
    assert fin.id in reaches_exit(cfg)


def test_try_body_exc_edges_reach_every_handler():
    cfg = cfg_of("""
    def f():
        try:
            g()
        except ValueError:
            a()
        except KeyError:
            b()
    """)
    body = next(b for b in cfg.blocks if b.label == "try.body")
    exc_targets = {dst.label for dst, k in body.succs if k == "exc"}
    assert exc_targets == {"except.0", "except.1"}


def test_with_markers_bracket_the_body():
    cfg = cfg_of("""
    def f(lock):
        with lock:
            x = 1
        return x
    """)
    stmts = [s for b in cfg.blocks for s in b.stmts]
    enters = [s for s in stmts if isinstance(s, WithEnter)]
    exits = [s for s in stmts if isinstance(s, WithExit)]
    assert len(enters) == 1 and len(exits) == 1
    assert not stmt_is_risky(enters[0])
    assert not enters[0].is_async


def test_async_constructs_and_await_detection():
    cfg = cfg_of("""
    async def f(chan):
        async with chan.lock:
            await chan.send(b"x")
        async for item in chan:
            await handle(item)
    """)
    stmts = [s for b in cfg.blocks for s in b.stmts]
    assert any(isinstance(s, WithEnter) and s.is_async for s in stmts)
    awaited = [s for s in stmts if contains_await(s)]
    assert awaited  # both awaits visible to transfer functions
    # Awaits inside a nested def would not count:
    nested = ast.parse("def g():\n    async def h():\n        await x()\n")
    assert not contains_await(nested.body[0])


def test_unreachable_code_is_pruned():
    cfg = cfg_of("""
    def f():
        return 1
        x = 2
    """)
    stmts = [s for b in cfg.blocks for s in b.stmts]
    assert not any(isinstance(s, ast.Assign) for s in stmts)


# ---------------------------------------------------------------------------
# Dataflow engine
# ---------------------------------------------------------------------------

class _Taint(Analysis):
    """Toy may-analysis: ``x = taint()`` gens ``x``; ``x = 0`` kills.

    The kill is a constant rebind on purpose — it is not *risky* (no
    call), so it adds no exception edges and kill-on-all-paths can be
    asserted without the exc edges legitimately resurrecting the fact.
    """

    def transfer(self, stmt, state):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                value = stmt.value
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "taint"
                ):
                    return state | {target.id}
                if isinstance(value, ast.Constant):
                    return state - {target.id}
        return state


def test_run_forward_joins_branches():
    cfg = cfg_of("""
    def f(c):
        x = taint()
        if c:
            x = 0
        return x
    """)
    in_states = run_forward(cfg, _Taint())
    # May-analysis: the fact survives the branch that skipped the kill.
    assert "x" in in_states[cfg.exit.id]


def test_run_forward_kill_on_all_paths():
    cfg = cfg_of("""
    def f(c):
        x = taint()
        if c:
            x = 0
        else:
            x = 0
        return x
    """)
    in_states = run_forward(cfg, _Taint())
    assert "x" not in in_states[cfg.exit.id]


def test_block_states_replays_per_statement():
    block = Block(0)
    block.stmts = ast.parse("x = taint()\ny = 1").body
    pairs = list(block_states(block, frozenset(), _Taint().transfer))
    # Before the first stmt the state is empty; before the second the
    # taint fact has been generated.
    assert pairs[0][1] == frozenset()
    assert "x" in pairs[1][1]


def test_loop_reaches_fixpoint():
    cfg = cfg_of("""
    def f(n):
        while n > 0:
            x = taint()
            n -= 1
        return n
    """)
    in_states = run_forward(cfg, _Taint())
    header = next(b for b in cfg.blocks if b.label == "while.header")
    assert "x" in in_states[header.id]  # fact flows around the back edge


# ---------------------------------------------------------------------------
# Property: every generated body yields a connected, single-exit CFG
# ---------------------------------------------------------------------------

_SIMPLE = st.sampled_from([
    "x = 1",
    "y = g(x)",
    "f()",
    "pass",
    "return x",
    "raise ValueError('boom')",
])


def _indent(stmts):
    return "\n".join(
        "    " + line for s in stmts for line in s.splitlines()
    )


@st.composite
def _compound(draw, inner):
    kind = draw(st.sampled_from(["if", "ifelse", "while", "for", "try",
                                 "tryfinally", "with"]))
    body = _indent(draw(st.lists(inner, min_size=1, max_size=3)))
    if kind == "if":
        return f"if c:\n{body}"
    if kind == "ifelse":
        orelse = _indent(draw(st.lists(inner, min_size=1, max_size=2)))
        return f"if c:\n{body}\nelse:\n{orelse}"
    if kind == "while":
        # Non-constant test on purpose: `while True` without a break is
        # legitimately exit-free, which would break the connectivity
        # property below for honest reasons.
        return f"while c:\n{body}"
    if kind == "for":
        return f"for i in items:\n{body}"
    if kind == "try":
        handler = _indent(draw(st.lists(inner, min_size=1, max_size=2)))
        return f"try:\n{body}\nexcept ValueError:\n{handler}"
    if kind == "tryfinally":
        fin = _indent(draw(st.lists(inner, min_size=1, max_size=2)))
        return f"try:\n{body}\nfinally:\n{fin}"
    return f"with ctx:\n{body}"


_STMTS = st.recursive(_SIMPLE, _compound, max_leaves=12)


@settings(max_examples=120, deadline=None)
@given(st.lists(_STMTS, min_size=1, max_size=5))
def test_generated_bodies_yield_connected_single_exit_cfgs(stmts):
    code = "def fn(c, x, items, ctx):\n" + _indent(stmts)
    tree = ast.parse(code)
    cfg = build_cfg(tree.body[0])

    # Exactly one synthetic exit, and it is terminal.
    assert sum(1 for b in cfg.blocks if b.label == "exit") == 1
    assert cfg.exit.succs == []

    ids = {b.id for b in cfg.blocks}
    # Connected from the entry: pruning leaves no orphans but the exit.
    assert ids == cfg.reachable() | {cfg.exit.id}
    # Every surviving block can reach the exit: no path gets stuck.
    can_exit = reaches_exit(cfg)
    assert ids <= can_exit

    # Edges only point at surviving blocks.
    for block in cfg.blocks:
        for dst, kind in block.succs:
            assert dst.id in ids
            assert kind in ("flow", "exc")
