"""Tests for transport auto-selection and NUMA buffer policy."""

import pytest

from repro.core import FlexIO, FlexIORuntime, NumaBufferPolicy, TransportKind
from repro.machine import smoky, titan
from repro.util import MiB


def rt(machine=None, policy=NumaBufferPolicy.WRITER_LOCAL):
    return FlexIORuntime(machine or smoky(4), numa_policy=policy)


# ---------------------------------------------------------------------------
# Transport selection
# ---------------------------------------------------------------------------

def test_selects_inline_same_core():
    assert rt().select_transport(3, 3) is TransportKind.INLINE


def test_selects_shm_same_node():
    r = rt()
    assert r.select_transport(0, 1) is TransportKind.SHM
    assert r.select_transport(0, 15) is TransportKind.SHM  # cross NUMA, same node


def test_selects_rdma_cross_node():
    assert rt().select_transport(0, 16) is TransportKind.RDMA


def test_selects_file_for_offline():
    assert rt().select_transport(0, None) is TransportKind.FILE


def test_writer_must_be_placed():
    with pytest.raises(ValueError):
        rt().select_transport(None, 3)


# ---------------------------------------------------------------------------
# Transfer pricing
# ---------------------------------------------------------------------------

def test_transfer_time_ordering_inline_shm_rdma_file():
    """The cost hierarchy motivating placement flexibility."""
    r = rt()
    n = 10 * MiB
    t_inline = r.transfer_time(n, 0, 0)
    t_shm = r.transfer_time(n, 0, 1)
    t_rdma = r.transfer_time(n, 0, 16)
    t_file = r.transfer_time(n, 0, None)
    assert t_inline < t_shm < t_rdma < t_file


def test_shm_cross_numa_costs_more():
    r = rt()
    same = r.transfer_time(MiB, 0, 1)    # cores 0,1: same NUMA on smoky
    cross = r.transfer_time(MiB, 0, 12)  # different NUMA domain
    assert cross > same


def test_numa_policy_writer_local_protects_writer():
    """Writer-local buffers: only the reader pays the remote penalty on
    its copy, and the async writer-visible copy stays local-speed."""
    wl = rt(policy=NumaBufferPolicy.WRITER_LOCAL)
    rl = rt(policy=NumaBufferPolicy.READER_LOCAL)
    w_cost_wl = wl.writer_visible_transfer_time(MiB, 0, 12, asynchronous=True)
    w_cost_rl = rl.writer_visible_transfer_time(MiB, 0, 12, asynchronous=True)
    assert w_cost_wl < w_cost_rl


def test_xpmem_cheaper_for_large_shm():
    r = rt(machine=titan(2))
    classic = r.transfer_time(100 * MiB, 0, 1, xpmem=False)
    xp = r.transfer_time(100 * MiB, 0, 1, xpmem=True)
    assert xp < classic


def test_async_writer_visible_less_than_total():
    r = rt()
    total = r.transfer_time(10 * MiB, 0, 16)
    visible = r.writer_visible_transfer_time(10 * MiB, 0, 16, asynchronous=True)
    assert visible < total


def test_async_inline_is_free():
    r = rt()
    assert r.writer_visible_transfer_time(MiB, 5, 5, asynchronous=True) == 0.0


def test_rdma_contention_increases_time():
    r = rt()
    t1 = r.transfer_time(10 * MiB, 0, 16, concurrent_flows=1)
    t8 = r.transfer_time(10 * MiB, 0, 16, concurrent_flows=8)
    assert t8 > t1


# ---------------------------------------------------------------------------
# FlexIO façade
# ---------------------------------------------------------------------------

CONFIG = """
<adios-config>
  <adios-group name="g">
    <var name="x" type="float64" dimensions="4"/>
  </adios-group>
  <method group="g" method="FLEXPATH"/>
</adios-config>
"""


def test_flexio_facade_reports_method():
    f = FlexIO.from_xml(CONFIG, machine=smoky(2))
    assert f.method_name("g") == "FLEXPATH"
    assert f.is_stream("g")
    assert f.runtime is not None


def test_flexio_facade_without_machine():
    f = FlexIO.from_xml(CONFIG)
    assert f.runtime is None


def test_numa_policy_interleaved_both_pay():
    """Interleaved buffers: both sides pay a remote-ish penalty, so the
    total transfer sits between the two one-sided policies' extremes."""
    wl = rt(policy=NumaBufferPolicy.WRITER_LOCAL)
    il = rt(policy=NumaBufferPolicy.INTERLEAVED)
    n = 8 * MiB
    t_wl = wl.transfer_time(n, 0, 12)
    t_il = il.transfer_time(n, 0, 12)
    assert t_il > t_wl  # interleaved makes the writer's copy remote too


def test_same_numa_policies_equivalent():
    """Within one NUMA domain the buffer policy is moot."""
    times = {
        policy: rt(policy=policy).transfer_time(MiB, 0, 1)
        for policy in NumaBufferPolicy
    }
    assert len({round(t, 12) for t in times.values()}) == 1


def test_file_transport_pricing_uses_filesystem():
    r = rt()
    t = r.transfer_time(100 * MiB, 0, None)
    fs = r.machine.filesystem
    assert t == pytest.approx(fs.write_time(100 * MiB, num_clients=1))
