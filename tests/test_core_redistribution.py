"""Tests for MxN redistribution: plans, handshake caching, data movement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adios import BoundingBox, block_decompose
from repro.core import CachingOption, RedistributionEngine
from repro.core.redistribution import compute_plan


def grid_boxes(shape, grid):
    return block_decompose(shape, grid)


# ---------------------------------------------------------------------------
# Plan computation
# ---------------------------------------------------------------------------

def test_figure3_9_writers_2_readers():
    """The paper's Figure 3: 2D array on 9 writers passed to 2 readers."""
    shape = (9, 9)
    writers = grid_boxes(shape, (3, 3))
    readers = grid_boxes(shape, (2, 1))  # two horizontal halves (5+4 rows)
    plan = compute_plan(writers, readers)
    assert plan.num_writers == 9
    assert plan.num_readers == 2
    # Every writer's data lands somewhere; every reader gets full coverage.
    total = sum(p.overlap.size for p in plan.pairs)
    assert total == 81
    # Middle row of writers (rows 3..5) straddles the reader boundary at 5.
    middle = [p for p in plan.pairs if p.writer in (3, 4, 5)]
    assert {p.reader for p in middle} == {0, 1}


def test_identity_plan():
    boxes = grid_boxes((8, 8), (2, 2))
    plan = compute_plan(boxes, boxes)
    assert len(plan.pairs) == 4
    for p in plan.pairs:
        assert p.writer == p.reader
        assert p.overlap == boxes[p.writer]


def test_plan_lookup_tables():
    writers = grid_boxes((4,), (4,))
    readers = grid_boxes((4,), (2,))
    plan = compute_plan(writers, readers)
    assert len(plan.sends_of(0)) == 1
    assert plan.sends_of(0)[0].reader == 0
    assert {p.writer for p in plan.recvs_of(1)} == {2, 3}
    assert plan.data_message_count() == 4


def test_plan_total_bytes_and_matrix():
    writers = grid_boxes((4, 4), (2, 2))
    readers = [BoundingBox((0, 0), (4, 4))]
    plan = compute_plan(writers, readers)
    assert plan.total_bytes(itemsize=8) == 16 * 8
    mat = plan.communication_matrix(itemsize=8)
    assert mat.shape == (4, 1)
    assert mat.sum() == 128


def test_plan_validation():
    with pytest.raises(ValueError):
        compute_plan([], [BoundingBox((0,), (1,))])
    with pytest.raises(ValueError):
        compute_plan([BoundingBox((0,), (1,))], [])
    with pytest.raises(ValueError):
        compute_plan([BoundingBox((0,), (1,))], [BoundingBox((0, 0), (1, 1))])


# ---------------------------------------------------------------------------
# Data movement correctness
# ---------------------------------------------------------------------------

def test_move_reproduces_global_array():
    shape = (9, 6)
    writers = grid_boxes(shape, (3, 2))
    readers = grid_boxes(shape, (2, 3))
    eng = RedistributionEngine(writers, readers)
    full = np.arange(54.0).reshape(shape)
    blocks = [full[b.slices()].copy() for b in writers]
    out = eng.move(blocks)
    for rb, arr in zip(readers, out):
        np.testing.assert_array_equal(arr, full[rb.slices()])


def test_move_m_to_one_gather():
    shape = (8, 8)
    writers = grid_boxes(shape, (4, 2))
    readers = [BoundingBox((0, 0), shape)]
    eng = RedistributionEngine(writers, readers)
    full = np.random.default_rng(1).normal(size=shape)
    out = eng.move([full[b.slices()].copy() for b in writers])
    np.testing.assert_array_equal(out[0], full)


def test_move_one_to_n_scatter():
    shape = (10,)
    writers = [BoundingBox((0,), shape)]
    readers = grid_boxes(shape, (5,))
    eng = RedistributionEngine(writers, readers)
    full = np.arange(10.0)
    out = eng.move([full])
    for rb, arr in zip(readers, out):
        np.testing.assert_array_equal(arr, full[rb.slices()])


def test_move_partial_reader_selection():
    """Readers asking for a sub-region only receive that region."""
    shape = (8, 8)
    writers = grid_boxes(shape, (2, 2))
    readers = [BoundingBox((2, 2), (4, 4))]
    eng = RedistributionEngine(writers, readers)
    full = np.arange(64.0).reshape(shape)
    out = eng.move([full[b.slices()].copy() for b in writers])
    np.testing.assert_array_equal(out[0], full[2:6, 2:6])


def test_move_shape_validation():
    writers = grid_boxes((4,), (2,))
    readers = grid_boxes((4,), (2,))
    eng = RedistributionEngine(writers, readers)
    with pytest.raises(ValueError):
        eng.move([np.zeros(2)])  # wrong count
    with pytest.raises(ValueError):
        eng.move([np.zeros(3), np.zeros(2)])  # wrong shape


@settings(max_examples=30, deadline=None)
@given(
    wgrid=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    rgrid=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    shape=st.tuples(st.integers(4, 16), st.integers(4, 16)),
)
def test_property_any_mxn_redistribution_is_exact(wgrid, rgrid, shape):
    """For arbitrary M and N grids the redistribution is lossless."""
    writers = grid_boxes(shape, wgrid)
    readers = grid_boxes(shape, rgrid)
    eng = RedistributionEngine(writers, readers)
    full = np.arange(shape[0] * shape[1], dtype=np.float64).reshape(shape)
    out = eng.move([full[b.slices()].copy() for b in writers])
    for rb, arr in zip(readers, out):
        np.testing.assert_array_equal(arr, full[rb.slices()])


# ---------------------------------------------------------------------------
# Handshake caching options
# ---------------------------------------------------------------------------

def engine_with(caching, batching=False, M=9, N=2):
    writers = grid_boxes((18, 18), (3, 3))[:M] if M == 9 else grid_boxes((M, 4), (M, 1))
    readers = grid_boxes((18, 18), (2, 1))
    return RedistributionEngine(writers, readers, caching=caching, batching=batching)


def test_no_caching_repeats_full_protocol():
    eng = engine_with(CachingOption.NO_CACHING)
    c1 = eng.handshake()
    c2 = eng.handshake()
    assert c1.messages == c2.messages > 0
    assert "gather_local" in c1.steps_performed
    assert "exchange_and_broadcast" in c2.steps_performed


def test_caching_local_skips_step1_after_first():
    eng = engine_with(CachingOption.CACHING_LOCAL)
    c1 = eng.handshake()
    c2 = eng.handshake()
    assert "gather_local" in c1.steps_performed
    assert "gather_local" not in c2.steps_performed
    assert "exchange_and_broadcast" in c2.steps_performed
    assert c2.messages < c1.messages


def test_caching_all_eliminates_handshake():
    eng = engine_with(CachingOption.CACHING_ALL)
    c1 = eng.handshake()
    c2 = eng.handshake()
    assert c1.messages > 0
    assert c2.messages == 0
    assert c2.steps_performed == ()


def test_caching_hierarchy_message_counts():
    """Steady-state control traffic: ALL < LOCAL < NO_CACHING."""
    counts = {}
    for opt in CachingOption:
        eng = engine_with(opt)
        eng.handshake()  # warm-up
        counts[opt] = eng.handshake().messages
    assert counts[CachingOption.CACHING_ALL] < counts[CachingOption.CACHING_LOCAL]
    assert counts[CachingOption.CACHING_LOCAL] < counts[CachingOption.NO_CACHING]


def test_distribution_change_invalidates_caches():
    eng = engine_with(CachingOption.CACHING_ALL)
    eng.handshake()
    assert eng.handshake().messages == 0
    eng.update_writer_boxes(grid_boxes((18, 18), (9, 1)))
    assert eng.handshake().messages > 0  # full protocol again


def test_batching_aggregates_rounds():
    nvars = 22  # the S3D case
    un = engine_with(CachingOption.NO_CACHING, batching=False)
    ba = engine_with(CachingOption.NO_CACHING, batching=True)
    c_un = un.handshake(num_variables=nvars)
    c_ba = ba.handshake(num_variables=nvars)
    assert c_un.messages == nvars * c_ba.messages
    assert un.data_message_count(nvars) == nvars * ba.data_message_count(nvars)


def test_handshake_validation():
    eng = engine_with(CachingOption.NO_CACHING)
    with pytest.raises(ValueError):
        eng.handshake(num_variables=0)


# ---------------------------------------------------------------------------
# Writer-visible timing: the S3D tuning story
# ---------------------------------------------------------------------------

def _timing(eng, nvars=22, asynchronous=False):
    # Fixed per-message costs keep the comparison transparent.
    return eng.writer_visible_time(
        itemsize=8,
        num_variables=nvars,
        transfer_time=lambda w, r, n: 10e-6 + n / 5e9,
        control_time=lambda n: 8e-6,
        asynchronous=asynchronous,
    )


def test_tuning_stack_reduces_writer_visible_time():
    """CACHING_ALL + batching + async each help; together they dominate."""
    base = _timing(engine_with(CachingOption.NO_CACHING, batching=False))
    cached_eng = engine_with(CachingOption.CACHING_ALL, batching=True)
    _timing(cached_eng)  # warm-up step
    tuned = _timing(cached_eng, asynchronous=True)
    assert tuned < base / 10


def test_async_faster_than_sync():
    e1 = engine_with(CachingOption.CACHING_ALL, batching=True)
    e1.handshake()
    sync = _timing(e1, asynchronous=False)
    e2 = engine_with(CachingOption.CACHING_ALL, batching=True)
    e2.handshake()
    asyn = _timing(e2, asynchronous=True)
    assert asyn < sync
