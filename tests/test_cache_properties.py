"""Property-based tests for the shared-cache contention model."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.machine.cache import CacheContentionModel, CacheProfile
from repro.util import MiB


def profile(ws_mib, intensity, base_miss=5.0, name="w"):
    return CacheProfile(
        name=name,
        working_set_bytes=ws_mib * MiB,
        intensity=intensity,
        base_miss_per_kinst=base_miss,
        cpi=1.2,
        miss_penalty_cycles=20.0,
    )


profiles = st.builds(
    profile,
    ws_mib=st.floats(0.25, 32.0),
    intensity=st.floats(0.5, 20.0),
    base_miss=st.floats(0.1, 20.0),
)


@settings(max_examples=60, deadline=None)
@given(p=profiles, l3_mib=st.floats(0.5, 16.0))
def test_property_solo_never_exceeds_base(p, l3_mib):
    """Running alone, a workload misses at exactly its solo rate."""
    model = CacheContentionModel()
    rates = model.shared_miss_rates([p], l3_mib * MiB)
    assert rates[0] == pytest.approx(p.base_miss_per_kinst)


@settings(max_examples=60, deadline=None)
@given(a=profiles, b=profiles, l3_mib=st.floats(0.5, 16.0))
def test_property_corunning_never_helps(a, b, l3_mib):
    """Adding a co-runner can only raise (or keep) everyone's miss rate."""
    model = CacheContentionModel()
    l3 = l3_mib * MiB
    solo = model.shared_miss_rates([a], l3)[0]
    shared = model.shared_miss_rates([a, b], l3)[0]
    assert shared >= solo - 1e-12


@settings(max_examples=60, deadline=None)
@given(a=profiles, b=profiles, c=profiles, l3_mib=st.floats(0.5, 16.0))
def test_property_more_corunners_more_pressure(a, b, c, l3_mib):
    model = CacheContentionModel()
    l3 = l3_mib * MiB
    two = model.shared_miss_rates([a, b], l3)[0]
    three = model.shared_miss_rates([a, b, c], l3)[0]
    assert three >= two - 1e-12


@settings(max_examples=60, deadline=None)
@given(a=profiles, b=profiles, l3_mib=st.floats(0.5, 16.0))
def test_property_allocations_conserve_capacity(a, b, l3_mib):
    """Allocations never exceed the cache, and only fall short when the
    demand itself is smaller than the cache."""
    model = CacheContentionModel()
    l3 = l3_mib * MiB
    allocs = model.allocations([a, b], l3)
    total_demand = a.working_set_bytes + b.working_set_bytes
    assert sum(allocs) <= l3 * (1 + 1e-9)
    if total_demand >= l3:
        assert sum(allocs) == pytest.approx(l3)
    for alloc, p in zip(allocs, (a, b)):
        assert alloc <= p.working_set_bytes * (1 + 1e-9) or alloc <= l3


@settings(max_examples=60, deadline=None)
@given(
    p=profiles,
    m1=st.floats(0.1, 50.0),
    m2=st.floats(0.1, 50.0),
)
def test_property_slowdown_monotone_in_misses(p, m1, m2):
    model = CacheContentionModel()
    lo, hi = sorted((m1, m2))
    assert model.slowdown(p, lo) <= model.slowdown(p, hi)
    assert model.slowdown(p, 0.0) == 0.0


@settings(max_examples=40, deadline=None)
@given(a=profiles, b=profiles, small=st.floats(0.5, 4.0), factor=st.floats(1.5, 8.0))
def test_property_bigger_cache_never_worse(a, b, small, factor):
    """Growing the shared L3 never increases anyone's miss rate."""
    model = CacheContentionModel()
    l3_small = small * MiB
    l3_big = small * factor * MiB
    r_small = model.shared_miss_rates([a, b], l3_small)
    r_big = model.shared_miss_rates([a, b], l3_big)
    assert r_big[0] <= r_small[0] + 1e-9
    assert r_big[1] <= r_small[1] + 1e-9


def test_monitor_report_text():
    """The new textual report includes every category row."""
    from repro.core import PerfMonitor

    mon = PerfMonitor()
    mon.record("data_movement", "x", 0.0, 2.0, nbytes=4_000_000)
    mon.alloc(123)
    text = mon.report()
    assert "data_movement" in text
    assert "2.0000" in text
    assert "peak tracked allocation: 123 bytes" in text
