"""Tests for the figure-regeneration module (fast, small configurations)."""

import os

import pytest

from repro.figures import (
    fig4_rdma_registration,
    fig6_gts_total_execution_time,
    fig8_cache_miss_rates,
    fig9_s3d_total_execution_time,
    format_table,
    gts_cost_metrics,
    s3d_movement_tuning,
    write_table,
)
from repro.figures.fig6 import SERIES as FIG6_SERIES
from repro.figures.fig7 import fig7_gts_detailed_timing, fig7_headline_numbers
from repro.figures.fig9 import SERIES as FIG9_SERIES


def test_fig4_rows_and_custom_sizes():
    rows = fig4_rdma_registration(sizes=[1024, 2048])
    assert [r["msg_bytes"] for r in rows] == [1024, 2048]
    assert set(rows[0]) == {"msg_bytes", "static_MBps", "dynamic_MBps", "dynamic/static"}


def test_fig6_series_complete():
    rows = fig6_gts_total_execution_time("smoky", core_counts=[128], num_steps=5)
    assert len(rows) == 1
    for series in FIG6_SERIES:
        assert series in rows[0]
    assert rows[0]["gts_cores"] == 128


def test_fig6_unknown_machine():
    with pytest.raises(ValueError):
        fig6_gts_total_execution_time("summit")


def test_fig7_headlines_structure():
    rows = fig7_gts_detailed_timing(num_ranks=16, num_steps=5)
    assert [r["case"][0] for r in rows] == ["1", "2", "3"]
    heads = fig7_headline_numbers(rows)
    assert set(heads) == {
        "inline_analysis_fraction",
        "take_one_core_slowdown",
        "helper_cache_slowdown",
        "analytics_idle_fraction",
    }
    assert 0 < heads["inline_analysis_fraction"] < 1


def test_fig8_rows():
    rows = fig8_cache_miss_rates("smoky")
    assert rows[0]["config"].endswith("solo")
    assert rows[1]["llc_misses_per_kinst"] > rows[0]["llc_misses_per_kinst"]


def test_fig9_series_complete():
    rows = fig9_s3d_total_execution_time("titan", core_counts=[128], num_steps=5)
    for series in FIG9_SERIES:
        assert series in rows[0]


def test_gts_cost_metrics_rows():
    rows = gts_cost_metrics("smoky", gts_cores=128, num_steps=5)
    names = {r["placement"] for r in rows}
    assert "lower-bound" in names and "staging" in names
    for r in rows:
        assert r["tet_s"] > 0
        assert r["gap_to_lb"] >= 0


def test_tuning_speedup_row():
    rows = s3d_movement_tuning("titan", num_writers=64, num_readers=2)
    assert rows[-1]["configuration"].startswith("speedup")
    assert rows[-1]["movement_s"] > 1  # untuned/tuned > 1


# ---------------------------------------------------------------------------
# Table rendering
# ---------------------------------------------------------------------------

def test_format_table_alignment_and_floats():
    text = format_table(
        [{"a": 1.23456, "b": "x"}, {"a": 1e-7, "b": "longer"}], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "1.235" in text
    assert "1.000e-07" in text


def test_format_table_empty():
    assert "(no rows)" in format_table([], title="empty")


def test_format_table_column_selection():
    text = format_table([{"a": 1, "b": 2}], columns=["b"])
    assert "b" in text and "a" not in text.splitlines()[0]


def test_write_table_creates_file(tmp_path):
    out = write_table(
        [{"x": 1}], "unit_test_table", title="t", results_dir=str(tmp_path)
    )
    path = tmp_path / "unit_test_table.txt"
    assert path.exists()
    assert path.read_text() == out
