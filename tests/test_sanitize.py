"""Runtime concurrency sanitizer ("tsan-lite") tests.

Covers the three violation classes — SPSC discipline, lock-order
inversions, un-joined pipeline threads — plus the enable/disable
machinery and the live-stream integration (a full pipelined write/read
run under the sanitizer must be violation-free).
"""

import threading

import numpy as np
import pytest

from repro.adios import Adios, RankContext
from repro.analysis import sanitize
from repro.analysis.sanitize import (
    LOCK_ORDER,
    SPSC_CONSUMER,
    SPSC_PRODUCER,
    UNJOINED_THREAD,
    SanitizerError,
    TrackedLock,
)
from repro.core.stream import stream_registry
from repro.transport.shm import ShmChannel, SPSCQueue


@pytest.fixture()
def san():
    instance = sanitize.enable(fresh=True)
    yield instance
    sanitize.disable()


@pytest.fixture(autouse=True)
def fresh_streams():
    stream_registry.reset()
    yield
    stream_registry.reset()
    sanitize.disable()


def kinds(instance):
    return sorted({v.kind for v in instance.violations()})


def run_in_thread(fn):
    t = threading.Thread(target=fn)
    t.start()
    t.join()


# ---------------------------------------------------------------------------
# SPSC discipline
# ---------------------------------------------------------------------------

def test_mis_threaded_producer_is_flagged(san):
    q = SPSCQueue(slots=4, payload_size=64)
    q.try_enqueue(b"owner claims the producer side")
    run_in_thread(lambda: q.try_enqueue(b"interloper"))
    assert kinds(san) == [SPSC_PRODUCER]
    # One violation per (queue, side), not one per operation.
    run_in_thread(lambda: q.try_enqueue(b"again"))
    assert len(san.violations()) == 1
    with pytest.raises(SanitizerError):
        san.assert_clean()


def test_mis_threaded_consumer_is_flagged(san):
    q = SPSCQueue(slots=4, payload_size=64)
    q.try_enqueue(b"x")
    q.try_dequeue()  # main thread owns the consumer side
    q.try_enqueue(b"y")
    run_in_thread(q.try_dequeue)
    assert kinds(san) == [SPSC_CONSUMER]


def test_clean_two_thread_spsc_run(san):
    q = SPSCQueue(slots=8, payload_size=64)
    received = []

    def consume():
        while len(received) < 16:
            item = q.try_dequeue()
            if item is not None:
                received.append(item)

    consumer = threading.Thread(target=consume)
    consumer.start()
    for i in range(16):
        q.enqueue(b"msg-%02d" % i)
    consumer.join()
    assert len(received) == 16
    san.assert_clean()


def test_channel_close_from_other_thread_is_not_a_violation(san):
    # Shutdown pattern: the writer thread calls close() while the drainer
    # owns the producer side — close is not a queue *operation*.
    channel = ShmChannel()
    run_in_thread(lambda: channel.send(np.arange(8, dtype=np.uint8)))
    run_in_thread(channel.recv)
    channel.close()
    san.assert_clean()


def test_disabled_sanitizer_records_nothing(monkeypatch):
    monkeypatch.delenv("FLEXIO_SANITIZE", raising=False)
    sanitize.disable()
    sanitize._env_checked = False  # force a fresh env read
    assert sanitize.get() is None
    q = SPSCQueue(slots=4, payload_size=64)
    q.try_enqueue(b"x")
    run_in_thread(lambda: q.try_enqueue(b"y"))  # would violate if enabled


def test_env_var_activates(monkeypatch):
    monkeypatch.setenv("FLEXIO_SANITIZE", "1")
    sanitize.disable()
    sanitize._env_checked = False
    try:
        assert sanitize.enabled()
    finally:
        sanitize.disable()


# ---------------------------------------------------------------------------
# Lock ordering
# ---------------------------------------------------------------------------

def test_lock_order_inversion_is_flagged(san):
    a, b = TrackedLock("lock.a"), TrackedLock("lock.b")
    with a:
        with b:
            pass
    with b:
        with a:  # inverse order: potential deadlock even without one
            pass
    assert kinds(san) == [LOCK_ORDER]
    assert len(san.violations()) == 1  # flagged once per pair


def test_consistent_lock_order_is_clean(san):
    a, b = TrackedLock("lock.a"), TrackedLock("lock.b")
    for _ in range(3):
        with a:
            with b:
                pass
    san.assert_clean()


def test_make_lock_tracks_only_when_active(san):
    assert isinstance(sanitize.make_lock("x"), TrackedLock)
    sanitize.disable()
    assert isinstance(sanitize.make_lock("x"), type(threading.Lock()))


# ---------------------------------------------------------------------------
# Un-joined pipeline threads
# ---------------------------------------------------------------------------

def test_unjoined_thread_flagged_at_shutdown(san):
    release = threading.Event()
    t = threading.Thread(target=release.wait, daemon=True)
    t.start()
    san.note_thread_started(t, "drainer:test")
    added = san.check_shutdown()
    assert [v.kind for v in added] == [UNJOINED_THREAD]
    assert "drainer:test" in str(added[0])
    release.set()
    t.join()


def test_joined_thread_is_clean(san):
    t = threading.Thread(target=lambda: None)
    t.start()
    san.note_thread_started(t, "drainer:test")
    t.join()
    san.note_thread_joined(t)
    assert san.check_shutdown() == []
    san.assert_clean()


# ---------------------------------------------------------------------------
# Live-stream integration
# ---------------------------------------------------------------------------

_XML = """
<adios-config>
  <adios-group name="g">
    <var name="v" type="float64" dimensions="n"/>
  </adios-group>
  <method group="g" method="FLEXPATH">queue_depth=2</method>
</adios-config>
"""


def test_pipelined_stream_run_is_violation_free(san):
    """The real drainer thread drives the real SPSC machinery: writer on
    the main thread, drain on the pipeline thread, clean join at close —
    the sanitizer must stay silent end to end."""
    adios = Adios.from_xml(_XML)
    writer = adios.open_write("g", "san.stream", RankContext(0, 1))
    for step in range(4):
        writer.write("v", np.full(2048, step, dtype=np.float64))
        writer.end_step()
    writer.close()
    reader = adios.open_read("g", "san.stream", RankContext(0, 1))
    got = reader.read_block("v", 0)
    assert got[0] == 0.0
    reader.close()
    stream_registry.close_stream("san.stream")
    san.check_shutdown()
    san.assert_clean()


def test_reset_drops_learned_state(san):
    q = SPSCQueue(slots=4, payload_size=64)
    q.try_enqueue(b"x")
    run_in_thread(lambda: q.try_enqueue(b"y"))
    assert san.violations()
    san.reset()
    assert san.violations() == []
    san.assert_clean()
