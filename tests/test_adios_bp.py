"""Tests for the BP-lite file format: write, index, selection reads."""

import numpy as np
import pytest

from repro.adios import BoundingBox, BpFormatError, BpReader, BpWriter, block_decompose


def write_global_array(path, steps=2, grid=(3, 3), shape=(9, 6)):
    """Write a block-decomposed 2D global array over several steps."""
    boxes = block_decompose(shape, grid)
    with BpWriter(path) as w:
        for s in range(steps):
            w.begin_step()
            full = np.arange(shape[0] * shape[1], dtype=np.float64).reshape(shape) + 100 * s
            for rank, box in enumerate(boxes):
                w.write(rank, "field", full[box.slices()].copy(), box=box, global_shape=shape)
            w.end_step()
    return boxes


def test_write_read_full_global_array(tmp_path):
    path = tmp_path / "field.bp"
    write_global_array(path)
    with BpReader(path) as r:
        full = r.read("field", step=1)
        expected = np.arange(54, dtype=np.float64).reshape(9, 6) + 100
        np.testing.assert_array_equal(full, expected)


def test_read_selection_spanning_blocks(tmp_path):
    path = tmp_path / "field.bp"
    write_global_array(path)
    with BpReader(path) as r:
        sel = r.read("field", step=0, start=(2, 1), count=(5, 4))
        expected = np.arange(54, dtype=np.float64).reshape(9, 6)[2:7, 1:5]
        np.testing.assert_array_equal(sel, expected)


def test_selection_read_fetches_only_touched_blocks(tmp_path):
    """The index spares us reading blocks outside the selection."""
    path = tmp_path / "field.bp"
    write_global_array(path, steps=1, grid=(3, 3), shape=(9, 9))
    with BpReader(path) as r:
        r.read("field", step=0, start=(0, 0), count=(3, 3))  # one corner block
        one_block = 3 * 3 * 8
        assert r.bytes_read == one_block


def test_process_group_read(tmp_path):
    path = tmp_path / "pg.bp"
    with BpWriter(path) as w:
        w.begin_step()
        for rank in range(4):
            w.write(rank, "zion", np.full((5, 7), float(rank)))
        w.end_step()
    with BpReader(path) as r:
        for rank in range(4):
            block = r.read_block("zion", step=0, rank=rank)
            assert block.shape == (5, 7)
            assert (block == rank).all()


def test_read_block_missing_rank(tmp_path):
    path = tmp_path / "pg.bp"
    with BpWriter(path) as w:
        w.begin_step()
        w.write(0, "x", np.zeros(3))
        w.end_step()
    with BpReader(path) as r:
        with pytest.raises(KeyError):
            r.read_block("x", step=0, rank=5)


def test_var_meta_and_names(tmp_path):
    path = tmp_path / "meta.bp"
    with BpWriter(path) as w:
        w.begin_step()
        w.write(0, "a", np.array([1.0, 5.0]))
        w.write(0, "b", np.array([[1, 2]], dtype=np.int64))
        w.end_step()
        w.begin_step()
        w.write(0, "a", np.array([-2.0, 3.0]))
        w.end_step()
    with BpReader(path) as r:
        assert r.var_names() == ["a", "b"]
        meta = r.var_meta("a")
        assert meta.steps == 2
        assert meta.min_value == -2.0
        assert meta.max_value == 5.0
        assert np.dtype(meta.dtype) == np.float64
        with pytest.raises(KeyError):
            r.var_meta("missing")


def test_minmax_index_pruning(tmp_path):
    """Range queries prune blocks by index characteristics without I/O."""
    path = tmp_path / "prune.bp"
    with BpWriter(path) as w:
        w.begin_step()
        w.write(0, "v", np.array([0.0, 1.0]))     # [0, 1]
        w.write(1, "v", np.array([5.0, 9.0]))     # [5, 9]
        w.write(2, "v", np.array([20.0, 30.0]))   # [20, 30]
        w.end_step()
    with BpReader(path) as r:
        hits = r.blocks_in_range("v", 0, vmin=4.0, vmax=10.0)
        assert [e.rank for e in hits] == [1]
        hits = r.blocks_in_range("v", 0, vmin=0.5, vmax=25.0)
        assert [e.rank for e in hits] == [0, 1, 2]
        assert r.blocks_in_range("v", 0, vmin=100.0, vmax=200.0) == []


def test_dtype_preserved(tmp_path):
    path = tmp_path / "dtypes.bp"
    arrays = {
        "f32": np.arange(4, dtype=np.float32),
        "i64": np.arange(4, dtype=np.int64),
        "u8": np.arange(4, dtype=np.uint8),
    }
    with BpWriter(path) as w:
        w.begin_step()
        for name, arr in arrays.items():
            w.write(0, name, arr)
        w.end_step()
    with BpReader(path) as r:
        for name, arr in arrays.items():
            out = r.read_block(name, 0, 0)
            assert out.dtype == arr.dtype
            np.testing.assert_array_equal(out, arr)


def test_writer_protocol_enforced(tmp_path):
    path = tmp_path / "bad.bp"
    w = BpWriter(path)
    with pytest.raises(BpFormatError):
        w.write(0, "x", np.zeros(1))  # no begin_step
    w.begin_step()
    with pytest.raises(BpFormatError):
        w.begin_step()  # double begin
    w.write(0, "x", np.zeros(1))
    w.end_step()
    with pytest.raises(BpFormatError):
        w.end_step()  # double end
    w.close()
    w.close()  # idempotent


def test_writer_box_shape_mismatch(tmp_path):
    w = BpWriter(tmp_path / "bad2.bp")
    w.begin_step()
    with pytest.raises(ValueError):
        w.write(0, "x", np.zeros((2, 2)), box=BoundingBox((0, 0), (3, 3)))
    w.close()


def test_reader_rejects_non_bp_file(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"this is not a bp file at all, definitely not")
    with pytest.raises(BpFormatError):
        BpReader(path)


def test_reader_rejects_truncated_file(tmp_path):
    good = tmp_path / "good.bp"
    write_global_array(good, steps=1)
    data = good.read_bytes()
    bad = tmp_path / "trunc.bp"
    bad.write_bytes(data[:-20])
    with pytest.raises(BpFormatError):
        BpReader(bad)


def test_local_array_global_read_rejected(tmp_path):
    path = tmp_path / "local.bp"
    with BpWriter(path) as w:
        w.begin_step()
        w.write(0, "x", np.zeros(3))
        w.end_step()
    with BpReader(path) as r:
        with pytest.raises(BpFormatError):
            r.read("x", step=0)


def test_empty_variable_stats(tmp_path):
    path = tmp_path / "empty.bp"
    with BpWriter(path) as w:
        w.begin_step()
        w.write(0, "e", np.zeros((0,)))
        w.end_step()
    with BpReader(path) as r:
        out = r.read_block("e", 0, 0)
        assert out.size == 0


def test_bytes_written_counter(tmp_path):
    path = tmp_path / "count.bp"
    with BpWriter(path) as w:
        w.begin_step()
        w.write(0, "x", np.zeros(100, dtype=np.float64))
        w.end_step()
        assert w.bytes_written == 800
