"""Tests for the MPI_AGGREGATE file method (aggregators + subfiles)."""

import os

import numpy as np
import pytest

import repro.adios.aggregate  # registers the method
from repro.adios import Adios, AdiosError, EndOfStream, RankContext, block_decompose

CONFIG = """
<adios-config>
  <adios-group name="fields">
    <var name="temp" type="float64" dimensions="16,16"/>
  </adios-group>
  <method group="fields" method="MPI_AGGREGATE">aggregators={aggs}</method>
</adios-config>
"""


def write_run(path, num_ranks=8, aggs=2, steps=2):
    ad = Adios.from_xml(CONFIG.format(aggs=aggs))
    shape = (16, 16)
    boxes = block_decompose(shape, (num_ranks, 1))
    full = np.arange(256.0).reshape(shape)
    writers = [ad.open_write("fields", path, RankContext(r, num_ranks)) for r in range(num_ranks)]
    for step in range(steps):
        for r, w in enumerate(writers):
            w.write("temp", full[boxes[r].slices()] + step, box=boxes[r], global_shape=shape)
        for w in writers:
            w.end_step()
    for w in writers:
        w.close()
    return ad, full


def test_subfile_layout_on_disk(tmp_path):
    path = str(tmp_path / "agg.bp")
    write_run(path, num_ranks=8, aggs=2)
    d = path + ".dir"
    assert os.path.isdir(d)
    files = sorted(os.listdir(d))
    assert files == ["data.0.bp", "data.1.bp", "manifest.txt"]
    manifest = open(os.path.join(d, "manifest.txt")).read()
    assert "bplite-aggregate v1" in manifest
    assert "rank 0 data.0.bp" in manifest
    assert "rank 7 data.1.bp" in manifest


def test_global_array_read_across_subfiles(tmp_path):
    path = str(tmp_path / "agg.bp")
    ad, full = write_run(path, num_ranks=8, aggs=4)
    reader = ad.open_read("fields", path, RankContext(0, 1))
    np.testing.assert_array_equal(reader.read("temp"), full)
    sel = reader.read("temp", start=(3, 2), count=(10, 12))
    np.testing.assert_array_equal(sel, full[3:13, 2:14])
    reader._advance()
    np.testing.assert_array_equal(reader.read("temp"), full + 1)
    with pytest.raises(EndOfStream):
        reader._advance()
    reader.close()


def test_process_group_read_routes_to_right_subfile(tmp_path):
    path = str(tmp_path / "agg.bp")
    ad, full = write_run(path, num_ranks=8, aggs=3)
    reader = ad.open_read("fields", path, RankContext(0, 1))
    boxes = block_decompose((16, 16), (8, 1))
    for rank in range(8):
        np.testing.assert_array_equal(
            reader.read_block("temp", rank), full[boxes[rank].slices()]
        )
    with pytest.raises(KeyError):
        reader.read_block("temp", 99)
    reader.close()


def test_var_meta_aggregates_over_subfiles(tmp_path):
    path = str(tmp_path / "agg.bp")
    ad, full = write_run(path, num_ranks=4, aggs=2)
    reader = ad.open_read("fields", path, RankContext(0, 1))
    meta = reader.var_meta("temp")
    assert meta.global_shape == (16, 16)
    assert meta.min_value == 0.0
    assert meta.max_value == 256.0  # step 1 adds 1 to the max of 255
    assert reader.available_vars() == ["temp"]
    reader.close()


def test_single_aggregator_degenerates_to_one_subfile(tmp_path):
    path = str(tmp_path / "one.bp")
    write_run(path, num_ranks=4, aggs=1)
    files = sorted(os.listdir(path + ".dir"))
    assert files == ["data.0.bp", "manifest.txt"]


def test_more_aggregators_than_ranks_clamped(tmp_path):
    path = str(tmp_path / "many.bp")
    write_run(path, num_ranks=2, aggs=16)
    files = [f for f in os.listdir(path + ".dir") if f.endswith(".bp")]
    assert len(files) == 2


def test_reader_without_manifest_rejected(tmp_path):
    path = str(tmp_path / "ghost.bp")
    ad = Adios.from_xml(CONFIG.format(aggs=2))
    with pytest.raises(AdiosError):
        ad.open_read("fields", path, RankContext(0, 1))


def test_rank_distribution_is_contiguous(tmp_path):
    """The ADIOS default: contiguous rank blocks per aggregator —
    preserving write locality within each subfile."""
    path = str(tmp_path / "contig.bp")
    write_run(path, num_ranks=8, aggs=2)
    manifest = open(os.path.join(path + ".dir", "manifest.txt")).read()
    for rank in range(4):
        assert f"rank {rank} data.0.bp" in manifest
    for rank in range(4, 8):
        assert f"rank {rank} data.1.bp" in manifest
