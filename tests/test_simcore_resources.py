"""Unit tests for resources and stores."""

import pytest

from repro.simcore import Environment, Interrupt, Preempted, PriorityResource, Resource, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_capacity_enforced():
    env = Environment()
    res = Resource(env, capacity=2)
    held_at = []

    def user(env, res, hold):
        with res.request() as req:
            yield req
            held_at.append(env.now)
            yield env.timeout(hold)

    for _ in range(4):
        env.process(user(env, res, hold=10))
    env.run()
    # Two get in at t=0, the next two at t=10.
    assert held_at == [0.0, 0.0, 10.0, 10.0]


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, res, tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    for tag in "abcd":
        env.process(user(env, res, tag))
    env.run()
    assert order == list("abcd")


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=3)

    def proc(env, res):
        r1 = res.request()
        r2 = res.request()
        yield r1
        yield r2
        assert res.in_use == 2
        assert res.available == 1
        res.release(r1)
        assert res.in_use == 1
        res.release(r2)
        assert res.available == 3

    env.run(env.process(proc(env, res)))


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_request_cancel():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def impatient(env, res):
        req = res.request()
        result = yield req | env.timeout(1)
        if req not in result:
            req.cancel()
            got.append("gave-up")
        else:
            got.append("acquired")

    def patient(env, res):
        with res.request() as req:
            yield req
            got.append(("patient", env.now))

    env.process(holder(env, res))
    env.process(impatient(env, res))
    env.process(patient(env, res))
    env.run()
    assert "gave-up" in got
    assert ("patient", 5.0) in got


def test_release_via_context_manager_on_exception():
    env = Environment()
    res = Resource(env, capacity=1)

    def crasher(env, res):
        with res.request() as req:
            yield req
            raise RuntimeError("dies holding the resource")

    def successor(env, res):
        with res.request() as req:
            yield req
            return env.now

    p1 = env.process(crasher(env, res))
    p2 = env.process(successor(env, res))

    def supervisor(env, p1, p2):
        try:
            yield p1
        except RuntimeError:
            pass
        return (yield p2)

    assert env.run(env.process(supervisor(env, p1, p2))) == 0.0


# ---------------------------------------------------------------------------
# PriorityResource
# ---------------------------------------------------------------------------

def test_priority_queue_order():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def user(env, res, tag, prio, delay):
        yield env.timeout(delay)
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        yield env.timeout(10)
        res.release(req)

    env.process(user(env, res, "first", prio=5, delay=0))
    env.process(user(env, res, "low", prio=9, delay=1))
    env.process(user(env, res, "high", prio=1, delay=2))
    env.run()
    assert order == ["first", "high", "low"]


def test_priority_ties_are_fifo():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def user(env, res, tag):
        req = res.request(priority=3)
        yield req
        order.append(tag)
        yield env.timeout(1)
        res.release(req)

    for tag in range(4):
        env.process(user(env, res, tag))
    env.run()
    assert order == [0, 1, 2, 3]


def test_preemption_evicts_lower_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    log = []

    def background(env, res):
        req = res.request(priority=9)
        req.owner = env.active_process
        yield req
        try:
            yield env.timeout(100)
            log.append("finished")
        except Interrupt as intr:
            assert isinstance(intr.cause, Preempted)
            log.append(("preempted", env.now))

    def urgent(env, res):
        yield env.timeout(5)
        req = res.request(priority=0, preempt=True)
        yield req
        log.append(("acquired", env.now))
        res.release(req)

    def driver(env):
        p1 = env.process(background(env, res))
        p2 = env.process(urgent(env, res))
        yield p1 & p2

    env.run(env.process(driver(env)))
    assert ("preempted", 5.0) in log
    assert ("acquired", 5.0) in log


def test_no_preemption_of_higher_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    log = []

    def holder(env, res):
        req = res.request(priority=0)
        req.owner = env.active_process
        yield req
        yield env.timeout(10)
        log.append("holder-done")
        res.release(req)

    def wannabe(env, res):
        yield env.timeout(1)
        req = res.request(priority=5, preempt=True)
        yield req
        log.append(("wannabe", env.now))
        res.release(req)

    env.process(holder(env, res))
    env.process(wannabe(env, res))
    env.run()
    assert log == ["holder-done", ("wannabe", 10.0)]


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env, store):
        for i in range(5):
            yield store.put(i)
            yield env.timeout(1)

    def consumer(env, store):
        for _ in range(5):
            item = yield store.get()
            received.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def consumer(env, store):
        item = yield store.get()
        return (env.now, item)

    def producer(env, store):
        yield env.timeout(4)
        yield store.put("late")

    p = env.process(consumer(env, store))
    env.process(producer(env, store))
    assert env.run(p) == (4.0, "late")


def test_store_put_blocks_when_full():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env, store):
        for i in range(3):
            yield store.put(i)
            times.append(env.now)

    def consumer(env, store):
        for _ in range(3):
            yield env.timeout(2)
            yield store.get()

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    # First put admitted at t=0; each later put waits for a get (t=2, 4).
    assert times == [0.0, 2.0, 4.0]


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_len_and_is_full():
    env = Environment()
    store = Store(env, capacity=2)

    def proc(env, store):
        yield store.put("a")
        assert len(store) == 1
        assert not store.is_full
        yield store.put("b")
        assert store.is_full

    env.run(env.process(proc(env, store)))
