"""Tests for communication graphs, partitioning, and graph mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import smoky, titan
from repro.placement import CommGraph, bisect_graph, grid_edges, map_to_tree, mapping_cost, partition_graph, ring_edges
from repro.placement.partition import cut_weight, packable


# ---------------------------------------------------------------------------
# CommGraph
# ---------------------------------------------------------------------------

def test_graph_edge_accumulation_undirected():
    g = CommGraph(3)
    g.add_edge(0, 1, 5)
    g.add_edge(1, 0, 3)
    assert g.edge(0, 1) == 8
    assert g.edge(1, 0) == 8
    assert g.total_edge_weight == 8


def test_graph_self_loop_ignored():
    g = CommGraph(2)
    g.add_edge(0, 0, 10)
    assert g.total_edge_weight == 0


def test_graph_validation():
    with pytest.raises(ValueError):
        CommGraph(0)
    g = CommGraph(2)
    with pytest.raises(IndexError):
        g.add_edge(0, 5, 1)
    with pytest.raises(ValueError):
        g.add_edge(0, 1, -1)
    with pytest.raises(ValueError):
        g.set_vertex_weight(0, 0)


def test_coupled_graph_labels_and_weights():
    g = CommGraph.coupled(3, 2, sim_threads=4, ana_threads=1)
    assert g.labels == ["sim:0", "sim:1", "sim:2", "ana:0", "ana:1"]
    assert g.vertex_weights == [4, 4, 4, 1, 1]
    assert g.sim_vertices() == [0, 1, 2]
    assert g.ana_vertices() == [3, 4]
    assert g.total_vertex_weight() == 14


def test_inter_vs_intra_program_split():
    import numpy as np

    g = CommGraph.coupled(2, 2)
    g.add_interprogram_matrix(np.array([[100, 0], [0, 100]]))
    g.add_edge(0, 1, 30)  # sim internal
    g.add_edge(2, 3, 20)  # ana internal
    assert g.interprogram_bytes() == 200
    assert g.intraprogram_bytes() == 50


def test_grid_edges_2d():
    edges = list(grid_edges((2, 3), halo_bytes=7))
    # 2x3 grid: horizontal 2*2=4, vertical 1*3=3 edges.
    assert len(edges) == 7
    assert all(w == 7 for _, _, w in edges)
    assert (0, 1, 7) in edges
    assert (0, 3, 7) in edges


def test_grid_edges_3d_count():
    edges = list(grid_edges((2, 2, 2), 1.0))
    assert len(edges) == 12  # edges of a cube


def test_ring_edges():
    assert len(list(ring_edges(5, 1.0))) == 5
    assert list(ring_edges(2, 1.0)) == [(0, 1, 1.0)]
    assert list(ring_edges(1, 1.0)) == []
    assert list(ring_edges(3, 1.0, offset=10)) == [
        (10, 11, 1.0), (11, 12, 1.0), (12, 10, 1.0)
    ]


# ---------------------------------------------------------------------------
# packable
# ---------------------------------------------------------------------------

def test_packable_basic():
    assert packable([3, 3, 1, 1], [4, 4])
    assert not packable([3, 3], [4, 2])
    assert packable([], [4])
    assert not packable([5], [4])
    assert packable([4, 4, 4, 4], [16])


@settings(max_examples=50, deadline=None)
@given(
    weights=st.lists(st.integers(1, 4), max_size=12),
    nbins=st.integers(1, 6),
)
def test_packable_never_exceeds_capacity(weights, nbins):
    """If FFD says packable, total weight surely fits total capacity."""
    bins = [4] * nbins
    if packable(weights, bins):
        assert sum(weights) <= sum(bins)


# ---------------------------------------------------------------------------
# bisect / partition
# ---------------------------------------------------------------------------

def chain_graph(n, w=1.0):
    g = CommGraph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1, w)
    return g


def test_bisect_chain_cuts_once():
    g = chain_graph(8)
    a, b = bisect_graph(g)
    assert sorted(a + b) == list(range(8))
    assert cut_weight(g, [a, b]) == 1.0  # one chain edge crossed


def test_bisect_respects_bins():
    g = CommGraph(4)
    for v in range(4):
        g.set_vertex_weight(v, 3)
    a, b = bisect_graph(g, bins_a=[6], bins_b=[6])
    assert len(a) == 2 and len(b) == 2


def test_bisect_empty():
    g = chain_graph(2)
    assert bisect_graph(g, vertices=[]) == ([], [])


def test_bisect_keeps_heavy_pairs_together():
    """Heavy producer-consumer pairs land on the same side."""
    g = CommGraph.coupled(4, 4, sim_threads=3, ana_threads=1)
    for i in range(4):
        g.add_edge(i, 4 + i, 1000.0)  # sim i feeds ana i
    for i in range(3):
        g.add_edge(i, i + 1, 1.0)
    a, b = bisect_graph(g, bins_a=[8], bins_b=[8])
    aset = set(a)
    for i in range(4):
        assert (i in aset) == (4 + i in aset)


def test_partition_graph_capacities_and_cover():
    g = chain_graph(12)
    parts = partition_graph(g, [4, 4, 4])
    assert sorted(v for p in parts for v in p) == list(range(12))
    for p in parts:
        assert sum(g.vertex_weights[v] for v in p) <= 4
    # A chain into 3 balanced parts cuts exactly 2 edges.
    assert cut_weight(g, parts) == 2.0


def test_partition_graph_bin_fragmentation():
    """Weight-3 vertices cannot straddle size-4 bins."""
    g = CommGraph(4)
    for v in range(4):
        g.set_vertex_weight(v, 3)
    parts = partition_graph(g, [[4, 4], [4, 4]])
    assert all(len(p) == 2 for p in parts)
    with pytest.raises(ValueError):
        # 5 weight-3 vertices cannot pack into 4 bins of 4.
        g5 = CommGraph(5)
        for v in range(5):
            g5.set_vertex_weight(v, 3)
        partition_graph(g5, [[4, 4], [4, 4]])


def test_partition_graph_validation():
    g = chain_graph(4)
    with pytest.raises(ValueError):
        partition_graph(g, [])
    with pytest.raises(ValueError):
        partition_graph(g, [2])  # 4 vertices into capacity 2


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 24),
    seed=st.integers(0, 1000),
)
def test_property_partition_is_exact_cover(n, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    g = CommGraph(n)
    for _ in range(n * 2):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            g.add_edge(int(u), int(v), float(rng.integers(1, 100)))
    k = max(1, n // 4)
    cap = -(-n // k)  # ceil
    parts = partition_graph(g, [cap] * k)
    seen = sorted(v for p in parts for v in p)
    assert seen == list(range(n))


# ---------------------------------------------------------------------------
# Graph mapping onto machine trees
# ---------------------------------------------------------------------------

def test_map_to_tree_assigns_all_weights():
    m = smoky(2)
    g = CommGraph.coupled(4, 4, sim_threads=3, ana_threads=1)
    tree = m.arch_tree(nodes=[0], include_numa=True)
    mapping = map_to_tree(g, tree)
    cores_used = [c for cs in mapping.values() for c in cs]
    assert len(cores_used) == 16
    assert len(set(cores_used)) == 16
    for v, cores in mapping.items():
        assert len(cores) == g.vertex_weights[v]


def test_map_to_tree_numa_keeps_threads_together():
    m = smoky(2)  # 4 cores per NUMA domain
    g = CommGraph.coupled(4, 4, sim_threads=3, ana_threads=1)
    tree = m.arch_tree(nodes=[0], include_numa=True)
    mapping = map_to_tree(g, tree)
    for v in g.sim_vertices():
        domains = {m.numa_of(c) for c in mapping[v]}
        assert len(domains) == 1  # never straddles a NUMA boundary


def test_map_to_tree_overflow_rejected():
    m = smoky(1)
    g = CommGraph(20)  # 20 > 16 cores
    from repro.placement.graphmap import MappingError

    with pytest.raises(MappingError):
        map_to_tree(g, m.arch_tree())


def test_mapping_cost_prefers_local_placement():
    m = titan(2)
    g = CommGraph(2)
    g.add_edge(0, 1, 100.0)
    same_numa = {0: [0], 1: [1]}
    cross_node = {0: [0], 1: [16]}
    assert mapping_cost(g, same_numa, m) < mapping_cost(g, cross_node, m)


def test_mapping_cost_unmapped_vertex_rejected():
    from repro.placement.graphmap import MappingError

    m = titan(1)
    g = CommGraph(2)
    g.add_edge(0, 1, 1.0)
    with pytest.raises(MappingError):
        mapping_cost(g, {0: [0]}, m)
