"""Tests for the EVPath-like messaging layer."""

import numpy as np
import pytest

from repro.evpath import (
    EvManager,
    EvPathError,
    InProcessLink,
    RdmaLink,
    ShmLink,
)
from repro.machine import GeminiInterconnect
from repro.machine.presets import SMOKY_NODE
from repro.marshal import FieldKind, FormatRegistry
from repro.transport import NntiFabric, RdmaChannel, ShmChannel, ShmCostModel


def make_fmt(reg=None):
    reg = reg or FormatRegistry()
    return reg.define(
        "sample",
        [("step", FieldKind.INT64), ("data", FieldKind.ARRAY), ("tag", FieldKind.STRING)],
    )


def sample_record(step=0):
    return {"step": step, "data": np.arange(4.0), "tag": "t"}


# ---------------------------------------------------------------------------
# Local graph walking
# ---------------------------------------------------------------------------

def test_terminal_delivery():
    cm = EvManager()
    fmt = make_fmt(cm.registry)
    got = []
    term = cm.terminal_stone(lambda f, r: got.append((f.name, r["step"])))
    cm.submit(term, fmt, sample_record(7))
    assert got == [("sample", 7)]
    assert cm.stats.events_delivered == 1


def test_filter_passes_and_drops():
    cm = EvManager()
    fmt = make_fmt(cm.registry)
    got = []
    term = cm.terminal_stone(lambda f, r: got.append(r["step"]))
    filt = cm.filter_stone(lambda r: r["step"] % 2 == 0, term)
    for s in range(5):
        cm.submit(filt, fmt, sample_record(s))
    assert got == [0, 2, 4]
    assert cm.stats.events_dropped == 2


def test_transform_rewrites_record():
    cm = EvManager()
    fmt = make_fmt(cm.registry)
    got = []
    term = cm.terminal_stone(lambda f, r: got.append(r["data"].copy()))

    def double(record):
        out = dict(record)
        out["data"] = record["data"] * 2
        return out

    xform = cm.transform_stone(double, term, label="doubler")
    cm.submit(xform, fmt, sample_record())
    np.testing.assert_array_equal(got[0], np.arange(4.0) * 2)
    assert cm.stats.transform_invocations == 1


def test_split_fans_out():
    cm = EvManager()
    fmt = make_fmt(cm.registry)
    got_a, got_b = [], []
    ta = cm.terminal_stone(lambda f, r: got_a.append(r["step"]))
    tb = cm.terminal_stone(lambda f, r: got_b.append(r["step"]))
    split = cm.split_stone([ta, tb])
    cm.submit(split, fmt, sample_record(3))
    assert got_a == [3] and got_b == [3]


def test_chained_filter_transform_terminal():
    cm = EvManager()
    fmt = make_fmt(cm.registry)
    got = []
    term = cm.terminal_stone(lambda f, r: got.append(float(r["data"].sum())))

    def negate(record):
        out = dict(record)
        out["data"] = -record["data"]
        return out

    xform = cm.transform_stone(negate, term)
    filt = cm.filter_stone(lambda r: r["step"] > 0, xform)
    cm.submit(filt, fmt, sample_record(0))  # dropped
    cm.submit(filt, fmt, sample_record(1))  # transformed: sum = -6
    assert got == [-6.0]


def test_actionless_stone_rejected():
    cm = EvManager()
    fmt = make_fmt(cm.registry)
    naked = cm.create_stone()
    with pytest.raises(EvPathError):
        cm.submit(naked, fmt, sample_record())


def test_set_action_once():
    cm = EvManager()
    stone = cm.create_stone()
    from repro.evpath.stones import TerminalAction

    stone.set_action(TerminalAction(lambda f, r: None))
    with pytest.raises(EvPathError):
        stone.set_action(TerminalAction(lambda f, r: None))


def test_unknown_stone_rejected():
    cm = EvManager()
    fmt = make_fmt(cm.registry)
    with pytest.raises(EvPathError):
        cm.submit(999, fmt, sample_record())


# ---------------------------------------------------------------------------
# Bridges across managers
# ---------------------------------------------------------------------------

def test_inprocess_bridge_round_trip():
    writer, reader = EvManager("writer"), EvManager("reader")
    fmt = make_fmt()
    got = []
    remote_term = reader.terminal_stone(lambda f, r: got.append((f.name, r["step"])))
    bridge = writer.bridge_stone(InProcessLink(reader), remote_term.stone_id)
    writer.submit(bridge, fmt, sample_record(11))
    assert got == [("sample", 11)]
    # The reader learned the format from the inlined schema.
    assert reader.registry.by_name("sample") is not None
    assert writer.stats.bytes_bridged > 0


def test_shm_bridge_moves_real_bytes():
    writer, reader = EvManager("writer"), EvManager("reader")
    fmt = make_fmt()
    got = []
    remote_term = reader.terminal_stone(lambda f, r: got.append(r["data"]))
    link = ShmLink(reader, ShmChannel(), ShmCostModel(SMOKY_NODE), cross_numa=True)
    bridge = writer.bridge_stone(link, remote_term.stone_id)
    writer.submit(bridge, fmt, sample_record())
    np.testing.assert_array_equal(got[0], np.arange(4.0))
    assert writer.stats.bridge_time > 0  # cost model charged


def test_rdma_bridge_moves_real_bytes():
    fabric = NntiFabric(GeminiInterconnect())
    a, b = fabric.endpoint(0, "w"), fabric.endpoint(4, "r")
    conn = fabric.connect(a, b)
    writer, reader = EvManager("writer"), EvManager("reader")
    fmt = make_fmt()
    got = []
    remote_term = reader.terminal_stone(lambda f, r: got.append(r["step"]))
    link = RdmaLink(reader, RdmaChannel(conn, sender=a))
    bridge = writer.bridge_stone(link, remote_term.stone_id)
    for s in range(3):
        writer.submit(bridge, fmt, sample_record(s))
    assert got == [0, 1, 2]
    assert writer.stats.bridge_time > 0


def test_transform_before_bridge_reduces_bytes():
    """A reader-deployed codelet running writer-side (sampling) shrinks
    what crosses the bridge — the DC plug-in use case."""
    writer, reader = EvManager("writer"), EvManager("reader")
    fmt = make_fmt()
    got = []
    remote_term = reader.terminal_stone(lambda f, r: got.append(len(r["data"])))
    bridge = writer.bridge_stone(InProcessLink(reader), remote_term.stone_id)

    def sample_every_other(record):
        out = dict(record)
        out["data"] = record["data"][::2]
        return out

    xform = writer.transform_stone(sample_every_other, bridge, label="sampler")
    big = {"step": 0, "data": np.arange(1000.0), "tag": "x"}
    writer.submit(xform, fmt, big)
    assert got == [500]

    # Compare bytes against an unsampled send.
    unsampled_writer = EvManager("w2")
    bridge2 = unsampled_writer.bridge_stone(InProcessLink(reader), remote_term.stone_id)
    unsampled_writer.submit(bridge2, fmt, big)
    assert writer.stats.bytes_bridged < unsampled_writer.stats.bytes_bridged


def test_router_directs_by_content():
    """A router stone steers each event to one target by inspecting it —
    the overlay mechanism for sending array regions to the right reader."""
    cm = EvManager()
    fmt = make_fmt(cm.registry)
    got = {0: [], 1: [], 2: []}
    terms = [cm.terminal_stone(lambda f, r, i=i: got[i].append(r["step"])) for i in range(3)]
    router = cm.router_stone(lambda record: record["step"] % 3, terms)
    for s in range(9):
        cm.submit(router, fmt, sample_record(s))
    assert got[0] == [0, 3, 6]
    assert got[1] == [1, 4, 7]
    assert got[2] == [2, 5, 8]


def test_router_out_of_range_rejected():
    cm = EvManager()
    fmt = make_fmt(cm.registry)
    term = cm.terminal_stone(lambda f, r: None)
    router = cm.router_stone(lambda record: 5, [term])
    with pytest.raises(EvPathError):
        cm.submit(router, fmt, sample_record())


def test_router_before_bridges_fans_to_remote_readers():
    """Writer-side routing + bridges: each region goes to its reader."""
    writer = EvManager("writer")
    readers = [EvManager(f"reader{i}") for i in range(2)]
    fmt = make_fmt()
    seen = {0: [], 1: []}
    bridges = []
    for i, reader in enumerate(readers):
        term = reader.terminal_stone(lambda f, r, i=i: seen[i].append(r["step"]))
        bridges.append(writer.bridge_stone(InProcessLink(reader), term.stone_id))
    router = writer.router_stone(lambda record: 0 if record["step"] < 5 else 1, bridges)
    for s in range(10):
        writer.submit(router, fmt, sample_record(s))
    assert seen[0] == [0, 1, 2, 3, 4]
    assert seen[1] == [5, 6, 7, 8, 9]
