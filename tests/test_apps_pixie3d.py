"""Tests for the Pixie3D MHD workload model and its analysis pipeline."""

import numpy as np
import pytest

from repro.apps.pixie3d import (
    FIELDS,
    MhdDiagnostics,
    Pixie3dAnalysis,
    Pixie3dConfig,
    Pixie3dRank,
    curl,
    divergence,
    pixie3d_analysis_profile,
    pixie3d_sim_profile,
)
from repro.machine import jaguar_xt5


def full_record(cfg, step=0):
    """Assemble the global fields from all ranks' blocks."""
    gs = cfg.global_shape
    out = {f: np.zeros(gs) for f in FIELDS}
    for r in range(cfg.num_ranks):
        rank = Pixie3dRank(cfg, r)
        rec = rank.output(step)
        for f in FIELDS:
            out[f][rank.box.slices()] = rec[f]
    return out


# ---------------------------------------------------------------------------
# Machine preset
# ---------------------------------------------------------------------------

def test_jaguar_xt5_preset():
    m = jaguar_xt5(4)
    assert m.node_type.cores_per_node == 12
    assert m.node_type.numa_domains == 2
    assert m.node_type.cores_per_domain == 6
    assert m.interconnect.name == "seastar"
    # SeaStar sits between IB and Gemini in bandwidth class.
    from repro.machine import GeminiInterconnect, InfinibandInterconnect

    assert (
        InfinibandInterconnect().params.peak_bw
        < m.interconnect.params.peak_bw
        < GeminiInterconnect().params.peak_bw
    )


# ---------------------------------------------------------------------------
# Field generation
# ---------------------------------------------------------------------------

def test_output_has_eight_fields():
    cfg = Pixie3dConfig(num_ranks=8, local_edge=6)
    out = Pixie3dRank(cfg, 0).output(0)
    assert set(out) == set(FIELDS)
    assert len(FIELDS) == 8
    assert all(v.shape == (6, 6, 6) for v in out.values())


def test_fields_deterministic_and_time_varying():
    cfg = Pixie3dConfig(num_ranks=8, local_edge=6)
    a = Pixie3dRank(cfg, 3).output(0)
    b = Pixie3dRank(cfg, 3).output(0)
    np.testing.assert_array_equal(a["bx"], b["bx"])
    c = Pixie3dRank(cfg, 3).output(5)
    assert not np.array_equal(a["vx"], c["vx"])


def test_screw_pinch_structure():
    """Bz peaks on the magnetic axis; the azimuthal field vanishes there."""
    cfg = Pixie3dConfig(num_ranks=1, local_edge=32, seed=1)
    rec = Pixie3dRank(cfg, 0).output(0)
    mid = 16
    bz_axis = rec["bz"][mid, mid, mid]
    bz_edge = rec["bz"][0, 0, mid]
    assert bz_axis > bz_edge
    btheta_axis = np.hypot(rec["bx"][mid, mid, mid], rec["by"][mid, mid, mid])
    btheta_off = np.hypot(rec["bx"][mid + 8, mid, mid], rec["by"][mid + 8, mid, mid])
    assert btheta_off > btheta_axis


def test_config_validation():
    with pytest.raises(ValueError):
        Pixie3dConfig(num_ranks=0)
    with pytest.raises(ValueError):
        Pixie3dConfig(num_ranks=1, local_edge=1)
    with pytest.raises(ValueError):
        Pixie3dRank(Pixie3dConfig(num_ranks=2), 2)


def test_output_size_and_profiles():
    cfg = Pixie3dConfig(num_ranks=8, local_edge=16)
    assert cfg.bytes_per_rank == 8 * 16**3 * 8
    sim = pixie3d_sim_profile(cfg)
    assert sim.io_interval == pytest.approx(5 * 4.0)
    ana = pixie3d_analysis_profile(cfg)
    assert ana.time_single > 0


# ---------------------------------------------------------------------------
# Vector calculus
# ---------------------------------------------------------------------------

def test_curl_of_gradient_is_zero():
    """∇ × ∇φ = 0: the fundamental identity, verified numerically."""
    n = 24
    ax = np.linspace(0, 1, n)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    phi = np.sin(2 * np.pi * x) * np.cos(2 * np.pi * y) * z
    h = ax[1] - ax[0]
    gx, gy, gz = np.gradient(phi, h, h, h)
    cx, cy, cz = curl(gx, gy, gz, h)
    interior = (slice(2, -2),) * 3
    assert np.abs(cx[interior]).max() < 0.5  # O(h²) residual
    assert np.abs(cy[interior]).max() < 0.5
    assert np.abs(cz[interior]).max() < 0.5


def test_curl_of_known_field():
    """F = (-y, x, 0) has ∇ × F = (0, 0, 2)."""
    n = 16
    ax = np.linspace(0, 1, n)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    h = ax[1] - ax[0]
    cx, cy, cz = curl(-y, x, np.zeros_like(x), h)
    np.testing.assert_allclose(cz, 2.0, atol=1e-10)
    np.testing.assert_allclose(cx, 0.0, atol=1e-10)


def test_divergence_of_linear_field():
    """F = (x, 2y, 3z) has ∇ · F = 6."""
    n = 12
    ax = np.linspace(0, 1, n)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    h = ax[1] - ax[0]
    div = divergence(x, 2 * y, 3 * z, h)
    np.testing.assert_allclose(div, 6.0, atol=1e-10)


def test_curl_validation():
    a = np.zeros((4, 4, 4))
    with pytest.raises(ValueError):
        curl(a, a, np.zeros((4, 4)), 0.1)
    with pytest.raises(ValueError):
        curl(a, a, a, 0.0)
    with pytest.raises(ValueError):
        curl(np.zeros((4, 4)), np.zeros((4, 4)), np.zeros((4, 4)), 0.1)


# ---------------------------------------------------------------------------
# The analysis pipeline
# ---------------------------------------------------------------------------

def test_diagnostics_physical_sanity():
    cfg = Pixie3dConfig(num_ranks=8, local_edge=8)
    record = full_record(cfg)
    ana = Pixie3dAnalysis(cfg.spacing)
    d = ana.diagnostics(record, step=0)
    assert isinstance(d, MhdDiagnostics)
    assert d.magnetic_energy > 0
    assert d.kinetic_energy > 0
    assert d.magnetic_energy > d.kinetic_energy  # pinch is magnetically dominated
    assert d.max_current > 0
    assert d.mean_density == pytest.approx(1.0, abs=0.15)


def test_current_concentrates_on_axis():
    """The screw pinch carries its current along the magnetic axis."""
    cfg = Pixie3dConfig(num_ranks=1, local_edge=32, seed=3)
    record = Pixie3dRank(cfg, 0).output(0)
    ana = Pixie3dAnalysis(cfg.spacing)
    jx, jy, jz = ana.current_density(record)
    jmag = np.sqrt(jx**2 + jy**2 + jz**2)
    mid = 16
    axis_current = jmag[mid - 2 : mid + 2, mid - 2 : mid + 2, mid].mean()
    corner_current = jmag[2:6, 2:6, mid].mean()
    assert axis_current > corner_current


def test_missing_field_rejected():
    ana = Pixie3dAnalysis(0.1)
    with pytest.raises(KeyError):
        ana.diagnostics({"bx": np.zeros((4, 4, 4))})


def test_slice_field():
    ana = Pixie3dAnalysis(0.1)
    field = np.arange(27.0).reshape(3, 3, 3)
    s = ana.slice_field(field, axis=2)
    np.testing.assert_array_equal(s, field[:, :, 1])
    s0 = ana.slice_field(field, axis=0, index=0)
    np.testing.assert_array_equal(s0, field[0])
    with pytest.raises(ValueError):
        ana.slice_field(np.zeros((3, 3)))


def test_analysis_validation():
    with pytest.raises(ValueError):
        Pixie3dAnalysis(0.0)
