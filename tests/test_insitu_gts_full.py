"""Flagship integration: the GTS helper-core pipeline of Figure 7, run
with REAL particle data and REAL analytics under simulated time, and the
headline properties checked on the combined result."""

import numpy as np
import pytest

from repro.apps import GtsAnalytics, GtsConfig, GtsRank
from repro.core import stream_registry
from repro.coupled.insitu import InSituRun
from repro.machine import smoky

CONFIG = """
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="float64" dimensions="n,7"/>
    <var name="electron" type="float64" dimensions="n,7"/>
  </adios-group>
  <method group="particles" method="FLEXPATH">caching=ALL;batching=true</method>
</adios-config>
"""


@pytest.fixture(autouse=True)
def fresh_registry():
    stream_registry.reset()
    yield
    stream_registry.reset()


def test_gts_helper_core_insitu_run():
    """4 GTS ranks on one Smoky node (3 'threads' abstracted into the
    compute time), analytics on the node's spare cores; real chain output
    and a simulated TET consistent with the pipeline structure."""
    cfg = GtsConfig(num_ranks=4, particles_per_rank=3000)
    chain = GtsAnalytics(selectivity=0.2)
    ranks = [GtsRank(cfg, r) for r in range(4)]

    def generator(rank, step):
        return ranks[rank].output(step)

    def analytics(record, step):
        return chain.process(record, step=step)

    interval = 6.0
    run = InSituRun(
        machine=smoky(2),
        config_xml=CONFIG,
        group="particles",
        stream_name="gts.fig7",
        generator=generator,
        analytics=analytics,
        # Ranks on NUMA domains 0-3 of node 0; analytics on spare cores.
        writer_cores=[0, 4, 8, 12],
        reader_cores=[3, 7, 11, 15],
        compute_time_per_step=interval,
        analytics_time_per_byte=2e-9,
        num_steps=4,
    )
    result = run.run()

    # Real analytics: every process group analyzed, ~20% selectivity.
    assert len(result.analytics_outputs) == 4 * 4
    for res in result.analytics_outputs:
        assert res.selectivity == pytest.approx(0.2, abs=0.05)
        assert res.hist2d[2].sum() > 0
    assert chain.steps_processed == 16

    # Helper-core locality: nothing crossed the interconnect.
    assert result.inter_node_bytes == 0
    assert result.intra_node_bytes == pytest.approx(
        4 * 4 * 2 * 3000 * 7 * 8, rel=0.05  # steps*ranks*species*particles*attrs*8
    )

    # Timing shape: the pipeline hides analytics behind compute, so TET is
    # close to the sim's serial compute + movement, well under the
    # fully-serialized (inline-like) sum.
    sim_floor = 4 * interval
    serialized = 4 * interval + result.analytics_time + result.movement_time
    assert sim_floor <= result.simulated_time <= serialized + 1e-9
    # I/O is nearly invisible (Figure 7's case 1).
    assert result.movement_time < 0.02 * result.simulated_time


def test_insitu_particle_counts_drift_reaches_analytics():
    """Variable-size process groups (particle movement) flow through the
    whole stack without shape assumptions breaking."""
    cfg = GtsConfig(num_ranks=2, particles_per_rank=2000, count_jitter=0.1)
    ranks = [GtsRank(cfg, r) for r in range(2)]
    sizes = []

    def generator(rank, step):
        out = ranks[rank].output(step)
        sizes.append(out["zion"].shape[0])
        return out

    def analytics(record, step):
        return record["zion"].shape[0]

    run = InSituRun(
        machine=smoky(2),
        config_xml=CONFIG,
        group="particles",
        stream_name="gts.drift",
        generator=generator,
        analytics=analytics,
        writer_cores=[0, 1],
        reader_cores=[2],
        compute_time_per_step=1.0,
        num_steps=3,
    )
    result = run.run()
    assert sorted(result.analytics_outputs) == sorted(sizes)
    assert len(set(sizes)) > 1  # the counts really drifted
