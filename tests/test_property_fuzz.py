"""Cross-cutting property-based and fuzz tests.

Invariants that must hold for *arbitrary* inputs: the marshal decoder
never crashes on junk, the DES kernel is deterministic under random
workloads, graph mapping is always a valid core assignment, and BP files
survive arbitrary write patterns.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adios import BpReader, BpWriter
from repro.marshal import FormatRegistry, MarshalError, decode_message
from repro.machine import generic_cluster
from repro.placement import CommGraph, map_to_tree
from repro.simcore import Environment


# ---------------------------------------------------------------------------
# Marshal: junk never crashes the decoder
# ---------------------------------------------------------------------------

@settings(max_examples=150, deadline=None)
@given(junk=st.binary(min_size=0, max_size=300))
def test_fuzz_decoder_rejects_junk_gracefully(junk):
    """Arbitrary bytes either decode (vanishingly unlikely) or raise
    MarshalError/struct-level errors — never hang or corrupt state."""
    reg = FormatRegistry()
    try:
        decode_message(junk, reg)
    except (MarshalError, ValueError, UnicodeDecodeError, TypeError, Exception) as exc:
        # Any controlled exception is acceptable; segfault/hang is not.
        assert isinstance(exc, Exception)


@settings(max_examples=60, deadline=None)
@given(
    prefix_len=st.integers(0, 40),
    seed=st.integers(0, 1000),
)
def test_fuzz_truncated_valid_message(prefix_len, seed):
    """Truncations of a VALID message never decode successfully to a
    different record — they raise."""
    from repro.marshal import Field, FieldKind, Format, encode_message

    fmt = Format("f", (Field("a", FieldKind.INT64), Field("b", FieldKind.BYTES)))
    rng = np.random.default_rng(seed)
    wire = encode_message(fmt, {"a": int(rng.integers(0, 1000)), "b": rng.bytes(20)})
    truncated = wire[: min(prefix_len, len(wire) - 1)]
    with pytest.raises(Exception):
        decode_message(truncated, FormatRegistry())


# ---------------------------------------------------------------------------
# DES kernel: determinism under random workloads
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000), nprocs=st.integers(1, 15))
def test_property_des_determinism(seed, nprocs):
    """Identical random workloads produce identical traces — the property
    every simulation result in this repo rests on."""

    def run_once():
        rng = np.random.default_rng(seed)
        env = Environment()
        trace = []

        def worker(env, i, delays):
            for d in delays:
                yield env.timeout(d)
                trace.append((round(env.now, 9), i))

        for i in range(nprocs):
            delays = rng.uniform(0.1, 2.0, size=rng.integers(1, 6)).tolist()
            env.process(worker(env, i, delays))
        env.run()
        return trace, env.now

    t1, end1 = run_once()
    t2, end2 = run_once()
    assert t1 == t2
    assert end1 == end2


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_des_store_conservation(seed):
    """Everything put into a store is got exactly once, in order."""
    from repro.simcore import Store

    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 30))
    env = Environment()
    store = Store(env, capacity=max(1, int(rng.integers(1, 5))))
    got = []

    def producer(env):
        for i in range(n):
            yield env.timeout(float(rng.uniform(0, 1)))
            yield store.put(i)

    def consumer(env):
        for _ in range(n):
            item = yield store.get()
            got.append(item)
            yield env.timeout(float(rng.uniform(0, 1)))

    env.process(producer(env))
    c = env.process(consumer(env))
    env.run(c)
    assert got == list(range(n))


# ---------------------------------------------------------------------------
# Graph mapping: validity for arbitrary graphs
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 24),
    weight_choice=st.sampled_from([1, 2, 4]),
)
def test_property_mapping_is_valid_assignment(seed, n, weight_choice):
    """Every vertex gets exactly its weight in cores; no core is reused;
    multi-core vertices never straddle NUMA domains."""
    from hypothesis import assume

    machine = generic_cluster(num_nodes=8, cores_per_node=8, numa_domains=2)
    assume(n * weight_choice <= machine.total_cores)
    rng = np.random.default_rng(seed)
    g = CommGraph(n)
    for v in range(n):
        g.set_vertex_weight(v, weight_choice)
    for _ in range(n):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            g.add_edge(int(u), int(v), float(rng.integers(1, 50)))
    tree = machine.arch_tree(include_numa=True)
    mapping = map_to_tree(g, tree)
    used = [c for cores in mapping.values() for c in cores]
    assert len(used) == n * weight_choice
    assert len(set(used)) == len(used)
    for v, cores in mapping.items():
        assert len(cores) == g.vertex_weights[v]
        assert len({machine.numa_of(c) for c in cores}) == 1


# ---------------------------------------------------------------------------
# BP files: arbitrary write patterns round-trip
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    steps=st.integers(1, 4),
    nvars=st.integers(1, 4),
    nranks=st.integers(1, 4),
)
def test_property_bp_roundtrip_arbitrary_patterns(
    tmp_path_factory, seed, steps, nvars, nranks
):
    rng = np.random.default_rng(seed)
    path = str(tmp_path_factory.mktemp("bp") / "fuzz.bp")
    written: dict = {}
    with BpWriter(path) as w:
        for s in range(steps):
            w.begin_step()
            for v in range(nvars):
                for r in range(nranks):
                    shape = tuple(rng.integers(1, 5, size=int(rng.integers(1, 3))))
                    data = rng.normal(size=shape)
                    w.write(r, f"var{v}", data)
                    written[(s, v, r)] = data
            w.end_step()
    with BpReader(path) as reader:
        assert reader.num_steps == steps
        for (s, v, r), data in written.items():
            out = reader.read_block(f"var{v}", s, r)
            np.testing.assert_array_equal(out, data)
