"""Flight recorder: ring semantics, concurrency, dump/load, fault hook."""

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import recorder
from repro.obs.events import (
    EV_FLIGHT_DUMP,
    EV_RETRY,
    EV_STEP_COMMIT,
    EV_STEP_LOST,
    EVENT_CODES,
    UnknownEventError,
)
from repro.obs.recorder import FlightEvent, FlightRecorder, load_dump


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def tick(self, dt=1.0):
        self.t += dt
        return self.t


@pytest.fixture(autouse=True)
def _fresh_process_recorder(monkeypatch):
    """Isolate the process-wide recorder and its dump state per test."""
    monkeypatch.delenv("FLEXIO_FLIGHT", raising=False)
    monkeypatch.delenv("FLEXIO_FLIGHT_DIR", raising=False)
    recorder.set_flight_dir(None)
    recorder.reset()
    yield
    recorder.set_flight_dir(None)
    recorder.reset()


# ---------------------------------------------------------------------------
# Ring semantics
# ---------------------------------------------------------------------------

def test_record_keeps_order_and_evicts_oldest():
    clock = FakeClock()
    rec = FlightRecorder(capacity=4, clock=clock)
    for step in range(6):
        clock.tick()
        rec.record(EV_STEP_COMMIT, stream="s", step=step)
    assert len(rec) == 4
    assert rec.total_recorded == 6
    assert rec.dropped == 2
    events = rec.events()
    assert [dict(e.attrs)["step"] for e in events] == [2, 3, 4, 5]
    assert [e.seq for e in events] == [3, 4, 5, 6]


def test_unknown_code_raises_with_suggestion():
    rec = FlightRecorder()
    with pytest.raises(UnknownEventError) as exc:
        rec.record("step.comit", stream="s")
    assert "step.commit" in str(exc.value)
    assert "step.comit" not in EVENT_CODES


def test_events_filtering_window_code_stream_limit():
    clock = FakeClock()
    rec = FlightRecorder(clock=clock)
    rec.record(EV_STEP_COMMIT, stream="a", step=0)
    clock.tick(100.0)
    rec.record(EV_STEP_COMMIT, stream="a", step=1)
    rec.record(EV_STEP_LOST, stream="b", step=2)
    clock.tick(1.0)
    rec.record(EV_RETRY, stream="b", step=2, attempt=1)
    assert len(rec.events()) == 4
    assert [e.code for e in rec.events(window_s=30.0)] == [
        EV_STEP_COMMIT, EV_STEP_LOST, EV_RETRY
    ]
    assert [e.stream for e in rec.events(stream="b")] == ["b", "b"]
    assert [e.code for e in rec.events(code=EV_STEP_LOST)] == [EV_STEP_LOST]
    assert [dict(e.attrs)["step"] for e in rec.events(limit=2)] == [2, 2]


def test_event_round_trips_through_dict():
    rec = FlightRecorder(clock=FakeClock())
    ev = rec.record(EV_RETRY, stream="s", step=3, attempt=1)
    back = FlightEvent.from_dict(json.loads(json.dumps(ev.as_dict())))
    assert back == ev


# ---------------------------------------------------------------------------
# Concurrency: no torn events, strict (ts, seq) order under eviction
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(
    capacity=st.integers(min_value=2, max_value=64),
    per_thread=st.integers(min_value=5, max_value=50),
    threads=st.integers(min_value=2, max_value=6),
)
def test_concurrent_producers_never_tear_and_keep_order(
    capacity, per_thread, threads
):
    rec = FlightRecorder(capacity=capacity)
    barrier = threading.Barrier(threads)

    def produce(tid):
        barrier.wait()
        for i in range(per_thread):
            rec.record(EV_STEP_COMMIT, stream=f"t{tid}", step=i, tid=tid)

    workers = [
        threading.Thread(target=produce, args=(t,)) for t in range(threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()

    assert rec.total_recorded == threads * per_thread
    events = rec.events()
    assert len(events) == min(capacity, threads * per_thread)
    # Strict (ts, seq) order: seqs strictly increase and timestamps
    # never go backwards, even across evictions.
    seqs = [e.seq for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert all(a.ts <= b.ts for a, b in zip(events, events[1:]))
    # No torn events: every attr tuple is self-consistent with its stream.
    for e in events:
        attrs = dict(e.attrs)
        assert e.code == EV_STEP_COMMIT
        assert e.stream == f"t{attrs['tid']}"
        assert 0 <= attrs["step"] < per_thread


def test_concurrent_producers_with_consumer_snapshots():
    rec = FlightRecorder(capacity=128)
    stop = threading.Event()
    seen_bad = []

    def consume():
        while not stop.is_set():
            events = rec.events()
            seqs = [e.seq for e in events]
            if seqs != sorted(seqs):
                seen_bad.append(seqs)

    consumer = threading.Thread(target=consume)
    consumer.start()
    workers = [
        threading.Thread(
            target=lambda t=t: [
                rec.record(EV_STEP_COMMIT, stream="s", step=i, tid=t)
                for i in range(200)
            ]
        )
        for t in range(4)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    stop.set()
    consumer.join()
    assert seen_bad == []
    assert rec.total_recorded == 800


# ---------------------------------------------------------------------------
# Dump / load
# ---------------------------------------------------------------------------

def test_dump_and_load_round_trip(tmp_path):
    from repro.core.monitoring import PerfMonitor

    clock = FakeClock()
    rec = FlightRecorder(clock=clock)
    mon = PerfMonitor()
    mon.metrics.counter("dataplane.drain.steps_committed").inc(5)
    rec.record(EV_STEP_COMMIT, stream="s", step=0)
    clock.tick()
    rec.record(EV_STEP_LOST, stream="s", step=1, error="boom")
    path = rec.dump(str(tmp_path / "f.json"), reason="test", monitor=mon)
    doc = load_dump(path)
    assert doc["reason"] == "test"
    assert [e["code"] for e in doc["events"]] == [EV_STEP_COMMIT, EV_STEP_LOST]
    assert doc["metrics"]["counters"]["dataplane.drain.steps_committed"] == 5


def test_dump_window_excludes_old_events(tmp_path):
    clock = FakeClock()
    rec = FlightRecorder(clock=clock)
    rec.record(EV_STEP_COMMIT, stream="s", step=0)
    clock.tick(100.0)
    rec.record(EV_STEP_LOST, stream="s", step=1)
    doc = rec.dump_dict(window_s=30.0)
    assert [e["step"] for e in doc["events"]] == [1]


def test_load_dump_rejects_non_flight_json(tmp_path):
    path = tmp_path / "x.json"
    path.write_text('{"other": 1}')
    with pytest.raises(ValueError):
        load_dump(str(path))


# ---------------------------------------------------------------------------
# Process-wide recorder + fault hook
# ---------------------------------------------------------------------------

def test_env_disables_process_recorder(monkeypatch):
    monkeypatch.setenv("FLEXIO_FLIGHT", "0")
    assert recorder.get() is None
    assert recorder.record(EV_STEP_COMMIT, stream="s") is None
    monkeypatch.setenv("FLEXIO_FLIGHT", "1")
    assert recorder.get() is not None


def test_dump_on_fault_needs_a_configured_dir(tmp_path):
    recorder.record(EV_STEP_LOST, stream="s", step=0)
    assert recorder.dump_on_fault("lost", stream="s") is None  # no dir
    recorder.set_flight_dir(str(tmp_path))
    path = recorder.dump_on_fault("lost", stream="s")
    assert path is not None
    doc = load_dump(path)
    assert doc["reason"] == "lost"
    codes = [e["code"] for e in doc["events"]]
    assert EV_STEP_LOST in codes
    assert EV_FLIGHT_DUMP in codes  # the dump records itself


def test_dump_on_fault_caps_artifacts_and_sanitizes_names(tmp_path):
    recorder.set_flight_dir(str(tmp_path))
    paths = [
        recorder.dump_on_fault("lost", stream="evil/../name")
        for _ in range(recorder.MAX_AUTO_DUMPS + 3)
    ]
    written = [p for p in paths if p is not None]
    assert len(written) == recorder.MAX_AUTO_DUMPS
    assert all("/.." not in p.rsplit("/", 1)[-1] for p in written)
    assert len(list(tmp_path.glob("flight-*.json"))) == recorder.MAX_AUTO_DUMPS


def test_flight_dir_env_fallback(monkeypatch, tmp_path):
    monkeypatch.setenv("FLEXIO_FLIGHT_DIR", str(tmp_path))
    recorder.record(EV_STEP_LOST, stream="s")
    assert recorder.dump_on_fault("lost", stream="s") is not None
    assert list(tmp_path.glob("flight-*.json"))
