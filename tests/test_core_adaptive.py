"""Tests for runtime management: DC placement control + adaptive Gets."""

import numpy as np
import pytest

from repro.core import PerfMonitor, PluginManager, PluginSide
from repro.core.adaptive import (
    AdaptiveGetScheduler,
    AdaptivePolicy,
    DCPlacementController,
)
from repro.core.plugins import annotation_plugin, sampling_plugin


def run_plugin(plugin, nbytes_shape=(1000, 7), times=1):
    data = {"zion": np.zeros(nbytes_shape)}
    for _ in range(times):
        plugin.apply(data)


# ---------------------------------------------------------------------------
# Policy validation
# ---------------------------------------------------------------------------

def test_policy_validation():
    with pytest.raises(ValueError):
        AdaptivePolicy(reducer_ratio=0.0)
    with pytest.raises(ValueError):
        AdaptivePolicy(reducer_ratio=1.2, expander_ratio=1.0)
    with pytest.raises(ValueError):
        AdaptivePolicy(hysteresis=0)


# ---------------------------------------------------------------------------
# DC placement controller
# ---------------------------------------------------------------------------

def test_reducer_migrates_to_writer():
    mgr = PluginManager()
    sampler = mgr.deploy(sampling_plugin(4), PluginSide.READER)
    run_plugin(sampler, times=2)  # observed: 4x reduction
    ctl = DCPlacementController(mgr, AdaptivePolicy(hysteresis=2))
    assert ctl.observe_step(writer_busy_fraction=0.5) == []  # vote 1
    events = ctl.observe_step(writer_busy_fraction=0.5)      # vote 2: migrate
    assert len(events) == 1
    assert events[0].to_side is PluginSide.WRITER
    assert sampler.side is PluginSide.WRITER


def test_expander_migrates_to_reader():
    mgr = PluginManager()
    ann = mgr.deploy(annotation_plugin("flag", 1.0), PluginSide.WRITER)
    run_plugin(ann)  # adds bytes: ratio > 1
    ctl = DCPlacementController(mgr, AdaptivePolicy(hysteresis=1))
    events = ctl.observe_step(writer_busy_fraction=0.2)
    assert len(events) == 1
    assert events[0].to_side is PluginSide.READER
    assert "expander" in events[0].reason


def test_overloaded_writer_repels_reducers():
    mgr = PluginManager()
    sampler = mgr.deploy(sampling_plugin(4), PluginSide.WRITER)
    run_plugin(sampler)
    ctl = DCPlacementController(mgr, AdaptivePolicy(hysteresis=1, writer_busy_limit=0.9))
    events = ctl.observe_step(writer_busy_fraction=0.99)
    assert len(events) == 1
    assert events[0].to_side is PluginSide.READER
    assert "overloaded" in events[0].reason


def test_hysteresis_prevents_ping_pong():
    mgr = PluginManager()
    sampler = mgr.deploy(sampling_plugin(2), PluginSide.READER)
    run_plugin(sampler)
    ctl = DCPlacementController(mgr, AdaptivePolicy(hysteresis=3))
    # Alternating conditions never accumulate 3 consistent votes.
    assert ctl.observe_step(0.5) == []     # vote writer x1
    assert ctl.observe_step(0.99) == []    # vote reader (already there: reset)
    assert ctl.observe_step(0.5) == []     # vote writer x1 again
    assert sampler.side is PluginSide.READER
    # Three consistent observations do migrate.
    assert ctl.observe_step(0.5) == []
    events = ctl.observe_step(0.5)
    assert len(events) == 1


def test_unobserved_plugin_not_moved():
    mgr = PluginManager()
    sampler = mgr.deploy(sampling_plugin(2), PluginSide.READER)
    ctl = DCPlacementController(mgr, AdaptivePolicy(hysteresis=1))
    assert ctl.observe_step(0.1) == []
    assert sampler.side is PluginSide.READER


def test_controller_records_to_monitor():
    mon = PerfMonitor(clock=lambda: 0.0)
    mgr = PluginManager()
    run_plugin(mgr.deploy(sampling_plugin(4), PluginSide.READER))
    ctl = DCPlacementController(mgr, AdaptivePolicy(hysteresis=1), monitor=mon)
    ctl.observe_step(0.5)
    assert mon.aggregate("dc_migration").count == 1


def test_controller_input_validation():
    ctl = DCPlacementController(PluginManager())
    with pytest.raises(ValueError):
        ctl.observe_step(1.5)


# ---------------------------------------------------------------------------
# Adaptive Get scheduler
# ---------------------------------------------------------------------------

def test_aimd_decreases_on_interference():
    s = AdaptiveGetScheduler(target_slowdown=0.15, initial=8)
    assert s.observe(0.30) == 4
    assert s.observe(0.30) == 2
    assert s.observe(0.30) == 1
    assert s.observe(0.30) == 1  # floor


def test_aimd_increases_with_headroom():
    s = AdaptiveGetScheduler(target_slowdown=0.15, initial=2, max_bound=4)
    assert s.observe(0.01) == 3
    assert s.observe(0.01) == 4
    assert s.observe(0.01) == 4  # ceiling


def test_aimd_holds_in_deadband():
    s = AdaptiveGetScheduler(target_slowdown=0.15, initial=4)
    assert s.observe(0.12) == 4  # between 0.7*target and target: hold


def test_aimd_converges_under_feedback():
    """Closed loop with a toy plant: slowdown proportional to concurrency.

    The controller settles at a bound whose slowdown is near the target.
    """
    s = AdaptiveGetScheduler(target_slowdown=0.15, initial=16, max_bound=16)

    def plant(concurrency):
        return 0.03 * concurrency  # 5 concurrent -> 0.15

    for _ in range(20):
        s.observe(plant(s.max_concurrent))
    final = s.max_concurrent
    assert plant(final) <= 0.16
    assert final >= 3


def test_scheduler_validation():
    with pytest.raises(ValueError):
        AdaptiveGetScheduler(target_slowdown=0.0)
    with pytest.raises(ValueError):
        AdaptiveGetScheduler(initial=0)
    s = AdaptiveGetScheduler()
    with pytest.raises(ValueError):
        s.observe(-0.1)


def test_scheduler_history():
    s = AdaptiveGetScheduler(initial=4)
    s.observe(0.2)
    s.observe(0.01)
    assert [d.max_concurrent for d in s.history] == [2, 3]
    assert [d.step for d in s.history] == [0, 1]
