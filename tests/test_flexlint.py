"""FlexLint rule coverage: good/bad fixtures per rule + waivers + CLI.

Each rule gets a minimal bad fixture that must be flagged and a good
fixture that must pass; the waiver machinery and the CLI exit codes are
exercised separately.  The final acceptance check — the repo's own
``src/`` tree lints clean — runs the real CLI over the real tree.
"""

import io
import json
import os
import textwrap

import pytest

from repro.analysis.flexlint import (
    Finding,
    LintConfig,
    RULES,
    lint_paths,
    lint_source,
)
from repro.tools import flexlint as cli

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")

#: Puts fixture code in FXL001 scope.
TRANSPORT_PATH = "repro/transport/fixture.py"
#: Fixture config for FXL005 (decoupled from the real stream registries).
DRAINER_CFG = LintConfig(
    drainer_path="fixture.py",
    drainer_methods=frozenset({"_drain_one"}),
    drainer_shared_state=frozenset({"_declared"}),
)


def rules_of(findings):
    return sorted({f.rule for f in findings if not f.waived})


def lint(code, path="fixture.py", config=None):
    return lint_source(textwrap.dedent(code), path=path, config=config)


# ---------------------------------------------------------------------------
# FXL001 — broad except on fault-critical paths
# ---------------------------------------------------------------------------

def test_fxl001_flags_bare_and_broad_except():
    code = """
    def f():
        try:
            g()
        except Exception:
            pass
        try:
            g()
        except:
            pass
        try:
            g()
        except (ValueError, BaseException):
            pass
    """
    findings = lint(code, path=TRANSPORT_PATH)
    assert rules_of(findings) == ["FXL001"]
    assert len(findings) == 3


def test_fxl001_accepts_typed_catches():
    code = """
    def f():
        try:
            g()
        except (TransportFault, TimeoutError):
            pass
        except DirectoryError:
            pass
    """
    assert lint(code, path=TRANSPORT_PATH) == []


def test_fxl001_out_of_scope_path_is_ignored():
    code = """
    try:
        g()
    except Exception:
        pass
    """
    assert lint(code, path="repro/obs/elsewhere.py") == []


# ---------------------------------------------------------------------------
# FXL002 — hint keys must be registered
# ---------------------------------------------------------------------------

def test_fxl002_flags_unknown_param_key_with_suggestion():
    code = """
    def f(spec):
        return spec.param_bool("bacthing", False)
    """
    findings = lint(code)
    assert rules_of(findings) == ["FXL002"]
    assert "batching" in findings[0].message  # difflib suggestion


def test_fxl002_accepts_registered_keys_and_dynamic_keys():
    code = """
    def f(spec, key):
        spec.param("caching", "none")
        spec.param_int("queue_depth", 2)
        spec.param(key, "x")  # non-literal: not checkable statically
    """
    assert lint(code) == []


def test_fxl002_flags_unknown_stream_params_keyword():
    code = """
    from repro.core.hints import stream_params
    params = stream_params(caching="all", trasnport="shm")
    """
    findings = lint(code)
    assert rules_of(findings) == ["FXL002"]
    assert "trasnport" in findings[0].message


# ---------------------------------------------------------------------------
# FXL003 — spans must be closed
# ---------------------------------------------------------------------------

def test_fxl003_flags_discarded_and_leaked_spans():
    code = """
    def f(monitor):
        monitor.span("write", "s")          # discarded
        sp = monitor.begin_span("drain", "s")  # assigned, never closed
        return 1
    """
    findings = lint(code)
    assert rules_of(findings) == ["FXL003"]
    assert len(findings) == 2


def test_fxl003_accepts_with_finish_and_manual_exit():
    code = """
    def f(monitor):
        with monitor.span("write", "s"):
            pass
        sp = monitor.begin_span("drain", "s")
        try:
            pass
        finally:
            sp.finish()
        cm = monitor.span("read", "s")
        cm.__enter__()
        cm.__exit__(None, None, None)
        later = monitor.span("x", "s")
        with later:
            pass
        return monitor.span("returned", "s")  # callee's responsibility
    """
    assert lint(code) == []


# ---------------------------------------------------------------------------
# FXL004 — commit only on the retry/2PC path
# ---------------------------------------------------------------------------

def test_fxl004_flags_commit_outside_allowed_path():
    code = """
    def handler(self, step):
        self._commit(step)
    """
    findings = lint(code, path="repro/core/stream.py")
    assert rules_of(findings) == ["FXL004"]


def test_fxl004_allows_drain_path_and_resilience():
    drain = """
    def _drain_one(self, step):
        self._commit(step)
    """
    assert lint(drain, path="repro/core/stream.py") == []
    anywhere = """
    def run(self):
        self.commit()
    """
    assert lint(anywhere, path="repro/core/resilience.py") == []
    # The rule is repo-wide: a commit() sprouting in a NEW file is
    # exactly the bug class FXL004 exists to catch.
    assert rules_of(lint(drain, path="repro/obs/elsewhere.py")) == ["FXL004"]


# ---------------------------------------------------------------------------
# FXL005 — drainer-thread shared state must be declared
# ---------------------------------------------------------------------------

def test_fxl005_flags_undeclared_drainer_mutation():
    code = """
    class S:
        def _drain_one(self, step):
            self._declared = 1
            self._sneaky = 2
            other, self._also_sneaky = 1, 2
    """
    findings = lint(code, config=DRAINER_CFG)
    assert rules_of(findings) == ["FXL005"]
    flagged = {f.message.split()[0] for f in findings}
    assert flagged == {"self._sneaky", "self._also_sneaky"}


def test_fxl005_ignores_non_drainer_methods_and_locals():
    code = """
    class S:
        def submit(self, step):
            self._anything = 1
        def _drain_one(self, step):
            local = 1
            step.status = "done"
    """
    assert lint(code, config=DRAINER_CFG) == []


def test_fxl005_real_stream_registry_covers_the_real_file():
    from repro.core.stream import DRAINER_METHODS, DRAINER_SHARED_STATE

    assert "_drain_one" in DRAINER_METHODS
    assert "_consecutive_failures" in DRAINER_SHARED_STATE
    path = os.path.join(SRC, "repro", "core", "stream.py")
    findings = lint_paths([path])
    assert [f for f in findings if f.rule == "FXL005" and not f.waived] == []


# ---------------------------------------------------------------------------
# FXL006 — copy discipline on the zero-copy plane
# ---------------------------------------------------------------------------

def test_fxl006_flags_copy_materialization():
    code = """
    def f(view, arr):
        a = arr.tobytes()
        b = bytes(view)
        c = bytearray(view)
    """
    findings = lint(code, path=TRANSPORT_PATH)
    assert rules_of(findings) == ["FXL006"]
    assert len(findings) == 3


def test_fxl006_allows_allocation_and_out_of_scope():
    code = """
    def f(view):
        empty = bytes()
        sized = bytearray(4096)
        from_int = bytes(16)
    """
    assert lint(code, path=TRANSPORT_PATH) == []
    copying = """
    def f(view):
        return bytes(view)
    """
    # Same code outside transport/ and core/stream.py is fine.
    assert lint(copying, path="repro/obs/fixture.py") == []
    assert rules_of(lint(copying, path="repro/core/stream.py")) == ["FXL006"]


def test_fxl006_waiver_with_reason():
    code = """
    def f(view):
        return bytes(view)  # flexlint: ok(FXL006) crossing to a bytes-only API
    """
    findings = lint(code, path=TRANSPORT_PATH)
    assert [f for f in findings if not f.waived] == []
    assert any(f.rule == "FXL006" and f.waived for f in findings)


# ---------------------------------------------------------------------------
# FXL007 — record() event codes come from the central table
# ---------------------------------------------------------------------------

#: Fixture event table (decoupled from the real repro.obs.events).
EVENTS_CFG = LintConfig(event_codes=frozenset({"step.commit", "step.lost"}))


def test_fxl007_flags_fstring_literal_typo_and_computed_names():
    code = """
    def f(flight, kind):
        flight.record(f"step.{kind}", stream="s")
        flight.record("step.comit", stream="s")
        flight.record("step." + kind, stream="s")
    """
    findings = lint(code, config=EVENTS_CFG)
    assert rules_of(findings) == ["FXL007"]
    assert len(findings) == 3
    by_line = {f.line: f.message for f in findings}
    assert "f-string" in by_line[3]
    assert "step.commit" in by_line[4]  # difflib suggestion for the typo
    assert "computed" in by_line[5]


def test_fxl007_accepts_registered_literals_and_constant_refs():
    code = """
    def f(flight, mon, span, code):
        flight.record("step.commit", stream="s")
        flight.record(EV_STEP_LOST, stream="s")     # Name reference
        mon.record(span.category, span.name)        # Attribute reference
        flight.record(code, stream="s")             # Name: runtime-checked
    """
    assert lint(code, config=EVENTS_CFG) == []


def test_fxl007_waiver_and_real_event_table():
    code = """
    def f(flight):
        flight.record("made.up")  # flexlint: ok(FXL007) fixture event
    """
    findings = lint(code, config=EVENTS_CFG)
    assert [f for f in findings if not f.waived] == []
    # Default config reads the real central table.
    from repro.obs.events import EVENT_CODES

    real = lint('m.record("step.commit", stream="s")\n')
    assert real == [] and "step.commit" in EVENT_CODES
    assert rules_of(lint('m.record("no.such.event")\n')) == ["FXL007"]


# ---------------------------------------------------------------------------
# FXL008 — removed/legacy step-API spellings
# ---------------------------------------------------------------------------

def test_fxl008_flags_advance_and_positional_selections():
    code = """
    def f(writer, reader, sel, out):
        writer.advance()
        reader.read("temp", sel)
        reader.read("temp", (0, 0), (4, 4))
        reader.read_into("temp", out, sel)
        reader.read_all(["temp"], sel)
    """
    findings = lint(code)
    assert rules_of(findings) == ["FXL008"]
    assert len(findings) == 5
    by_line = {f.line: f.message for f in findings}
    assert "end_step()" in by_line[3]
    assert "selection= keyword" in by_line[4]


def test_fxl008_accepts_new_spellings_and_plain_reads():
    code = """
    def f(writer, reader, fh, sel, out):
        writer.end_step()
        reader._advance()
        reader.read("temp")
        reader.read("temp", selection=sel)
        reader.read("temp", start=(0, 0), count=(4, 4))
        reader.read_into("temp", out, selection=sel)
        reader.read_all(["temp", "rho"], start=(0, 0), count=(2, 2))
        fh.read(1024)   # file-like read: one positional arg is fine
    """
    assert lint(code) == []


def test_fxl008_waiver_with_reason():
    code = """
    def f(bp, name, step, start, count):
        # flexlint: ok(FXL008) step-indexed file API, not the step API
        return bp.read(name, step, start, count)
    """
    findings = lint(code)
    assert [f for f in findings if not f.waived] == []


# ---------------------------------------------------------------------------
# Waivers
# ---------------------------------------------------------------------------

def test_waiver_with_reason_silences_finding():
    code = """
    try:
        g()
    except Exception:  # flexlint: ok(FXL001) teardown must not raise
        pass
    """
    findings = lint(code, path=TRANSPORT_PATH)
    assert len(findings) == 1
    assert findings[0].waived
    assert findings[0].waiver_reason == "teardown must not raise"


def test_waiver_on_line_above_applies():
    code = """
    try:
        g()
    # flexlint: ok(FXL001) teardown must not raise
    except Exception:
        pass
    """
    findings = lint(code, path=TRANSPORT_PATH)
    assert [f.waived for f in findings] == [True]


def test_waiver_without_reason_does_not_waive():
    code = """
    try:
        g()
    except Exception:  # flexlint: ok(FXL001)
        pass
    """
    findings = lint(code, path=TRANSPORT_PATH)
    assert not findings[0].waived
    assert "missing a reason" in findings[0].message


def test_waiver_for_wrong_rule_does_not_waive():
    code = """
    try:
        g()
    except Exception:  # flexlint: ok(FXL003) wrong rule entirely
        pass
    """
    findings = lint(code, path=TRANSPORT_PATH)
    assert not findings[0].waived


def test_syntax_error_reports_fxl000():
    findings = lint_source("def broken(:\n", path="x.py")
    assert [f.rule for f in findings] == ["FXL000"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

@pytest.fixture()
def bad_tree(tmp_path):
    bad = tmp_path / "repro" / "transport" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        textwrap.dedent(
            """
            def f():
                try:
                    g()
                except Exception:
                    pass
            """
        ),
        encoding="utf-8",
    )
    return tmp_path


def test_cli_exits_nonzero_on_bad_fixture(bad_tree):
    out = io.StringIO()
    assert cli.main([str(bad_tree)], out=out) == 1
    assert "FXL001" in out.getvalue()


def test_cli_json_output(bad_tree):
    out = io.StringIO()
    assert cli.main([str(bad_tree), "--json"], out=out) == 1
    findings = json.loads(out.getvalue())
    assert findings and findings[0]["rule"] == "FXL001"


def test_cli_rule_filter(bad_tree):
    out = io.StringIO()
    assert cli.main([str(bad_tree), "--rule", "FXL004"], out=out) == 0


def test_cli_list_rules():
    out = io.StringIO()
    assert cli.main(["--list-rules"], out=out) == 0
    text = out.getvalue()
    for rule_id in (
        "FXL001", "FXL002", "FXL003", "FXL004", "FXL005", "FXL006",
        "FXL007", "FXL008", "FXL009", "FXL010", "FXL011", "FXL012",
        "FXL013", "FXL014",
    ):
        assert rule_id in text
    assert set(RULES) == {
        "FXL001", "FXL002", "FXL003", "FXL004", "FXL005", "FXL006",
        "FXL007", "FXL008", "FXL009", "FXL010", "FXL011", "FXL012",
        "FXL013", "FXL014",
    }


def test_cli_show_waived(tmp_path):
    waived = tmp_path / "repro" / "transport" / "w.py"
    waived.parent.mkdir(parents=True)
    waived.write_text(
        "try:\n    g()\n"
        "except Exception:  # flexlint: ok(FXL001) fine here\n    pass\n",
        encoding="utf-8",
    )
    out = io.StringIO()
    assert cli.main([str(tmp_path), "--show-waived"], out=out) == 0
    assert "[waived: fine here]" in out.getvalue()


def test_repo_src_tree_lints_clean():
    """Acceptance: the shipped tree has zero non-waived findings."""
    out = io.StringIO()
    assert cli.main([SRC], out=out) == 0, out.getvalue()


# ---------------------------------------------------------------------------
# FXL009 — exhaustive MsgType dispatch (cross-file)
# ---------------------------------------------------------------------------

PROTOCOL_SRC = """
from enum import Enum

class MsgType(Enum):
    HELLO = 1
    DATA = 2
    NEW_FANCY = 3
"""

SURFACE_SRC = """
from repro.net.protocol import MsgType

def handle(frame):
    if frame.msg_type is MsgType.HELLO:
        return hello()
    if frame.msg_type is MsgType.DATA:
        return data()
"""


def test_fxl009_flags_unhandled_enum_member():
    from repro.analysis.flexlint import project_findings

    sources = {
        "repro/net/protocol.py": textwrap.dedent(PROTOCOL_SRC),
        "repro/net/server.py": textwrap.dedent(SURFACE_SRC),
        "repro/net/client.py": textwrap.dedent(SURFACE_SRC),
    }
    findings = project_findings(sources, LintConfig())
    assert findings and {f.rule for f in findings} == {"FXL009"}
    # One finding per surface that misses the member, anchored at the
    # member's definition in the enum file.
    assert len(findings) == 2
    assert all("MsgType.NEW_FANCY" in f.message for f in findings)
    assert all(f.path == "repro/net/protocol.py" for f in findings)
    assert not any("MsgType.HELLO" in f.message for f in findings)


def test_fxl009_clean_when_every_member_dispatched():
    from repro.analysis.flexlint import project_findings

    full = textwrap.dedent(SURFACE_SRC) + (
        "    if frame.msg_type is MsgType.NEW_FANCY:\n        return fancy()\n"
    )
    sources = {
        "repro/net/protocol.py": textwrap.dedent(PROTOCOL_SRC),
        "repro/net/server.py": full,
        "repro/net/client.py": full,
    }
    assert project_findings(sources, LintConfig()) == []


# ---------------------------------------------------------------------------
# FXL010 — blocking calls in async network-plane bodies
# ---------------------------------------------------------------------------

def test_fxl010_flags_direct_blocking_call():
    code = """
    import time

    async def pump(self):
        time.sleep(1.0)
    """
    findings = lint(code, path="repro/net/fixture.py")
    assert rules_of(findings) == ["FXL010"]


def test_fxl010_flags_transitive_blocking_through_sync_helper():
    code = """
    import os

    class Daemon:
        def save(self):
            os.replace("a", "b")

        async def loop(self):
            self.save()
    """
    findings = lint(code, path="repro/net/fixture.py")
    assert rules_of(findings) == ["FXL010"]
    assert "save" in findings[0].message  # the chain is named


def test_fxl010_scoped_to_net_and_sync_callers_allowed():
    blocking_sync = """
    import time

    def pump():
        time.sleep(1.0)
    """
    assert lint(blocking_sync, path="repro/net/fixture.py") == []
    async_elsewhere = """
    import time

    async def pump():
        time.sleep(1.0)
    """
    assert lint(async_elsewhere, path="repro/apps/fixture.py") == []


def test_fxl010_executor_handoff_is_clean():
    code = """
    import asyncio

    class Daemon:
        def _write(self):
            pass

        async def flush(self):
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._write)
    """
    assert lint(code, path="repro/net/fixture.py") == []


# ---------------------------------------------------------------------------
# FXL011 — sync lock held across await
# ---------------------------------------------------------------------------

def test_fxl011_flags_sync_with_lock_across_await():
    code = """
    async def f(self):
        with self._lock:
            await self.flush()
    """
    findings = lint(code, path="repro/net/fixture.py")
    assert rules_of(findings) == ["FXL011"]


def test_fxl011_flags_manual_acquire_across_await():
    code = """
    async def f(self):
        self._lock.acquire()
        await self.flush()
        self._lock.release()
    """
    findings = lint(code, path="repro/net/fixture.py")
    # The blocking .acquire() itself also trips FXL010 — both defects
    # are real in this shape.
    assert rules_of(findings) == ["FXL010", "FXL011"]


def test_fxl011_accepts_async_lock_and_release_before_await():
    async_lock = """
    async def f(self):
        async with self._lock:
            await self.flush()
    """
    assert lint(async_lock, path="repro/net/fixture.py") == []
    released_first = """
    async def f(self):
        with self._lock:
            x = 1
        await self.flush(x)
    """
    assert lint(released_first, path="repro/net/fixture.py") == []


# ---------------------------------------------------------------------------
# FXL012 — lease must reach release/transfer on every path
# ---------------------------------------------------------------------------

def test_fxl012_flags_leak_on_exception_path():
    code = """
    def f(pool):
        lease = pool.lease(100)
        fill(lease.data)
        lease.release()
    """
    findings = lint(code, path=TRANSPORT_PATH)
    assert rules_of(findings) == ["FXL012"]
    assert "lease" in findings[0].message


def test_fxl012_attribute_use_is_not_a_transfer():
    # decode_frame(channel.recv()) must NOT count as handing the channel
    # off — this is exactly the real _attach leak shape.
    code = """
    def f(host, port):
        channel = TcpChannel.connect(host, port)
        frame = decode_frame(channel.recv())
        return channel
    """
    findings = lint(code, path="repro/net/fixture.py")
    assert rules_of(findings) == ["FXL012"]


def test_fxl012_accepts_try_finally_release():
    code = """
    def f(pool):
        lease = pool.lease(100)
        try:
            fill(lease.data)
        finally:
            lease.release()
    """
    assert lint(code, path=TRANSPORT_PATH) == []


def test_fxl012_accepts_ownership_transfer_and_guarded_cleanup():
    transfer = """
    def f(pool):
        lease = pool.lease(100)
        return WireBuffer.from_lease(lease, 100)
    """
    assert lint(transfer, path=TRANSPORT_PATH) == []
    guarded = """
    def f(pool):
        lease = pool.lease(100)
        try:
            fill(lease.data)
        except ValueError:
            lease.release()
            raise
        lease.release()
    """
    assert lint(guarded, path=TRANSPORT_PATH) == []


def test_fxl012_scope_excludes_other_trees():
    code = """
    def f(pool):
        lease = pool.lease(100)
        fill(lease.data)
    """
    assert lint(code, path="repro/apps/fixture.py") == []


# ---------------------------------------------------------------------------
# FXL013 — metric names come from the registered table
# ---------------------------------------------------------------------------

def test_fxl013_flags_unregistered_and_dynamic_names():
    code = """
    def f(m, kind):
        m.counter("no.such.metric").inc()
        m.gauge(f"ad.hoc.{kind}").set(1)
    """
    findings = lint(code)
    assert rules_of(findings) == ["FXL013"]
    assert len(findings) == 2


def test_fxl013_accepts_registered_names_families_and_nonstrings():
    code = """
    import numpy as np

    def f(m, data, path):
        m.counter("faults.injected.total").inc()
        m.histogram("transport.copies").observe(1.0)
        m.counter(metric_name("transport.path", path)).inc()
        np.histogram(data, bins=10)
    """
    assert lint(code) == []


# ---------------------------------------------------------------------------
# FXL014 — kernels are invoked only by the plug-in runtime / executor
# ---------------------------------------------------------------------------

def test_fxl014_flags_direct_kernel_calls_outside_executor():
    code = """
    def f(plugin, kernel, arr, record):
        out = kernel.fn(arr)
        mask = kernel.mask_fn(arr)
        result = plugin._func(record)
        return out, mask, result
    """
    findings = lint(code, path="repro/apps/fixture.py")
    assert rules_of(findings) == ["FXL014"]
    assert len(findings) == 3


def test_fxl014_allows_the_plugin_runtime_and_executor():
    code = """
    def f(kernel, arr, record, plugin):
        arr = arr[kernel.mask_fn(arr)]
        arr = kernel.fn(arr)
        return plugin._func(record)
    """
    assert lint(code, path="repro/core/plugins.py") == []
    assert lint(code, path="repro/core/redistribution.py") == []


def test_fxl014_accepts_chain_cursor_and_apply_surfaces():
    code = """
    def f(manager, chain, side, record, arr):
        out = manager.apply_side(side, record)
        cursor = chain.cursor("temp")
        got = cursor.apply_block(arr)
        return out, got
    """
    assert lint(code, path="repro/apps/fixture.py") == []


def test_fxl014_waivable_with_reason():
    code = """
    def f(kernel, arr):
        return kernel.fn(arr)  # flexlint: ok(FXL014) bench calls the raw kernel on purpose
    """
    findings = lint(code, path="repro/apps/fixture.py")
    assert [f.rule for f in findings] == ["FXL014"]
    assert findings[0].waived
