"""Tests for the FLEXPATH stream method and the directory service."""

import numpy as np
import pytest

from repro.adios import (
    Adios,
    BoundingBox,
    EndOfStream,
    RankContext,
    StepStatus,
    block_decompose,
)
from repro.core import PluginSide, StreamStalled, stream_registry
from repro.core.directory import CoordinatorInfo, DirectoryError, DirectoryServer
from repro.core.plugins import range_select_plugin, sampling_plugin

STREAM_CONFIG = """
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="float64" dimensions="n,7"/>
  </adios-group>
  <adios-group name="fields">
    <var name="temp" type="float64" dimensions="12,12"/>
  </adios-group>
  <method group="particles" method="FLEXPATH"/>
  <method group="fields" method="FLEXPATH"/>
</adios-config>
"""


@pytest.fixture(autouse=True)
def fresh_registry():
    stream_registry.reset()
    yield
    stream_registry.set_clock(None)  # drop any injected test clock
    stream_registry.reset()


def make_adios():
    return Adios.from_xml(STREAM_CONFIG)


# ---------------------------------------------------------------------------
# Directory service
# ---------------------------------------------------------------------------

def test_directory_register_lookup_unregister():
    d = DirectoryServer()
    info = CoordinatorInfo("sim", 0, 128, contact="handle")
    d.register("gts.out", info)
    got = d.lookup("gts.out")
    assert got.contact == "handle"
    assert d.names() == ["gts.out"]
    d.unregister("gts.out")
    with pytest.raises(DirectoryError):
        d.lookup("gts.out")


def test_directory_duplicate_and_missing():
    d = DirectoryServer()
    d.register("x", CoordinatorInfo("a", 0, 1))
    with pytest.raises(DirectoryError):
        d.register("x", CoordinatorInfo("b", 0, 1))
    with pytest.raises(DirectoryError):
        d.unregister("y")


def test_directory_tracks_readers_not_data():
    d = DirectoryServer()
    d.register("s", CoordinatorInfo("sim", 0, 4))
    d.lookup("s", CoordinatorInfo("ana", 0, 2))
    assert len(d.readers_of("s")) == 1
    # Only discovery traffic: one registration, one lookup, regardless of
    # how much data later flows.
    assert d.registrations == 1 and d.lookups == 1


# ---------------------------------------------------------------------------
# Stream mode basics
# ---------------------------------------------------------------------------

def test_stream_process_group_round_trip():
    ad = make_adios()
    writers = [ad.open_write("particles", "gts.stream", RankContext(r, 2)) for r in range(2)]
    for r, w in enumerate(writers):
        w.write("zion", np.full((5, 7), float(r)))
    for w in writers:
        w.end_step()

    reader = ad.open_read("particles", "gts.stream", RankContext(0, 1))
    assert reader.available_vars() == ["zion"]
    for r in range(2):
        assert (reader.read_block("zion", writer_rank=r) == r).all()


def test_stream_global_array_mxn():
    ad = make_adios()
    shape = (12, 12)
    boxes = block_decompose(shape, (3, 1))
    full = np.arange(144.0).reshape(shape)
    writers = [ad.open_write("fields", "s3d.stream", RankContext(r, 3)) for r in range(3)]
    for r, w in enumerate(writers):
        w.write("temp", full[boxes[r].slices()].copy(), box=boxes[r], global_shape=shape)
        w.end_step()

    reader = ad.open_read("fields", "s3d.stream", RankContext(0, 1))
    np.testing.assert_array_equal(reader.read("temp"), full)
    sel = reader.read("temp", start=(5, 2), count=(4, 6))
    np.testing.assert_array_equal(sel, full[5:9, 2:8])


def test_stream_multiple_steps_and_eos():
    ad = make_adios()
    w = ad.open_write("particles", "s", RankContext(0, 1))
    for step in range(3):
        w.write("zion", np.full((2, 7), float(step)))
        w.end_step()
    w.close()

    r = ad.open_read("particles", "s", RankContext(0, 1))
    seen = []
    while True:
        seen.append(float(r.read_block("zion", 0)[0, 0]))
        try:
            r._advance()
        except EndOfStream:
            break
    assert seen == [0.0, 1.0, 2.0]


def test_stream_stalls_when_writer_behind():
    ad = make_adios()
    w = ad.open_write("particles", "s", RankContext(0, 1))
    w.write("zion", np.zeros((1, 7)))
    w.end_step()
    r = ad.open_read("particles", "s", RankContext(0, 1))
    r.read_block("zion", 0)
    with pytest.raises(StreamStalled):
        r._advance()  # step 1 not yet published, writer still open
    w.write("zion", np.ones((1, 7)))
    w.end_step()
    r._advance()
    assert (r.read_block("zion", 0) == 1).all()


def test_stream_reader_before_any_step_stalls():
    ad = make_adios()
    ad.open_write("particles", "s", RankContext(0, 1))
    r = ad.open_read("particles", "s", RankContext(0, 1))
    with pytest.raises(StreamStalled):
        r.read_block("zion", 0)


def test_stream_eos_with_partial_final_step():
    """Writer closing mid-step publishes the partial step then EOS."""
    ad = make_adios()
    w = ad.open_write("particles", "s", RankContext(0, 1))
    w.write("zion", np.zeros((1, 7)))
    w.end_step()
    w.write("zion", np.ones((1, 7)))
    w.close()  # no advance: partial step flushed by close

    r = ad.open_read("particles", "s", RankContext(0, 1))
    assert (r.read_block("zion", 0) == 0).all()
    r._advance()
    assert (r.read_block("zion", 0) == 1).all()
    with pytest.raises(EndOfStream):
        r._advance()


def test_stream_two_independent_readers():
    ad = make_adios()
    w = ad.open_write("particles", "s", RankContext(0, 1))
    for step in range(2):
        w.write("zion", np.full((1, 7), float(step)))
        w.end_step()
    w.close()
    r1 = ad.open_read("particles", "s", RankContext(0, 2))
    r2 = ad.open_read("particles", "s", RankContext(1, 2))
    assert (r1.read_block("zion", 0) == 0).all()
    r1._advance()
    assert (r1.read_block("zion", 0) == 1).all()
    # r2's cursor is independent.
    assert (r2.read_block("zion", 0) == 0).all()


def test_stream_unknown_name_fails():
    ad = make_adios()
    with pytest.raises(DirectoryError):
        ad.open_read("particles", "never.created", RankContext(0, 1))


def test_stream_name_reusable_after_close():
    ad = make_adios()
    w = ad.open_write("particles", "s", RankContext(0, 1))
    w.write("zion", np.zeros((1, 7)))
    w.close()
    w2 = ad.open_write("particles", "s", RankContext(0, 1))
    w2.write("zion", np.ones((1, 7)))
    w2.close()
    r = ad.open_read("particles", "s", RankContext(0, 1))
    assert (r.read_block("zion", 0) == 1).all()


# ---------------------------------------------------------------------------
# Stream/file switching — the paper's central claim
# ---------------------------------------------------------------------------

def run_pipeline(adios_obj, name):
    """The same application code, agnostic to the underlying method."""
    shape = (12, 12)
    boxes = block_decompose(shape, (2, 2))
    full = np.arange(144.0).reshape(shape)
    writers = [adios_obj.open_write("fields", name, RankContext(r, 4)) for r in range(4)]
    for r, w in enumerate(writers):
        w.write("temp", full[boxes[r].slices()].copy(), box=boxes[r], global_shape=shape)
    for w in writers:
        w.end_step()
        w.close()
    reader = adios_obj.open_read("fields", name, RankContext(0, 1))
    out = reader.read("temp")
    reader.close()
    return out


def test_same_code_runs_stream_and_file(tmp_path):
    stream_out = run_pipeline(make_adios(), "switch.test")
    file_cfg = STREAM_CONFIG.replace(
        '<method group="fields" method="FLEXPATH"/>',
        '<method group="fields" method="BP"/>',
    )
    file_out = run_pipeline(Adios.from_xml(file_cfg), str(tmp_path / "switch.bp"))
    np.testing.assert_array_equal(stream_out, file_out)


# ---------------------------------------------------------------------------
# DC plug-ins on streams
# ---------------------------------------------------------------------------

def test_writer_side_plugin_reduces_buffered_bytes():
    ad = make_adios()
    w = ad.open_write("particles", "s", RankContext(0, 1))
    w.plugins.deploy(sampling_plugin(stride=10), PluginSide.WRITER)
    w.write("zion", np.random.default_rng(0).normal(size=(1000, 7)))
    w.end_step()
    r = ad.open_read("particles", "s", RankContext(0, 1))
    out = r.read_block("zion", 0)
    assert out.shape == (100, 7)  # conditioned before buffering


def test_reader_side_plugin_applies_on_read():
    ad = make_adios()
    w = ad.open_write("particles", "s", RankContext(0, 1))
    data = np.random.default_rng(1).normal(size=(500, 7))
    w.write("zion", data)
    w.end_step()
    r = ad.open_read("particles", "s", RankContext(0, 1))
    r.plugins.deploy(range_select_plugin("zion", 2, -0.1, 0.1), PluginSide.READER)
    out = r.read_block("zion", 0)
    assert out.shape[0] < 500
    assert ((out[:, 2] >= -0.1) & (out[:, 2] <= 0.1)).all()


def test_plugin_migration_on_live_stream():
    """Migrating the sampler writer-side changes what gets buffered."""
    ad = make_adios()
    w = ad.open_write("particles", "s", RankContext(0, 1))
    w.plugins.deploy(sampling_plugin(stride=5), PluginSide.READER)
    w.write("zion", np.zeros((100, 7)))
    w.end_step()
    # Step 0 was buffered full-size (plug-in ran reader-side).
    w.plugins.migrate("sample/5", PluginSide.WRITER)
    w.write("zion", np.zeros((100, 7)))
    w.end_step()
    r = ad.open_read("particles", "s", RankContext(0, 1))
    # Step 0 was buffered full-size; the sampler now lives writer-side, so
    # no reader-side conditioning applies on this read.
    assert r.read_block("zion", 0).shape == (100, 7)
    r._advance()
    # Step 1 was conditioned before buffering.
    assert r.read_block("zion", 0).shape == (20, 7)


# ---------------------------------------------------------------------------
# Resiliency: typed losses, lease-based failure detection, crash semantics
# ---------------------------------------------------------------------------

FAULTY_CONFIG = """
<adios-config>
  <adios-group name="particles">
    <var name="zion" type="float64" dimensions="n,7"/>
  </adios-group>
  <method group="particles" method="FLEXPATH">{params}</method>
</adios-config>
"""


def test_sync_end_step_raises_and_step_is_typed_gap():
    """A sync publish whose retries are exhausted fails loudly on BOTH
    sides: MovementFailed to the writer, OtherError (never silent commit,
    never torn data) to the reader."""
    from repro.core import StepState
    from repro.core.resilience import MovementFailed

    ad = Adios.from_xml(FAULTY_CONFIG.format(
        params="sync=true;max_retries=1;retry_timeout=0.01;"
               "faults=ops=1|2,kinds=timeout"
    ))
    w = ad.open_write("particles", "s", RankContext(0, 1))
    w.write("zion", np.zeros((4, 7)))
    with pytest.raises(MovementFailed):
        w.end_step()                     # ops 1 and 2 fault: retries exhausted
    w.write("zion", np.ones((4, 7)))
    w.end_step()                         # op 3 onward is clean
    w.close()

    state = stream_registry._states["s"]
    assert state._published[0].status is StepState.LOST
    assert state._published[0].groups == {}        # buffers discarded
    assert state._published[1].status is StepState.COMMITTED

    r = ad.open_read("particles", "s", RankContext(0, 1))
    assert r.begin_step() is StepStatus.OtherError  # step 0: typed gap
    assert r.begin_step() is StepStatus.OK          # step 1 survived
    np.testing.assert_array_equal(r.read_block("zion", 0), np.ones((4, 7)))
    r.end_step()
    assert r.begin_step() is StepStatus.EndOfStream


def test_lease_expiry_ends_stream_with_error_not_stall():
    """A writer that stops heartbeating past its lease is evicted; the
    reader gets OtherError instead of polling a dead stream forever, and
    the writer's partial step is discarded (never torn-visible).

    The failure detector runs on an injected clock — the registry
    threads it down to the directory server — so the "crash" is one
    deterministic tick forward, not a wall-clock sleep."""
    now = [0.0]
    stream_registry.set_clock(lambda: now[0])
    ad = Adios.from_xml(FAULTY_CONFIG.format(params="lease=0.05"))
    w = ad.open_write("particles", "s", RankContext(0, 1))
    w.write("zion", np.zeros((4, 7)))
    w.end_step()                         # publish heartbeats the lease
    w.write("zion", np.full((4, 7), 7.0))  # mid-step data, then "crash":
    now[0] += 0.12                       # no heartbeat within the lease

    r = ad.open_read("particles", "s", RankContext(0, 1))
    assert r.begin_step() is StepStatus.OK          # committed step survives
    np.testing.assert_array_equal(r.read_block("zion", 0), np.zeros((4, 7)))
    r.end_step()
    assert r.begin_step() is StepStatus.OtherError  # lease expired -> failure
    state = stream_registry._states["s"]
    assert state.closed and "lease expired" in state.error
    assert state._current == {}                     # partial step discarded
    assert stream_registry.directory.evictions == 1
    assert state.monitor.metrics.counter("dataplane.stream.failures").value == 1
    # The failure is also idempotent and terminal:
    assert r.begin_step() is StepStatus.OtherError


def test_writer_crash_between_steps_reports_failure_without_data_loss():
    """fail() between steps keeps every committed step readable; only the
    end of the stream is abnormal."""
    ad = make_adios()
    w = ad.open_write("particles", "s", RankContext(0, 1))
    for step in range(2):
        w.write("zion", np.full((2, 7), float(step)))
        w.end_step()
    state = stream_registry._states["s"]
    state.fail("writer died")            # crash with no step in flight

    r = ad.open_read("particles", "s", RankContext(0, 1))
    for step in range(2):
        assert r.begin_step() is StepStatus.OK
        assert float(r.read_block("zion", 0)[0, 0]) == float(step)
        r.end_step()
    assert r.begin_step() is StepStatus.OtherError  # not EndOfStream
    state.fail("again")                  # second fail is a no-op
    assert state.error == "writer died"


def test_directory_lease_reap_with_fake_clock():
    """Unit-level failure detector: deterministic clock, explicit reap."""

    class _Contact:
        failed = None

        def fail(self, reason):
            self.failed = reason

    now = [0.0]
    d = DirectoryServer(clock=lambda: now[0])
    contact = _Contact()
    d.register("s", CoordinatorInfo("sim", 0, 4, contact=contact), lease=1.0)
    d.register("eternal", CoordinatorInfo("sim", 0, 4))  # no lease: never reaped
    assert d.expired() == []
    now[0] = 0.9
    d.heartbeat("s")                     # refreshes the deadline to 1.9
    now[0] = 1.5
    assert d.expired() == []
    now[0] = 2.0
    assert d.expired() == ["s"]
    assert d.reap() == ["s"]
    assert "lease expired" in contact.failed
    assert d.evictions == 1
    assert d.names() == ["eternal"]
    with pytest.raises(DirectoryError):
        d.lookup("s")
    with pytest.raises(ValueError):
        d.register("bad", CoordinatorInfo("sim", 0, 1), lease=-1.0)
