"""Tests for the three placement algorithms and the metrics."""

import numpy as np
import pytest

from repro.machine import smoky, titan
from repro.placement import (
    AnalyticsProfile,
    DataAwareMapping,
    HolisticPlacement,
    NodeTopologyAwarePlacement,
    RunMetrics,
    SimProfile,
    allocate_analytics_async,
    allocate_analytics_sync,
    cpu_hours,
)
from repro.placement.algorithms import build_graph, process_group_matrix


def gts_like(machine_nodes=16):
    """GTS on Smoky: 16 ranks × 3 threads, per-process-group analytics."""
    sim = SimProfile(
        num_ranks=16, threads_per_rank=3, io_interval=10.0,
        bytes_per_rank=110 << 20, grid=(4, 4), halo_bytes=2 << 20,
    )
    ana = AnalyticsProfile(time_single=30.0, serial_fraction=0.02)
    mat = process_group_matrix(16, 16, 110 << 20)
    return smoky(machine_nodes), sim, ana, mat


def s3d_like():
    """S3D on Titan: tiny output, heavy internal halos, 128:1 viz ratio."""
    sim = SimProfile(
        num_ranks=128, threads_per_rank=1, io_interval=20.0,
        bytes_per_rank=1_700_000, grid=(8, 4, 4), halo_bytes=40 << 20,
    )
    ana = AnalyticsProfile(time_single=5.0, serial_fraction=0.1)
    mat = np.full((128, 1), 1_700_000, dtype=np.int64)
    return titan(32), sim, ana, mat


# ---------------------------------------------------------------------------
# Profiles and allocation
# ---------------------------------------------------------------------------

def test_profile_validation():
    with pytest.raises(ValueError):
        SimProfile(0, 1, 1.0, 1)
    with pytest.raises(ValueError):
        SimProfile(4, 1, 0.0, 1)
    with pytest.raises(ValueError):
        SimProfile(4, 1, 1.0, 1, grid=(3,))  # grid does not cover ranks
    with pytest.raises(ValueError):
        AnalyticsProfile(time_single=0.0)
    with pytest.raises(ValueError):
        AnalyticsProfile(time_single=1.0, serial_fraction=1.5)


def test_amdahl_scaling():
    ana = AnalyticsProfile(time_single=100.0, serial_fraction=0.1)
    assert ana.time(1) == pytest.approx(100.0)
    assert ana.time(10) == pytest.approx(100 * (0.1 + 0.9 / 10))
    assert ana.time(1000) > 10.0  # serial floor
    with pytest.raises(ValueError):
        ana.time(0)


def test_sync_allocation_rate_matches():
    sim = SimProfile(16, 1, io_interval=10.0, bytes_per_rank=1 << 20)
    ana = AnalyticsProfile(time_single=30.0, serial_fraction=0.02)
    n = allocate_analytics_sync(sim, ana)
    assert ana.time(n) <= sim.io_interval
    if n > 1:
        assert ana.time(n - 1) > sim.io_interval  # minimal


def test_async_allocation_reserves_movement_time():
    sim = SimProfile(16, 1, io_interval=10.0, bytes_per_rank=100 << 20)
    ana = AnalyticsProfile(time_single=30.0, serial_fraction=0.02)
    n_sync = allocate_analytics_sync(sim, ana)
    n_async = allocate_analytics_async(sim, ana, p2p_bandwidth=1e9)
    # Movement eats ~1.7 s of the interval; async needs >= as many procs.
    assert n_async >= n_sync
    with pytest.raises(ValueError):
        allocate_analytics_async(sim, ana, p2p_bandwidth=0)


def test_async_allocation_saturates_at_max():
    sim = SimProfile(16, 1, io_interval=0.5, bytes_per_rank=1 << 30)
    ana = AnalyticsProfile(time_single=30.0)
    assert allocate_analytics_async(sim, ana, p2p_bandwidth=1e9, max_procs=64) == 64


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

def test_cpu_hours():
    assert cpu_hours(2, 3600.0, cores_per_node=16) == pytest.approx(32.0)
    with pytest.raises(ValueError):
        cpu_hours(0, 10.0)


def test_run_metrics_properties():
    m = RunMetrics("inline", total_execution_time=7200.0, num_nodes=4)
    assert m.total_cpu_hours == pytest.approx(128.0)
    m2 = RunMetrics("x", 100.0, 1, intra_node_bytes=10, inter_node_bytes=20, file_bytes=5)
    assert m2.data_movement_volume == 35
    assert m2.gap_to(80.0) == pytest.approx(0.25)
    with pytest.raises(ValueError):
        m2.gap_to(0)
    row = m2.summary_row()
    assert row["placement"] == "x"


# ---------------------------------------------------------------------------
# GTS scenario: helper-core emerges; topo-aware best
# ---------------------------------------------------------------------------

def test_gts_all_algorithms_choose_helper_core():
    """Paper Fig. 6: at all scales all three algorithms place analytics on
    helper cores (inter-program movement dominates)."""
    machine, sim, ana, mat = gts_like()
    for algo in (DataAwareMapping(), HolisticPlacement(), NodeTopologyAwarePlacement()):
        p = algo.place(machine, sim, ana, mat, num_ana=16)
        assert p.style() == "helper-core", algo.name
        assert p.interprogram_internode_bytes() == 0.0


def test_gts_topology_aware_avoids_numa_splits():
    """Holistic maps threads linearly and splits NUMA domains; the
    topology-aware variant never does (paper: up to 7 % penalty)."""
    machine, sim, ana, mat = gts_like()
    holistic = HolisticPlacement().place(machine, sim, ana, mat, num_ana=16)
    topo = NodeTopologyAwarePlacement().place(machine, sim, ana, mat, num_ana=16)
    assert topo.thread_numa_splits() == 0
    assert holistic.thread_numa_splits() > 0


def test_gts_cost_ordering():
    """Mapping-cost ordering: topo-aware <= holistic <= data-aware."""
    machine, sim, ana, mat = gts_like()
    costs = {}
    for algo in (DataAwareMapping(), HolisticPlacement(), NodeTopologyAwarePlacement()):
        costs[algo.name] = algo.place(machine, sim, ana, mat, num_ana=16).cost
    assert costs["topology-aware"] <= costs["holistic"] <= costs["data-aware"] * 1.01


def test_gts_node_count_minimal():
    machine, sim, ana, mat = gts_like()
    p = NodeTopologyAwarePlacement().place(machine, sim, ana, mat, num_ana=16)
    # 16*3 + 16 = 64 slots = exactly 4 smoky nodes.
    assert p.num_nodes == 4


# ---------------------------------------------------------------------------
# S3D scenario: staging emerges for holistic/topo-aware
# ---------------------------------------------------------------------------

def test_s3d_holistic_and_topo_choose_staging():
    """Paper Fig. 9: with intra-program traffic dominant, holistic and
    topology-aware deploy the visualization onto separate staging nodes."""
    machine, sim, ana, mat = s3d_like()
    for algo in (HolisticPlacement(), NodeTopologyAwarePlacement()):
        p = algo.place(machine, sim, ana, mat, num_ana=1)
        assert p.style() == "staging", algo.name


def test_s3d_data_aware_hybrid_hurts_internal_traffic():
    """DAM drags the viz next to its feeders, costing S3D internal
    cross-node MPI versus the staging placements."""
    machine, sim, ana, mat = s3d_like()
    dam = DataAwareMapping().place(machine, sim, ana, mat, num_ana=1)
    topo = NodeTopologyAwarePlacement().place(machine, sim, ana, mat, num_ana=1)
    assert dam.analytics_colocated_fraction() > 0
    assert dam.intraprogram_internode_bytes() > topo.intraprogram_internode_bytes()


def test_s3d_128_to_1_allocation():
    """Paper: the resource allocation step determines a 128:1 ratio."""
    _, sim, _, _ = s3d_like()
    ana = AnalyticsProfile(time_single=18.0, serial_fraction=0.05)
    n = allocate_analytics_sync(sim, ana)
    assert n == 1  # 18 s fits within the 20 s interval on one process


# ---------------------------------------------------------------------------
# Misc placement properties
# ---------------------------------------------------------------------------

def test_placement_workload_too_big_rejected():
    machine = smoky(2)
    sim = SimProfile(64, 1, 10.0, 1 << 20)
    ana = AnalyticsProfile(time_single=1.0)
    mat = process_group_matrix(64, 4, 1 << 20)
    with pytest.raises(ValueError):
        DataAwareMapping().place(machine, sim, ana, mat, num_ana=4)


def test_build_graph_intraprogram_toggle():
    _, sim, ana, mat = gts_like()
    bare = build_graph(sim, 16, ana, mat, include_intraprogram=False)
    full = build_graph(sim, 16, ana, mat, include_intraprogram=True)
    assert bare.intraprogram_bytes() == 0
    assert full.intraprogram_bytes() > 0
    assert bare.interprogram_bytes() == full.interprogram_bytes()


def test_process_group_matrix_shape_and_conservation():
    mat = process_group_matrix(8, 2, 100)
    assert mat.shape == (8, 2)
    assert mat.sum() == 800
    # Contiguous halves feed each analytics rank.
    assert mat[:4, 0].sum() == 400
    assert mat[4:, 1].sum() == 400
    with pytest.raises(ValueError):
        process_group_matrix(0, 1, 10)


def test_placement_mappings_disjoint_cores():
    machine, sim, ana, mat = gts_like()
    p = NodeTopologyAwarePlacement().place(machine, sim, ana, mat, num_ana=16)
    all_cores = [c for cs in p.sim_mapping.values() for c in cs] + [
        c for cs in p.ana_mapping.values() for c in cs
    ]
    assert len(all_cores) == len(set(all_cores))
