"""Zero-copy buffer plane tests: leases, spans, vectors, copy counts.

Covers the lease lifecycle discipline (exactly one release, liveness
checks, sanitizer integration), :class:`WireVector` scatter-gather
semantics, the per-path ``transport.copies`` histogram (inline=2,
pool=1, xpmem=0), and a property test that the view-based codec paths
(:func:`encode_into` / :func:`decode_view`) are byte- and
value-identical to the legacy bytes codec.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis import sanitize
from repro.analysis.sanitize import (
    LEASE_DOUBLE_RELEASE,
    LEASE_LEAK,
    LEASE_USE_AFTER_RELEASE,
)
from repro.core.monitoring import PerfMonitor
from repro.machine.interconnect import GeminiInterconnect
from repro.marshal import (
    Field,
    FieldKind,
    Format,
    FormatRegistry,
    decode_message,
    decode_view,
    encode_into,
    encode_message,
    encoded_size,
)
from repro.transport.buffers import (
    COPIES_INLINE,
    COPIES_POOL,
    COPIES_XPMEM,
    LeaseError,
    Ownership,
    WireBuffer,
    WireVector,
)
from repro.transport.rdma import NntiFabric, RdmaChannel
from repro.transport.shm import ShmBufferPool, ShmChannel


@pytest.fixture()
def san():
    instance = sanitize.enable(fresh=True)
    yield instance
    sanitize.disable()


def kinds(instance):
    return sorted({v.kind for v in instance.violations()})


# ---------------------------------------------------------------------------
# Lease lifecycle
# ---------------------------------------------------------------------------

def test_lease_acquire_fill_release():
    pool = ShmBufferPool()
    lease = pool.lease(1024)
    assert pool.outstanding_leases == 1
    lease.data[:4] = (1, 2, 3, 4)
    assert bytes(lease.view(4)) == b"\x01\x02\x03\x04"
    assert lease.capacity >= 1024
    lease.release()
    assert lease.released
    assert pool.outstanding_leases == 0
    # The buffer went back on the free list: the next lease reuses it.
    pool.lease(1024).release()
    assert pool.stats.reuses == 1


def test_lease_double_release_raises():
    pool = ShmBufferPool()
    lease = pool.lease(64)
    lease.release()
    with pytest.raises(LeaseError):
        lease.release()
    # The double release must not corrupt the pool's accounting.
    assert pool.outstanding_leases == 0


def test_lease_use_after_release_raises():
    pool = ShmBufferPool()
    lease = pool.lease(64)
    lease.release()
    with pytest.raises(LeaseError):
        lease.data
    with pytest.raises(LeaseError):
        lease.view()


def test_lease_context_manager_releases_once():
    pool = ShmBufferPool()
    with pool.lease(64) as lease:
        lease.data[0] = 7
    assert lease.released
    assert pool.outstanding_leases == 0


def test_sanitizer_flags_lease_violations(san):
    pool = ShmBufferPool()
    lease = pool.lease(64)
    lease.release()
    with pytest.raises(LeaseError):
        lease.release()
    with pytest.raises(LeaseError):
        lease.data
    assert LEASE_DOUBLE_RELEASE in kinds(san)
    assert LEASE_USE_AFTER_RELEASE in kinds(san)


def test_sanitizer_flags_leaked_lease(san):
    pool = ShmBufferPool()
    pool.lease(64)  # never released
    leaked = san.check_leases()
    assert [v.kind for v in leaked] == [LEASE_LEAK]


def test_sanitizer_clean_on_disciplined_use(san):
    pool = ShmBufferPool()
    with pool.lease(64):
        pass
    assert san.check_leases() == []
    assert san.violations() == []


# ---------------------------------------------------------------------------
# WireBuffer
# ---------------------------------------------------------------------------

def test_wirebuffer_wrap_is_a_view():
    arr = np.arange(16, dtype=np.uint8)
    wb = WireBuffer.wrap(arr)
    assert wb.nbytes == 16
    assert wb.ownership is Ownership.HEAP
    arr[0] = 99  # the span aliases the source, no copy was taken
    assert wb.as_array()[0] == 99
    assert wb.as_array(np.uint32).shape == (4,)
    assert bytes(wb.view) == arr.tobytes()
    assert wb == arr
    assert wb == arr.tobytes()
    assert len(wb) == 16


def test_wirebuffer_release_discipline():
    pool = ShmBufferPool()
    lease = pool.lease(32)
    wb = WireBuffer.from_lease(lease, 8)
    assert wb.copies == COPIES_POOL
    wb.release()
    assert lease.released  # releasing the span releases the lease
    with pytest.raises(LeaseError):
        wb.as_array()
    with pytest.raises(LeaseError):
        wb.release()


def test_wirebuffer_on_release_callback_fires_once():
    fired = []
    wb = WireBuffer(b"abc", ownership=Ownership.XPMEM,
                    on_release=lambda: fired.append(1))
    wb.release()
    assert fired == [1]


# ---------------------------------------------------------------------------
# WireVector
# ---------------------------------------------------------------------------

def test_wirevector_length_iteration_and_lazy_nbytes():
    vec = WireVector([b"ab", np.arange(3, dtype=np.uint8)])
    assert len(vec) == 2
    assert vec.nbytes == 5
    assert [p.nbytes for p in vec] == [2, 3]
    assert vec[1].nbytes == 3
    vec.append(b"cdef")  # invalidates the cached total
    assert vec.nbytes == 9
    dest = np.zeros(16, dtype=np.uint8)
    end = vec.copy_into(dest, offset=1)
    assert end == 10
    assert bytes(dest[1:10]) == b"ab\x00\x01\x02cdef"
    assert vec.tobytes() == b"ab\x00\x01\x02cdef"


def test_wirevector_empty():
    vec = WireVector()
    assert len(vec) == 0
    assert vec.nbytes == 0
    assert vec.tobytes() == b""


# ---------------------------------------------------------------------------
# Per-path copy counts (the transport.copies histogram)
# ---------------------------------------------------------------------------

def _copies_hist(mon):
    return mon.metrics.histogram("transport.copies")


def test_shm_inline_counts_two_copies():
    mon = PerfMonitor()
    ch = ShmChannel(monitor=mon)
    ch.send(b"small")
    wb = ch.recv()
    assert wb.copies == COPIES_INLINE
    h = _copies_hist(mon)
    assert (h.count, h.total) == (1, float(COPIES_INLINE))
    assert mon.metrics.counter("transport.path.inline").value == 1


def test_shm_pool_counts_one_copy():
    mon = PerfMonitor()
    ch = ShmChannel(monitor=mon)
    ch.send(b"x" * 50_000)
    wb = ch.recv()
    assert wb.copies == COPIES_POOL
    wb.release()
    h = _copies_hist(mon)
    assert (h.count, h.total) == (1, float(COPIES_POOL))
    assert mon.metrics.counter("transport.path.pool").value == 1


def test_shm_xpmem_counts_zero_copies_end_to_end():
    mon = PerfMonitor()
    ch = ShmChannel(use_xpmem=True, monitor=mon)
    got = []

    def consumer():
        wb = ch.recv(timeout=10)
        got.append((wb.copies, wb.ownership))
        wb.release()

    t = threading.Thread(target=consumer)
    t.start()
    ch.send(b"z" * 50_000, timeout=10)
    t.join(10)
    assert got == [(COPIES_XPMEM, Ownership.XPMEM)]
    h = _copies_hist(mon)
    assert h.count == 1
    assert h.total == 0.0  # zero copies observed, still one observation
    assert h.zero_count == 1
    assert mon.metrics.counter("transport.path.xpmem").value == 1


def test_rdma_paths_count_one_copy():
    mon = PerfMonitor()
    fabric = NntiFabric(GeminiInterconnect())
    a = fabric.endpoint(0, "sim-0")
    b = fabric.endpoint(5, "viz-0")
    conn = fabric.connect(a, b)
    ch = RdmaChannel(conn, sender=a, monitor=mon)
    ch.send(b"tiny")
    small = ch.recv()
    ch.send(b"y" * (1 << 20))
    bulk = ch.recv()
    assert small.copies == 1 and small.ownership is Ownership.HEAP
    assert bulk.copies == 1 and bulk.ownership is Ownership.RDMA
    bulk.release()
    h = _copies_hist(mon)
    assert (h.count, h.total) == (2, 2.0)


# ---------------------------------------------------------------------------
# View-based codec round trips
# ---------------------------------------------------------------------------

def _fmt():
    return Format(
        "buffers_prop",
        (
            Field("ts", FieldKind.INT64),
            Field("label", FieldKind.STRING),
            Field("flag", FieldKind.BOOL),
            Field("blob", FieldKind.BYTES),
            Field("offsets", FieldKind.LIST_INT64),
            Field("grid", FieldKind.ARRAY),
        ),
    )


@settings(max_examples=40, deadline=None)
@given(
    ts=st.integers(min_value=-(2**62), max_value=2**62),
    label=st.text(max_size=30),
    flag=st.booleans(),
    blob=st.binary(max_size=100),
    offsets=st.lists(
        st.integers(min_value=-(2**40), max_value=2**40), max_size=10
    ),
    grid=hnp.arrays(
        dtype=st.sampled_from([np.float64, np.int64, np.float32, np.uint8]),
        shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=6),
    ),
)
def test_property_encode_into_matches_bytes_codec(
    ts, label, flag, blob, offsets, grid
):
    fmt = _fmt()
    record = {"ts": ts, "label": label, "flag": flag, "blob": blob,
              "offsets": offsets, "grid": grid}
    legacy = encode_message(fmt, record)
    need = encoded_size(fmt, record)
    assert need == len(legacy)
    with ShmBufferPool().lease(need) as lease:
        written = encode_into(fmt, record, lease.view(need))
        assert written == need
        # Byte-identical wire image through the leased buffer.
        assert bytes(lease.view(need)) == legacy
        got_fmt, got, consumed = decode_view(lease.data[:need], FormatRegistry())
    assert consumed == need
    assert got_fmt.format_id == fmt.format_id
    _, want = decode_message(legacy, FormatRegistry())
    assert got["ts"] == want["ts"]
    assert got["label"] == want["label"]
    assert got["flag"] == want["flag"]
    assert bytes(got["blob"]) == bytes(want["blob"])
    assert got["offsets"] == want["offsets"]
    np.testing.assert_array_equal(got["grid"], want["grid"])
    assert got["grid"].dtype == grid.dtype


def test_decode_view_arrays_are_views_not_copies():
    fmt = Format("v", (Field("a", FieldKind.ARRAY),))
    arr = np.arange(64, dtype=np.float32)
    wire = np.frombuffer(encode_message(fmt, {"a": arr}), dtype=np.uint8)
    _, rec, _ = decode_view(wire, FormatRegistry())
    assert rec["a"].base is not None  # a view over the wire image
    np.testing.assert_array_equal(rec["a"], arr)


def test_decode_view_accepts_wirebuffer():
    fmt = Format("wbv", (Field("a", FieldKind.ARRAY),))
    arr = np.arange(8, dtype=np.int64)
    wb = WireBuffer(encode_message(fmt, {"a": arr}))
    _, rec, _ = decode_view(wb, FormatRegistry())
    np.testing.assert_array_equal(rec["a"], arr)


def test_encode_into_rejects_short_destination():
    from repro.marshal import MarshalError

    fmt = Format("short", (Field("a", FieldKind.INT64),))
    record = {"a": 1}
    need = encoded_size(fmt, record)
    buf = bytearray(need - 1)
    with pytest.raises(MarshalError):
        encode_into(fmt, record, memoryview(buf))
