"""Tests for the protocol-level DES simulation, cross-validated against
the analytic accounting engine."""

import pytest

from repro.adios import block_decompose
from repro.core import CachingOption
from repro.coupled.protocol import ProtocolSimulation, matching_engine
from repro.machine import smoky, titan


def make_sim(
    num_writers=9,
    num_readers=2,
    caching=CachingOption.NO_CACHING,
    batching=False,
    num_variables=1,
    colocated=False,
    machine=None,
):
    machine = machine or smoky(8)
    shape = (num_writers * 6, 12)
    writers = block_decompose(shape, (num_writers, 1))
    readers = block_decompose(shape, (num_readers, 1))
    cpn = machine.node_type.cores_per_node
    writer_cores = [i % cpn + (i // cpn) * cpn for i in range(num_writers)]
    if colocated:
        # Readers share the writers' nodes (helper-core-like).
        reader_cores = [(num_writers + j) % cpn for j in range(num_readers)]
    else:
        # Readers on a separate (staging) node.
        base = ((num_writers - 1) // cpn + 1) * cpn
        reader_cores = [base + j for j in range(num_readers)]
    return ProtocolSimulation(
        machine, writers, readers, writer_cores, reader_cores,
        caching=caching, batching=batching, num_variables=num_variables,
    )


# ---------------------------------------------------------------------------
# Cross-validation: DES message counts == accounting-engine counts
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("caching", list(CachingOption))
def test_control_messages_match_engine(caching):
    sim = make_sim(caching=caching)
    eng = matching_engine(sim)
    stats = sim.run(num_steps=3)
    expected = sum(eng.handshake().messages for _ in range(3))
    assert stats.control_messages == expected


@pytest.mark.parametrize("batching", [False, True])
def test_multivariable_rounds_match_engine(batching):
    sim = make_sim(batching=batching, num_variables=5)
    eng = matching_engine(sim)
    stats = sim.run(num_steps=2)
    expected_ctrl = sum(eng.handshake(5).messages for _ in range(2))
    assert stats.control_messages == expected_ctrl
    assert stats.data_messages == 2 * eng.data_message_count(5)


def test_data_messages_equal_overlap_pairs():
    sim = make_sim(num_writers=6, num_readers=3)
    stats = sim.run(num_steps=1)
    assert stats.data_messages == len(sim.plan.pairs)
    assert stats.data_bytes == sim.plan.total_bytes(8)


# ---------------------------------------------------------------------------
# Timing behaviour
# ---------------------------------------------------------------------------

def test_caching_all_steady_state_handshake_is_free():
    sim = make_sim(caching=CachingOption.CACHING_ALL)
    stats = sim.run(num_steps=4)
    assert stats.handshake_times[0] > 0
    assert all(t == 0.0 for t in stats.handshake_times[1:])
    # Data phases still run every step.
    assert all(t > 0 for t in stats.data_times)


def test_no_caching_every_step_pays():
    sim = make_sim(caching=CachingOption.NO_CACHING)
    stats = sim.run(num_steps=3)
    assert all(t > 0 for t in stats.handshake_times)
    assert stats.handshake_times[0] == pytest.approx(stats.handshake_times[1])


def test_colocated_readers_move_data_faster():
    """Same exchange, shm vs RDMA endpoints: the intra-node run's data
    phase is faster — the gradient placement exploits."""
    near = make_sim(num_writers=4, num_readers=2, colocated=True).run()
    far = make_sim(num_writers=4, num_readers=2, colocated=False).run()
    assert near.data_times[0] < far.data_times[0]


def test_larger_payload_longer_data_phase():
    small = make_sim(num_writers=4, num_readers=2)
    big = ProtocolSimulation(
        smoky(8),
        small.plan.writer_boxes,
        small.plan.reader_boxes,
        small.writer_cores,
        small.reader_cores,
        itemsize=64,  # 8x the bytes
    )
    t_small = small.run().data_times[0]
    t_big = big.run().data_times[0]
    assert t_big > t_small


def test_more_writers_longer_handshake():
    few = make_sim(num_writers=4, caching=CachingOption.NO_CACHING).run()
    many = make_sim(num_writers=16, caching=CachingOption.NO_CACHING).run()
    assert many.handshake_times[0] > few.handshake_times[0]


def test_titan_faster_than_smoky_for_remote_exchange():
    t = make_sim(machine=titan(8), colocated=False).run()
    s = make_sim(machine=smoky(8), colocated=False).run()
    assert t.data_times[0] < s.data_times[0]


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def test_core_count_validation():
    machine = smoky(2)
    boxes = block_decompose((8, 8), (2, 1))
    with pytest.raises(ValueError):
        ProtocolSimulation(machine, boxes, boxes, [0], [1, 2])
    with pytest.raises(ValueError):
        ProtocolSimulation(machine, boxes, boxes, [0, 1], [2])


def test_run_validation():
    sim = make_sim()
    with pytest.raises(ValueError):
        sim.run(num_steps=0)


def test_stats_accumulate_across_runs():
    sim = make_sim(caching=CachingOption.CACHING_ALL)
    sim.run(num_steps=2)
    sim.run(num_steps=2)  # caches persist across run() calls
    assert sim.stats.steps == 4
    assert sum(1 for t in sim.stats.handshake_times if t > 0) == 1
