"""Tests for Data Conditioning plug-ins: validation, execution, mobility."""

import numpy as np
import pytest

from repro.core import CodeletError, DCPlugin, PerfMonitor, PluginManager, PluginSide
from repro.core.plugins import (
    annotation_plugin,
    bounding_box_plugin,
    range_select_plugin,
    sampling_plugin,
    unit_conversion_plugin,
)


def particles(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return {"zion": rng.normal(size=(n, 7))}


# ---------------------------------------------------------------------------
# Codelet validation (the restricted subset)
# ---------------------------------------------------------------------------

def test_plugin_compiles_and_runs():
    p = DCPlugin("double", "def condition(vars):\n    return {k: v * 2 for k, v in vars.items()}\n")
    out = p.apply({"x": np.ones(3)})
    np.testing.assert_array_equal(out["x"], 2 * np.ones(3))
    assert p.stats.invocations == 1


def test_import_forbidden():
    with pytest.raises(CodeletError):
        DCPlugin("evil", "import os\ndef condition(vars):\n    return vars\n")


def test_open_forbidden():
    # `open` simply does not resolve in the sandbox namespace.
    p = DCPlugin("sneaky", "def condition(vars):\n    open('/etc/passwd')\n    return vars\n")
    with pytest.raises(CodeletError):
        p.apply({"x": np.ones(1)})


def test_dunder_access_forbidden():
    with pytest.raises(CodeletError):
        DCPlugin("esc", "def condition(vars):\n    return vars['x'].__class__\n")
    with pytest.raises(CodeletError):
        DCPlugin("esc2", "def condition(vars):\n    x = __builtins__\n    return vars\n")


def test_private_attribute_forbidden():
    with pytest.raises(CodeletError):
        DCPlugin("priv", "def condition(vars):\n    np._private_thing()\n    return vars\n")


def test_with_try_lambda_class_forbidden():
    for bad in (
        "def condition(vars):\n    with vars: pass\n    return vars\n",
        "def condition(vars):\n    try:\n        pass\n    except Exception:\n        pass\n    return vars\n",
        "def condition(vars):\n    f = lambda a: a\n    return vars\n",
        "class X: pass\ndef condition(vars):\n    return vars\n",
    ):
        with pytest.raises(CodeletError):
            DCPlugin("bad", bad)


def test_wrong_signature_rejected():
    with pytest.raises(CodeletError):
        DCPlugin("none", "x = 1\n")
    with pytest.raises(CodeletError):
        DCPlugin("two", "def condition(a, b):\n    return a\n")
    with pytest.raises(CodeletError):
        DCPlugin("name", "def other(vars):\n    return vars\n")


def test_syntax_error_reported():
    with pytest.raises(CodeletError):
        DCPlugin("syn", "def condition(vars)\n    return vars\n")


def test_non_dict_return_rejected():
    p = DCPlugin("bad-ret", "def condition(vars):\n    return 42\n")
    with pytest.raises(CodeletError):
        p.apply({"x": np.ones(1)})


def test_runtime_error_wrapped():
    p = DCPlugin("crash", "def condition(vars):\n    return {'y': vars['missing']}\n")
    with pytest.raises(CodeletError):
        p.apply({"x": np.ones(1)})


def test_loops_and_conditionals_allowed():
    src = (
        "def condition(vars):\n"
        "    out = dict(vars)\n"
        "    for name in list(out):\n"
        "        if len(out[name]) > 2:\n"
        "            out[name] = out[name][:2]\n"
        "    return out\n"
    )
    p = DCPlugin("trim", src)
    out = p.apply({"x": np.arange(10.0)})
    assert len(out["x"]) == 2


# ---------------------------------------------------------------------------
# Library codelets
# ---------------------------------------------------------------------------

def test_sampling_plugin_reduces_volume():
    p = sampling_plugin(stride=4)
    data = particles(100)
    out = p.apply(data)
    assert out["zion"].shape == (25, 7)
    assert p.reduction_ratio == pytest.approx(0.25)


def test_range_select_plugin():
    p = range_select_plugin("zion", column=3, lo=-0.5, hi=0.5)
    data = particles(1000)
    out = p.apply(data)
    v = out["zion"][:, 3]
    assert ((v >= -0.5) & (v <= 0.5)).all()
    assert 0 < len(out["zion"]) < 1000


def test_bounding_box_plugin_adds_metadata():
    p = bounding_box_plugin()
    data = particles(50)
    out = p.apply(data)
    np.testing.assert_array_equal(out["zion_bbox_min"], data["zion"].min(axis=0))
    np.testing.assert_array_equal(out["zion_bbox_max"], data["zion"].max(axis=0))


def test_unit_conversion_plugin():
    p = unit_conversion_plugin("zion", factor=1000.0)
    data = particles(10)
    out = p.apply(data)
    np.testing.assert_allclose(out["zion"], data["zion"] * 1000.0)


def test_annotation_plugin():
    p = annotation_plugin("timestep_flag", 7.0)
    out = p.apply({"x": np.ones(2)})
    assert out["timestep_flag"][0] == 7.0


# ---------------------------------------------------------------------------
# Manager: deployment, migration, chaining
# ---------------------------------------------------------------------------

def test_manager_deploy_and_side_filtering():
    mgr = PluginManager()
    s = mgr.deploy(sampling_plugin(2), PluginSide.WRITER)
    b = mgr.deploy(bounding_box_plugin(), PluginSide.READER)
    assert mgr.plugins(PluginSide.WRITER) == [s]
    assert mgr.plugins(PluginSide.READER) == [b]
    assert len(mgr.plugins()) == 2


def test_manager_duplicate_name_rejected():
    mgr = PluginManager()
    mgr.deploy(sampling_plugin(2))
    with pytest.raises(CodeletError):
        mgr.deploy(sampling_plugin(2))


def test_manager_migration_moves_execution_side():
    """The paper's mobility: the same codelet moves writer↔reader at runtime."""
    mgr = PluginManager()
    mgr.deploy(sampling_plugin(2), PluginSide.READER)
    data = particles(100)
    out = mgr.apply_side(PluginSide.WRITER, data)
    assert out["zion"].shape == (100, 7)  # not deployed writer-side yet
    mgr.migrate("sample/2", PluginSide.WRITER)
    out = mgr.apply_side(PluginSide.WRITER, data)
    assert out["zion"].shape == (50, 7)
    out = mgr.apply_side(PluginSide.READER, data)
    assert out["zion"].shape == (100, 7)  # no longer reader-side


def test_manager_chain_order():
    mgr = PluginManager()
    mgr.deploy(unit_conversion_plugin("zion", 2.0), PluginSide.WRITER)
    mgr.deploy(sampling_plugin(2), PluginSide.WRITER)
    data = {"zion": np.arange(8.0).reshape(4, 2)}
    out = mgr.apply_side(PluginSide.WRITER, data)
    # Conversion first (deployment order), then sampling.
    np.testing.assert_array_equal(out["zion"], (np.arange(8.0).reshape(4, 2) * 2)[::2])


def test_manager_undeploy_and_errors():
    mgr = PluginManager()
    mgr.deploy(sampling_plugin(2))
    p = mgr.undeploy("sample/2")
    assert p.name == "sample/2"
    with pytest.raises(CodeletError):
        mgr.undeploy("sample/2")
    with pytest.raises(CodeletError):
        mgr.migrate("ghost", PluginSide.WRITER)


def test_monitoring_integration():
    mon = PerfMonitor(clock=lambda: 0.0)
    mgr = PluginManager(mon)
    mgr.deploy(sampling_plugin(2), PluginSide.WRITER)
    mgr.apply_side(PluginSide.WRITER, particles(100))
    agg = mon.aggregate("dc_plugin")
    assert agg.count == 1
    assert agg.total_bytes == 100 * 7 * 8
