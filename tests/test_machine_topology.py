"""Unit tests for machine topology, trees, and communication-cost queries."""

import pytest

from repro.machine import Machine, NodeType, TopologyLevel, smoky, titan
from repro.util import GiB, MiB


def small_machine(nodes=2):
    nt = NodeType(
        name="test",
        cores_per_node=8,
        numa_domains=2,
        ghz=2.0,
        l3_bytes_per_domain=2 * MiB,
        mem_bytes=8 * GiB,
        mem_bw_local=8e9,
    )
    return Machine("testbox", nt, nodes)


# ---------------------------------------------------------------------------
# NodeType validation
# ---------------------------------------------------------------------------

def test_nodetype_rejects_uneven_numa_split():
    with pytest.raises(ValueError):
        NodeType("bad", 10, 3, 2.0, MiB, GiB, 1e9)


def test_nodetype_rejects_nonpositive_cores():
    with pytest.raises(ValueError):
        NodeType("bad", 0, 1, 2.0, MiB, GiB, 1e9)


def test_nodetype_remote_factor_range():
    with pytest.raises(ValueError):
        NodeType("bad", 4, 2, 2.0, MiB, GiB, 1e9, numa_remote_factor=0.0)


def test_cores_per_domain():
    nt = NodeType("x", 16, 4, 2.0, MiB, GiB, 1e9)
    assert nt.cores_per_domain == 4


# ---------------------------------------------------------------------------
# Core coordinate resolution
# ---------------------------------------------------------------------------

def test_core_resolution_round_trip():
    m = small_machine(nodes=3)
    # 8 cores/node, 2 domains of 4.
    c = m.core(13)  # node 1, in-node 5 -> domain 1, local 1
    assert c.node_id == 1
    assert c.numa_local == 1
    assert c.core_local == 1
    assert c.global_id == 13


def test_core_out_of_range():
    m = small_machine(nodes=1)
    with pytest.raises(IndexError):
        m.core(8)
    with pytest.raises(IndexError):
        m.core(-1)


def test_total_cores_and_iteration():
    m = small_machine(nodes=2)
    assert m.total_cores == 16
    ids = [c.global_id for c in m.cores()]
    assert ids == list(range(16))


def test_node_and_numa_of():
    m = small_machine(nodes=2)
    assert m.node_of(0) == 0
    assert m.node_of(15) == 1
    assert m.numa_of(5) == (0, 1)
    assert m.same_node(0, 7)
    assert not m.same_node(7, 8)
    assert m.same_numa(0, 3)
    assert not m.same_numa(3, 4)


# ---------------------------------------------------------------------------
# Divergence level and communication cost
# ---------------------------------------------------------------------------

def test_divergence_levels():
    m = small_machine(nodes=2)
    assert m.divergence_level(3, 3) == TopologyLevel.CORE
    assert m.divergence_level(0, 1) == TopologyLevel.NUMA
    assert m.divergence_level(0, 4) == TopologyLevel.NODE
    assert m.divergence_level(0, 8) == TopologyLevel.MACHINE


def test_comm_cost_ordering():
    m = small_machine()
    same_core = m.comm_cost(2, 2)
    same_numa = m.comm_cost(0, 1)
    cross_numa = m.comm_cost(0, 4)
    cross_node = m.comm_cost(0, 8)
    assert same_core < same_numa < cross_numa < cross_node


# ---------------------------------------------------------------------------
# Architecture tree
# ---------------------------------------------------------------------------

def test_arch_tree_three_level_structure():
    m = small_machine(nodes=2)
    root = m.arch_tree(include_numa=True)
    assert root.level == TopologyLevel.MACHINE
    assert len(root.children) == 2
    node0 = root.children[0]
    assert node0.level == TopologyLevel.NODE
    assert len(node0.children) == 2  # NUMA domains
    assert all(d.level == TopologyLevel.NUMA for d in node0.children)
    assert len(node0.children[0].children) == 4  # cores
    assert root.total_slots() == 16
    assert sorted(root.cores) == list(range(16))


def test_arch_tree_two_level_structure():
    m = small_machine(nodes=2)
    root = m.arch_tree(include_numa=False)
    node0 = root.children[0]
    assert len(node0.children) == 8
    assert all(leaf.is_leaf for leaf in node0.children)


def test_arch_tree_node_subset():
    m = small_machine(nodes=4)
    root = m.arch_tree(nodes=[1, 3])
    assert len(root.children) == 2
    assert sorted(root.cores) == list(range(8, 16)) + list(range(24, 32))


def test_arch_tree_invalid_node():
    m = small_machine(nodes=2)
    with pytest.raises(IndexError):
        m.arch_tree(nodes=[5])


def test_tree_leaf_iteration():
    m = small_machine(nodes=1)
    root = m.arch_tree()
    leaves = list(root.iter_leaves())
    assert len(leaves) == 8
    assert all(len(leaf.cores) == 1 for leaf in leaves)


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

def test_titan_preset_shape():
    m = titan(num_nodes=4)
    assert m.node_type.cores_per_node == 16
    assert m.node_type.numa_domains == 2
    assert m.node_type.cores_per_domain == 8
    assert m.node_type.ghz == 2.2
    assert m.interconnect.name == "gemini"


def test_smoky_preset_shape():
    m = smoky(num_nodes=4)
    assert m.node_type.numa_domains == 4
    assert m.node_type.cores_per_domain == 4
    assert m.node_type.l3_bytes_per_domain == 2 * MiB
    assert m.interconnect.name == "infiniband-ddr"


def test_titan_default_size():
    assert titan().num_nodes == 18688


def test_machine_rejects_zero_nodes():
    with pytest.raises(ValueError):
        small_machine(nodes=0)
